//! Health (Presto): the Colombian hierarchical health-service simulation
//! (§8). Villages generate patients; a fraction escalate to regional
//! centers. Exclusive access to the shared waiting queues is guaranteed by
//! **locks** — the kernel the paper uses to exercise §5.3.
//!
//! The skeleton: each processor simulates its village (local compute),
//! updates its village counter (owner slot, no lock needed), and every few
//! iterations escalates a patient to its region's queue under the region
//! lock. The lock analysis proves the in-region accesses can overlap.

use crate::{Kernel, KernelParams};
use std::fmt::Write;

/// Generates the Health skeleton for `params`. Four regional centers are
/// used (processors are assigned round-robin by `MYPROC % 4` when there
/// are at least four processors, otherwise everything funnels to region 0).
pub fn generate(params: &KernelParams) -> Kernel {
    let iters = params.steps.max(2);
    let w_care = params.work_per_element as u64 * 4;
    let p = params.procs as u64;
    let regions: u64 = if p >= 4 { 4 } else { 1 };
    let mut s = String::new();
    writeln!(
        s,
        "// Health: hierarchical service system guarded by locks."
    )
    .unwrap();
    writeln!(s, "shared int Village[{p}];").unwrap();
    writeln!(s, "shared int Region[{regions}];").unwrap();
    writeln!(s, "shared int Referrals[{regions}];").unwrap();
    for r in 0..regions {
        writeln!(s, "lock region{r};").unwrap();
    }
    writeln!(s, "\nfn main() {{").unwrap();
    writeln!(s, "    int it;").unwrap();
    writeln!(s, "    int v;").unwrap();
    writeln!(s, "    for (it = 0; it < {iters}; it = it + 1) {{").unwrap();
    writeln!(s, "        // Treat local patients.").unwrap();
    writeln!(s, "        work({w_care});").unwrap();
    writeln!(s, "        Village[MYPROC] = Village[MYPROC] + 1;").unwrap();
    writeln!(s, "        // Escalate one patient to the regional center.").unwrap();
    if regions == 1 {
        writeln!(s, "        lock region0;").unwrap();
        writeln!(s, "        v = Region[0];").unwrap();
        writeln!(s, "        Region[0] = v + 1;").unwrap();
        writeln!(s, "        Referrals[0] = Referrals[0] + 1;").unwrap();
        writeln!(s, "        unlock region0;").unwrap();
    } else {
        for r in 0..regions {
            let kw = if r == 0 { "if" } else { "} else if" };
            writeln!(s, "        {kw} (MYPROC % {regions} == {r}) {{").unwrap();
            writeln!(s, "            lock region{r};").unwrap();
            writeln!(s, "            v = Region[{r}];").unwrap();
            writeln!(s, "            Region[{r}] = v + 1;").unwrap();
            writeln!(s, "            Referrals[{r}] = Referrals[{r}] + 1;").unwrap();
            writeln!(s, "            unlock region{r};").unwrap();
        }
        writeln!(s, "        }}").unwrap();
    }
    writeln!(s, "    }}").unwrap();
    writeln!(s, "}}").unwrap();
    Kernel {
        name: "Health",
        source: s,
        procs: params.procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    #[test]
    fn generates_valid_program_small_and_large() {
        for procs in [2, 4, 8, 64] {
            let k = generate(&KernelParams::evaluation(procs));
            prepare_program(&k.source)
                .unwrap_or_else(|e| panic!("procs={procs}: {e}\n{}", k.source));
        }
    }

    #[test]
    fn critical_section_accesses_are_lock_guarded() {
        let k = generate(&KernelParams::evaluation(8));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        let region0 = cfg.vars.by_name("region0").unwrap();
        let guarded = analysis.sync.guards.guarded_by(region0);
        assert!(
            guarded.len() >= 3,
            "read + two writes should be guarded: {guarded:?}"
        );
    }

    #[test]
    fn refinement_shrinks_delays() {
        let k = generate(&KernelParams::evaluation(8));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        let s = analysis.stats();
        assert!(s.delay_sync < s.delay_ss, "{s:?}");
    }

    #[test]
    fn simulation_counts_are_correct() {
        let k = generate(&KernelParams {
            procs: 4,
            elements_per_proc: 4,
            steps: 3,
            work_per_element: 20,
        });
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let r = syncopt_machine::simulate(&cfg, &syncopt_machine::MachineConfig::cm5(4))
            .expect("Health should simulate");
        // Each region got 3 increments from its single member processor.
        let region = cfg.vars.by_name("Region").unwrap();
        let vals = &r.memory.iter().find(|(v, _)| *v == region).unwrap().1;
        for v in vals {
            assert_eq!(*v, syncopt_machine::Value::Int(3));
        }
    }
}
