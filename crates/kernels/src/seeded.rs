//! Seeded example programs for the lint engine: each triggers exactly
//! one lint family, with a hand-written explanation of the defect.
//!
//! These are the lint analog of the litmus tests — tiny `minisplit`
//! programs whose interesting property is the *bug* (or redundancy)
//! they contain, used by `syncoptc lint --seeded <name>`, the
//! integration tests, and the smoke script.

/// A seeded lint example.
#[derive(Debug, Clone, Copy)]
pub struct SeededExample {
    /// Stable name (the `--seeded` argument).
    pub name: &'static str,
    /// The diagnostic code the program is seeded to trigger.
    pub code: &'static str,
    /// `minisplit` source text.
    pub source: &'static str,
    /// What is wrong with the program, in one sentence.
    pub description: &'static str,
}

/// The seeded examples, one per lint family.
pub fn seeded_examples() -> &'static [SeededExample] {
    &[
        SeededExample {
            name: "lock-cycle",
            code: "D001",
            source: "shared int X; shared int Y; lock a; lock b;
fn main() {
    int v;
    if (MYPROC == 0) {
        lock a; lock b; X = 1; unlock b; unlock a;
    } else {
        lock b; lock a; v = X; unlock a; unlock b;
    }
}
",
            description: "two branches acquire locks `a` and `b` in opposite \
                          order, so two processors can each hold one lock and \
                          wait forever for the other",
        },
        SeededExample {
            name: "barrier-divergence",
            code: "D002",
            source: "shared int X;
fn main() {
    int v;
    if (MYPROC == 0) {
        X = 1;
        barrier;
    } else {
        v = X;
    }
}
",
            description: "only processor 0 reaches the barrier; every other \
                          processor takes the barrier-free arm, so processor 0 \
                          waits forever",
        },
        SeededExample {
            name: "postwait-deadlock",
            code: "D003",
            source: "flag F;
fn main() {
    wait F;
    post F;
}
",
            description: "every processor waits on `F` before any processor \
                          reaches the only `post F`, so nobody ever posts",
        },
        SeededExample {
            name: "redundant-barrier",
            code: "L001",
            source: "shared int A[64];
fn main() {
    int v;
    A[MYPROC] = MYPROC;
    barrier;
    barrier;
    v = A[MYPROC + 1];
}
",
            description: "two back-to-back barriers each provide orderings the \
                          other already implies; either one could be removed",
        },
    ]
}

/// Looks up a seeded example by name.
pub fn seeded_example(name: &str) -> Option<&'static SeededExample> {
    seeded_examples().iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;

    #[test]
    fn seeded_examples_pass_the_frontend() {
        for ex in seeded_examples() {
            prepare_program(ex.source)
                .unwrap_or_else(|e| panic!("{} failed frontend: {e}", ex.name));
        }
    }

    #[test]
    fn seeded_names_are_unique_and_lookup_works() {
        let examples = seeded_examples();
        for ex in examples {
            assert_eq!(seeded_example(ex.name).unwrap().code, ex.code);
        }
        let mut names: Vec<_> = examples.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), examples.len());
    }
}
