//! Ocean (SPLASH): eddy/boundary-current simulation.
//!
//! The core is a stencil relaxation over a distributed grid. The skeleton
//! captures its communication pattern per timestep:
//!
//! 1. **halo pull** — read several boundary cells of each neighbor's block
//!    (remote `get`s; under the Shasha–Snir delay set these serialize,
//!    under the refined set they pipeline);
//! 2. relax the interior (abstracted by `work`);
//! 3. write the block's own new boundary cells (local);
//! 4. **ghost push** — deposit this block's edge value into the neighbor's
//!    ghost slot (a remote `put` whose ack the one-way conversion removes);
//! 5. `barrier`, then a copy/fold phase and a second `barrier`.
//!
//! All shared indices are affine in `MYPROC`, so the conflict analysis
//! sees exactly the real neighbor interferences.

use crate::{Kernel, KernelParams};
use std::fmt::Write;

/// Generates the Ocean skeleton for `params`.
pub fn generate(params: &KernelParams) -> Kernel {
    let p = params.procs as u64;
    let b = params.elements_per_proc.max(6) as u64;
    let n = p * b;
    let steps = params.steps;
    let w = params.work_per_element as u64 * b;
    let mut s = String::new();
    writeln!(s, "// Ocean: stencil relaxation with barrier phases.").unwrap();
    writeln!(s, "shared double G[{n}];").unwrap();
    writeln!(s, "shared double NG[{n}];").unwrap();
    writeln!(s, "shared double Ghost[{p}];").unwrap();
    writeln!(
        s,
        r#"
fn main() {{
    int t;
    double l0; double l1;
    double r0; double r1;
    double g;
    for (t = 0; t < {steps}; t = t + 1) {{
        // Halo pull: read two boundary cells from each neighbor.
        l0 = 0.0; l1 = 0.0; r0 = 0.0; r1 = 0.0;
        if (MYPROC > 0) {{
            l0 = G[MYPROC * {b} - 1];
            l1 = G[MYPROC * {b} - 2];
        }}
        if (MYPROC < PROCS - 1) {{
            r0 = G[MYPROC * {b} + {b}];
            r1 = G[MYPROC * {b} + {b} + 1];
        }}
        // Relax the interior (abstracted compute).
        work({w});
        // New boundary cells of this block (local writes).
        NG[MYPROC * {b}] = (l0 + l1 + G[MYPROC * {b} + 1]) * 0.3;
        NG[MYPROC * {b} + {bm1}] = (r0 + r1 + G[MYPROC * {b} + {bm2}]) * 0.3;
        // Ghost push: deposit the edge value in the right neighbor's slot.
        if (MYPROC < PROCS - 1) {{
            Ghost[MYPROC + 1] = r0 * 0.5;
        }}
        barrier;
        // Fold phase: read own ghost (local) and copy new values back.
        g = Ghost[MYPROC];
        G[MYPROC * {b}] = NG[MYPROC * {b}] + g;
        G[MYPROC * {b} + {bm1}] = NG[MYPROC * {b} + {bm1}];
        work({w2});
        barrier;
    }}
}}
"#,
        steps = steps,
        b = b,
        bm1 = b - 1,
        bm2 = b - 2,
        w = w,
        w2 = w / 2,
    )
    .unwrap();
    Kernel {
        name: "Ocean",
        source: s,
        procs: params.procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze_for;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::access::AccessKind;
    use syncopt_ir::lower::lower_main;

    #[test]
    fn generates_valid_program() {
        let k = generate(&KernelParams::evaluation(8));
        prepare_program(&k.source).unwrap();
    }

    #[test]
    fn halo_reads_conflict_with_fold_writes() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let g = cfg.vars.by_name("G").unwrap();
        let reads: Vec<_> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Read && i.var == Some(g))
            .map(|(id, _)| id)
            .collect();
        let writes: Vec<_> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Write && i.var == Some(g))
            .map(|(id, _)| id)
            .collect();
        assert!(reads.len() >= 4 && !writes.is_empty());
        let conflicting = reads
            .iter()
            .flat_map(|&r| writes.iter().map(move |&w| (r, w)))
            .filter(|&(r, w)| analysis.conflicts.conflicts(r, w))
            .count();
        assert!(conflicting > 0, "halo exchange must conflict");
    }

    #[test]
    fn barriers_align_statically() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        assert_eq!(analysis.stats().aligned_barriers, 2);
    }

    #[test]
    fn ghost_push_converts_to_store() {
        use syncopt_codegen::{optimize, DelayChoice, OptLevel};
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let opt = optimize(&cfg, &analysis, OptLevel::OneWay, DelayChoice::SyncRefined);
        assert!(
            opt.stats.puts_to_stores >= 1,
            "ghost push should convert: {:?}",
            opt.stats
        );
    }

    #[test]
    fn halo_reads_pipeline_under_refinement() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let g = cfg.vars.by_name("G").unwrap();
        let reads: Vec<_> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Read && i.var == Some(g))
            .map(|(id, _)| id)
            .collect();
        // Under D_SS, consecutive halo reads carry delays (spurious cycles
        // through the remote writes); the refined set drops them.
        let ss_pairs = reads
            .iter()
            .flat_map(|&a| reads.iter().map(move |&b| (a, b)))
            .filter(|&(a, b)| analysis.delay_ss.contains(a, b))
            .count();
        let sync_pairs = reads
            .iter()
            .flat_map(|&a| reads.iter().map(move |&b| (a, b)))
            .filter(|&(a, b)| analysis.delay_sync.contains(a, b))
            .count();
        assert!(ss_pairs > 0, "baseline should serialize halo reads");
        assert_eq!(sync_pairs, 0, "refined reads should pipeline");
    }
}
