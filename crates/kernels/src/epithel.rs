//! Epithelial cell simulation: cell aggregation with a Navier–Stokes
//! solver computing fluid flow via 2-D FFTs each timestep.
//!
//! The performance-relevant pattern is the FFT **transpose**: between the
//! row-FFT and column-FFT phases every processor scatters a value into
//! every other processor's block (all-to-all `put`s), separated by
//! barriers. These puts are the paper's prime one-way-communication
//! candidates: their completion is only needed at the phase barrier, so
//! acknowledgements are pure overhead.
//!
//! This is the kernel behind the paper's Figure 13 speedup curves: the
//! all-to-all communication volume grows with the processor count while
//! per-processor compute shrinks, so pipelining and ack elimination decide
//! how far it scales.

use crate::{Kernel, KernelParams};
use std::fmt::Write;

/// Generates the Epithelial skeleton for `params`.
pub fn generate(params: &KernelParams) -> Kernel {
    let p = params.procs as u64;
    let b = p.max(2); // transpose block: one slot per processor
    let n = p * b;
    let steps = params.steps;
    // The solver phases dominate the transpose in the real application;
    // the factor keeps the compute:communication ratio in that regime.
    let w = params.work_per_element as u64 * params.elements_per_proc as u64 * 32;
    let mut s = String::new();
    writeln!(s, "// Epithel: FFT transpose phases with barriers.").unwrap();
    writeln!(s, "shared double Rows[{n}];").unwrap();
    writeln!(s, "shared double Cols[{n}];").unwrap();
    writeln!(
        s,
        r#"
fn main() {{
    int t;
    int q;
    double v;
    for (t = 0; t < {steps}; t = t + 1) {{
        // Row FFTs over the owned block (abstracted).
        work({w});
        // Transpose: scatter one slot into every processor's block.
        for (q = 0; q < PROCS; q = q + 1) {{
            v = Rows[MYPROC * {b} + q];
            Cols[q * {b} + MYPROC] = v * 0.5;
        }}
        barrier;
        // Column FFTs (abstracted), then cell-movement update.
        work({w});
        // Transpose back.
        for (q = 0; q < PROCS; q = q + 1) {{
            v = Cols[MYPROC * {b} + q];
            Rows[q * {b} + MYPROC] = v * 2.0;
        }}
        barrier;
        work({w2});
        barrier;
    }}
}}
"#,
        steps = steps,
        b = b,
        w = w,
        w2 = w / 4,
    )
    .unwrap();
    Kernel {
        name: "Epithel",
        source: s,
        procs: params.procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    #[test]
    fn generates_valid_program() {
        let k = generate(&KernelParams::evaluation(8));
        prepare_program(&k.source).unwrap();
    }

    #[test]
    fn barriers_align_and_refinement_helps() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze(&cfg);
        let s = analysis.stats();
        assert_eq!(s.aligned_barriers, 3);
        assert!(s.delay_sync < s.delay_ss, "{s:?}");
    }

    #[test]
    fn transpose_puts_become_stores() {
        use syncopt_codegen::{optimize, DelayChoice, OptLevel};
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, k.procs);
        let opt = optimize(&cfg, &analysis, OptLevel::OneWay, DelayChoice::SyncRefined);
        assert!(
            opt.stats.puts_to_stores >= 1,
            "transpose puts should convert: {:?}",
            opt.stats
        );
    }
}
