#![warn(missing_docs)]

//! The five application kernels of the paper's evaluation (§8), written in
//! `minisplit`.
//!
//! | kernel | structure | synchronization |
//! |--------|-----------|-----------------|
//! | [`ocean`] | grid stencil relaxation | barriers between phases |
//! | [`em3d`] | bipartite-graph leapfrog | barriers between half steps |
//! | [`epithel`] | transpose/FFT phases over a grid | barriers |
//! | [`cholesky`] | blocked-cyclic panel factorization | post/wait flags |
//! | [`health`] | hierarchical service system | locks |
//!
//! The originals (SPLASH Ocean, Split-C EM3D, the Berkeley epithelial-cell
//! simulation, panel Cholesky, Presto Health) are not reproducible line by
//! line; each module builds a *skeleton* with the same communication and
//! synchronization pattern — which is what the paper's optimizations act
//! on — with computation abstracted by `work(...)` (see DESIGN.md).
//!
//! Every kernel is a generator parameterized by processor count and problem
//! size, so the Figure 12 bars (64 processors) and the Figure 13 scaling
//! sweep reuse the same sources.

pub mod cholesky;
pub mod em3d;
pub mod epithel;
pub mod health;
pub mod ocean;
pub mod scaling;
pub mod seeded;

/// A generated kernel program.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name as used in the paper's Figure 12.
    pub name: &'static str,
    /// `minisplit` source text.
    pub source: String,
    /// The processor count the source was generated for (array sizes and
    /// index expressions depend on it).
    pub procs: u32,
}

/// Problem-size knobs shared by the generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Number of processors the program will run on.
    pub procs: u32,
    /// Elements (grid points / panel rows / patients) per processor.
    pub elements_per_proc: u32,
    /// Outer timesteps / iterations.
    pub steps: u32,
    /// Abstract compute cost per element update, in cycles.
    pub work_per_element: u32,
}

impl KernelParams {
    /// The default evaluation configuration for `procs` processors.
    pub fn evaluation(procs: u32) -> Self {
        KernelParams {
            procs,
            elements_per_proc: 8,
            steps: 10,
            work_per_element: 150,
        }
    }

    /// A smaller configuration for simulator-throughput sweeps: the same
    /// communication and synchronization mix as [`evaluation`], at a
    /// fraction of the event count, so a multi-config bench run stays
    /// fast enough for CI.
    ///
    /// [`evaluation`]: KernelParams::evaluation
    pub fn bench(procs: u32) -> Self {
        KernelParams {
            procs,
            elements_per_proc: 4,
            steps: 4,
            work_per_element: 60,
        }
    }
}

/// All five kernels generated with one shared parameter set — the entry
/// point sweep drivers use to pin a non-default problem size.
pub fn kernels_with(params: &KernelParams) -> Vec<Kernel> {
    vec![
        ocean::generate(params),
        em3d::generate(params),
        epithel::generate(params),
        cholesky::generate(params),
        health::generate(params),
    ]
}

/// All five kernels at the default evaluation size for `procs` processors.
pub fn all_kernels(procs: u32) -> Vec<Kernel> {
    kernels_with(&KernelParams::evaluation(procs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;

    #[test]
    fn all_kernels_parse_and_check() {
        for kernel in all_kernels(8) {
            let r = prepare_program(&kernel.source);
            assert!(
                r.is_ok(),
                "{} failed frontend: {:?}\n{}",
                kernel.name,
                r.err(),
                kernel.source
            );
        }
    }

    #[test]
    fn kernel_names_match_figure12() {
        let names: Vec<&str> = all_kernels(4).iter().map(|k| k.name).collect();
        assert_eq!(names, ["Ocean", "EM3D", "Epithel", "Cholesky", "Health"]);
    }

    #[test]
    fn bench_params_parse_on_every_kernel() {
        for procs in [1, 4, 16] {
            for kernel in kernels_with(&KernelParams::bench(procs)) {
                prepare_program(&kernel.source)
                    .unwrap_or_else(|e| panic!("{} bench at {procs} procs: {e}", kernel.name));
            }
        }
    }

    #[test]
    fn kernels_scale_with_processor_count() {
        for procs in [2, 4, 16, 64] {
            for kernel in all_kernels(procs) {
                assert_eq!(kernel.procs, procs);
                prepare_program(&kernel.source)
                    .unwrap_or_else(|e| panic!("{} at {procs} procs: {e}", kernel.name));
            }
        }
    }

    #[test]
    fn analysis_runs_on_every_kernel() {
        use syncopt_ir::lower::lower_main;
        for kernel in all_kernels(4) {
            let cfg = lower_main(&prepare_program(&kernel.source).unwrap()).unwrap();
            let analysis = syncopt_core::analyze(&cfg);
            let stats = analysis.stats();
            assert!(
                stats.delay_sync <= stats.delay_ss,
                "{}: refinement grew the delay set ({stats:?})",
                kernel.name
            );
            assert!(
                analysis.delay_sync.is_subset_of(&analysis.delay_ss),
                "{}: not a subset",
                kernel.name
            );
        }
    }

    #[test]
    fn synchronized_kernels_benefit_from_refinement() {
        use syncopt_ir::lower::lower_main;
        for kernel in all_kernels(4) {
            let cfg = lower_main(&prepare_program(&kernel.source).unwrap()).unwrap();
            let analysis = syncopt_core::analyze(&cfg);
            let stats = analysis.stats();
            assert!(
                stats.delay_sync < stats.delay_ss,
                "{}: synchronization analysis should strictly shrink the \
                 delay set here ({stats:?})",
                kernel.name
            );
        }
    }
}
