//! Synthetic scaling programs for the delay-set analysis benchmark.
//!
//! Two idioms from the paper's figures, each parameterized by an unroll
//! factor so the access count — and with it the analysis work — grows on
//! demand:
//!
//! * [`ScalingIdiom::Stencil`] — the barrier-phased halo exchange of
//!   `programs/stencil.ms` / Ocean, with the owner-computed block update
//!   unrolled `unroll` times. Owner accesses are provably conflict-free
//!   (affine, distinct per processor), so the candidate pruning in the
//!   delay-set driver should skip almost every pair; only the halo
//!   read / fold write pair and the barriers reach the back-path oracle.
//! * [`ScalingIdiom::Flag`] — Figure 1's flag/data figure-eight with
//!   `unroll` data slots. Every access conflicts across processors, so
//!   this stresses the mirror-copy reachability closure rather than the
//!   pruning path.
//!
//! `syncoptc bench` and the `delay_scaling` bench binary analyze the
//! [`trajectory`] grid and record work counters per configuration.

use crate::Kernel;
use std::fmt::Write;

/// Which program shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingIdiom {
    /// Barrier-phased stencil with an unrolled owner-computed block.
    Stencil,
    /// Figure 1 flag/data handshake with an unrolled data vector.
    Flag,
}

impl ScalingIdiom {
    /// Stable lowercase label used in benchmark config ids and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ScalingIdiom::Stencil => "stencil",
            ScalingIdiom::Flag => "flag",
        }
    }
}

/// One point of the scaling trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingParams {
    /// Program shape.
    pub idiom: ScalingIdiom,
    /// Unroll factor (≥ 2): how many times the idiom's data body repeats.
    pub unroll: u32,
    /// Processor count the program is generated and analyzed for.
    pub procs: u32,
}

impl ScalingParams {
    /// Stable configuration id (`stencil_u32_p16`), the join key between
    /// a fresh benchmark run and a committed baseline.
    pub fn id(&self) -> String {
        format!("{}_u{}_p{}", self.idiom.label(), self.unroll, self.procs)
    }
}

/// Generates the scaling program for one trajectory point.
pub fn generate(params: &ScalingParams) -> Kernel {
    let u = params.unroll.max(2) as u64;
    match params.idiom {
        ScalingIdiom::Stencil => generate_stencil(params, u),
        ScalingIdiom::Flag => generate_flag(params, u),
    }
}

fn generate_stencil(params: &ScalingParams, u: u64) -> Kernel {
    let n = params.procs as u64 * u;
    let mut s = String::new();
    writeln!(s, "// Scaled stencil: {u}-way unrolled owner block.").unwrap();
    writeln!(s, "shared double G[{n}];").unwrap();
    writeln!(s, "shared double NG[{n}];").unwrap();
    writeln!(s, "fn main() {{").unwrap();
    writeln!(s, "    int t;").unwrap();
    writeln!(s, "    double right;").unwrap();
    writeln!(s, "    for (t = 0; t < 2; t = t + 1) {{").unwrap();
    writeln!(s, "        right = 0.0;").unwrap();
    // Halo pull: the right neighbor's first cell — the one access pair
    // that genuinely conflicts with the fold write below.
    writeln!(s, "        if (MYPROC < PROCS - 1) {{").unwrap();
    writeln!(s, "            right = G[MYPROC * {u} + {u}];").unwrap();
    writeln!(s, "        }}").unwrap();
    writeln!(s, "        work(50);").unwrap();
    writeln!(s, "        NG[MYPROC * {u}] = right * 0.5;").unwrap();
    // Owner-computed block update: indices MYPROC*u + i with 0 < i < u
    // never coincide across processors, so all these accesses are
    // conflict-free and should be pruned before the oracle.
    for i in 1..u {
        writeln!(
            s,
            "        NG[MYPROC * {u} + {i}] = G[MYPROC * {u} + {i}] * 0.25;"
        )
        .unwrap();
    }
    writeln!(s, "        barrier;").unwrap();
    writeln!(s, "        G[MYPROC * {u}] = NG[MYPROC * {u}];").unwrap();
    writeln!(s, "        barrier;").unwrap();
    writeln!(s, "    }}").unwrap();
    writeln!(s, "}}").unwrap();
    Kernel {
        name: "ScalingStencil",
        source: s,
        procs: params.procs,
    }
}

fn generate_flag(params: &ScalingParams, u: u64) -> Kernel {
    let mut s = String::new();
    writeln!(s, "// Scaled Figure 1: {u} data slots behind one flag.").unwrap();
    writeln!(s, "shared int Data[{u}];").unwrap();
    writeln!(s, "shared int Flag;").unwrap();
    writeln!(s, "fn main() {{").unwrap();
    writeln!(s, "    int v;").unwrap();
    writeln!(s, "    if (MYPROC == 0) {{").unwrap();
    for i in 0..u {
        writeln!(s, "        Data[{i}] = {};", i + 1).unwrap();
    }
    writeln!(s, "        Flag = 1;").unwrap();
    writeln!(s, "    }} else {{").unwrap();
    writeln!(s, "        v = Flag;").unwrap();
    for i in 0..u {
        writeln!(s, "        v = Data[{i}];").unwrap();
    }
    writeln!(s, "    }}").unwrap();
    writeln!(s, "}}").unwrap();
    Kernel {
        name: "ScalingFlag",
        source: s,
        procs: params.procs,
    }
}

/// The full benchmark grid, smallest first. The last entry of each idiom
/// is the "largest generated input" the work-reduction acceptance
/// criterion is judged on.
///
/// Two axes per the sharded-simulation milestone: the original *unroll*
/// axis grows the access count at a fixed 16-processor machine, and the
/// *machine-width* axis holds the unroll at 16 while the processor count
/// grows to the sharded engine's design sizes (64/256/1024) — the
/// analysis is per-program-text, so these points prove the delay-set
/// work stays flat as the simulated machine widens.
pub fn trajectory() -> Vec<ScalingParams> {
    let mut out = Vec::new();
    for unroll in [4, 8, 16, 32, 64, 128] {
        out.push(ScalingParams {
            idiom: ScalingIdiom::Stencil,
            unroll,
            procs: 16,
        });
    }
    for procs in [64, 256, 1024] {
        out.push(ScalingParams {
            idiom: ScalingIdiom::Stencil,
            unroll: 16,
            procs,
        });
    }
    for unroll in [4, 8, 16, 32, 64] {
        out.push(ScalingParams {
            idiom: ScalingIdiom::Flag,
            unroll,
            procs: 4,
        });
    }
    out
}

/// A two-point subset for CI smoke runs: one config per idiom, each a
/// member of the full [`trajectory`] so a smoke run can be gated against
/// a committed full-trajectory baseline by config id.
pub fn smoke_trajectory() -> Vec<ScalingParams> {
    vec![
        ScalingParams {
            idiom: ScalingIdiom::Stencil,
            unroll: 8,
            procs: 16,
        },
        ScalingParams {
            idiom: ScalingIdiom::Flag,
            unroll: 8,
            procs: 4,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;

    #[test]
    fn every_trajectory_point_parses() {
        for p in trajectory().iter().chain(smoke_trajectory().iter()) {
            let k = generate(p);
            prepare_program(&k.source)
                .unwrap_or_else(|e| panic!("{} failed frontend: {e}\n{}", p.id(), k.source));
        }
    }

    #[test]
    fn smoke_points_are_members_of_the_full_trajectory() {
        let full: Vec<String> = trajectory().iter().map(ScalingParams::id).collect();
        for p in smoke_trajectory() {
            assert!(
                full.contains(&p.id()),
                "{} has no full-trajectory twin; the CI smoke gate would not join it",
                p.id()
            );
        }
    }

    #[test]
    fn config_ids_are_stable_and_unique() {
        let ids: Vec<String> = trajectory().iter().map(ScalingParams::id).collect();
        assert!(ids.contains(&"stencil_u128_p16".to_string()));
        assert!(ids.contains(&"stencil_u16_p1024".to_string()));
        assert!(ids.contains(&"flag_u64_p4".to_string()));
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn stencil_access_count_grows_with_unroll() {
        use syncopt_ir::lower::lower_main;
        let small = generate(&ScalingParams {
            idiom: ScalingIdiom::Stencil,
            unroll: 4,
            procs: 4,
        });
        let large = generate(&ScalingParams {
            idiom: ScalingIdiom::Stencil,
            unroll: 32,
            procs: 4,
        });
        let count = |k: &Kernel| {
            lower_main(&prepare_program(&k.source).unwrap())
                .unwrap()
                .accesses
                .len()
        };
        assert!(count(&large) > 4 * count(&small) / 2);
    }

    #[test]
    fn stencil_owner_block_is_mostly_pruned() {
        use syncopt_ir::lower::lower_main;
        let k = generate(&ScalingParams {
            idiom: ScalingIdiom::Stencil,
            unroll: 32,
            procs: 16,
        });
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, k.procs);
        let candidates = analysis.metrics.get("cycle.candidate_pairs");
        let queries = analysis.metrics.get("cycle.backpath_queries");
        assert!(
            candidates >= 10 * queries.max(1),
            "owner-computed accesses should prune ≥90% of candidates \
             ({candidates} candidates, {queries} queries)"
        );
    }

    #[test]
    fn flag_idiom_requires_the_figure_eight_delays() {
        use syncopt_ir::lower::lower_main;
        let k = generate(&ScalingParams {
            idiom: ScalingIdiom::Flag,
            unroll: 4,
            procs: 4,
        });
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = syncopt_core::analyze_for(&cfg, k.procs);
        assert!(!analysis.delay_ss.is_empty());
    }
}
