//! EM3D: electromagnetic-wave propagation on a bipartite graph (Culler et
//! al.'s Split-C application; reference 14 in the paper).
//!
//! Leapfrog integration: on alternate half steps the electric field `E` is
//! updated from neighboring magnetic values `H`, then vice versa. The
//! skeleton keeps the characteristic pattern — each half step pulls
//! several *remote* graph neighbors (the cross-processor edges of the
//! bipartite graph), updates owned nodes, pushes one ghost value to the
//! neighbor, and hits a barrier.
//!
//! Under the Shasha–Snir delay set the remote pulls of one half step
//! serialize (each pair of same-array reads is "cyclic" through the remote
//! writes); the synchronization analysis recognizes the barrier phases and
//! lets them pipeline — the paper's headline effect.

use crate::{Kernel, KernelParams};
use std::fmt::Write;

/// Generates the EM3D skeleton for `params`.
pub fn generate(params: &KernelParams) -> Kernel {
    let p = params.procs as u64;
    let b = params.elements_per_proc.max(6) as u64;
    let n = p * b;
    let steps = params.steps;
    let w = params.work_per_element as u64 * b;
    let mut s = String::new();
    writeln!(s, "// EM3D: bipartite leapfrog with barrier half-steps.").unwrap();
    writeln!(s, "shared double E[{n}];").unwrap();
    writeln!(s, "shared double H[{n}];").unwrap();
    writeln!(s, "shared double HG[{p}];").unwrap();
    writeln!(s, "shared double EG[{p}];").unwrap();
    writeln!(
        s,
        r#"
fn main() {{
    int t;
    double h1; double h2; double h3; double hg;
    double e1; double e2; double e3; double eg;
    for (t = 0; t < {steps}; t = t + 1) {{
        // E half-step: pull three remote H neighbors and the pushed ghost.
        h1 = 0.0; h2 = 0.0; h3 = 0.0;
        if (MYPROC < PROCS - 1) {{
            h1 = H[MYPROC * {b} + {b}];
            h2 = H[MYPROC * {b} + {b} + 1];
            h3 = H[MYPROC * {b} + {b} + 2];
        }}
        hg = HG[MYPROC];
        work({w});
        E[MYPROC * {b}] = (h1 + h2 + h3 + hg) * 0.25;
        E[MYPROC * {b} + 1] = (h1 - h3) * 0.5;
        // Push this block's E edge into the right neighbor's ghost slot.
        if (MYPROC < PROCS - 1) {{
            EG[MYPROC + 1] = h1 * 0.5;
        }}
        barrier;
        // H half-step: pull three remote E neighbors and the pushed ghost.
        e1 = 0.0; e2 = 0.0; e3 = 0.0;
        if (MYPROC > 0) {{
            e1 = E[MYPROC * {b} - 1];
            e2 = E[MYPROC * {b} - 2];
            e3 = E[MYPROC * {b} - 3];
        }}
        eg = EG[MYPROC];
        work({w});
        H[MYPROC * {b}] = (e1 + e2 + e3 + eg) * 0.25;
        H[MYPROC * {b} + 1] = (e1 - e3) * 0.5;
        if (MYPROC < PROCS - 1) {{
            HG[MYPROC + 1] = e1 * 0.5;
        }}
        barrier;
    }}
}}
"#,
        steps = steps,
        b = b,
        w = w,
    )
    .unwrap();
    Kernel {
        name: "EM3D",
        source: s,
        procs: params.procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze_for;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    #[test]
    fn generates_valid_program() {
        let k = generate(&KernelParams::evaluation(8));
        prepare_program(&k.source).unwrap();
    }

    #[test]
    fn refinement_shrinks_delays() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let s = analysis.stats();
        assert!(s.delay_sync < s.delay_ss, "{s:?}");
        assert_eq!(s.aligned_barriers, 2);
    }

    #[test]
    fn ghost_pushes_convert_to_stores() {
        use syncopt_codegen::{optimize, DelayChoice, OptLevel};
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let opt = optimize(&cfg, &analysis, OptLevel::OneWay, DelayChoice::SyncRefined);
        assert!(
            opt.stats.puts_to_stores >= 2,
            "both ghost pushes should convert: {:?}",
            opt.stats
        );
    }

    #[test]
    fn simulates_on_cm5() {
        let k = generate(&KernelParams {
            procs: 4,
            elements_per_proc: 6,
            steps: 2,
            work_per_element: 50,
        });
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let r = syncopt_machine::simulate(&cfg, &syncopt_machine::MachineConfig::cm5(4))
            .expect("EM3D should simulate");
        assert!(r.barriers_aligned);
        assert_eq!(r.net.barriers, 4, "2 steps × 2 half-step barriers");
    }

    #[test]
    fn optimization_speeds_up_em3d() {
        use syncopt_codegen::{optimize, DelayChoice, OptLevel};
        let k = generate(&KernelParams::evaluation(8));
        let config = syncopt_machine::MachineConfig::cm5(8);
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let unopt = optimize(
            &cfg,
            &analysis,
            OptLevel::Pipelined,
            DelayChoice::ShashaSnir,
        );
        let opt = optimize(&cfg, &analysis, OptLevel::OneWay, DelayChoice::SyncRefined);
        let unopt = syncopt_machine::simulate(&unopt.cfg, &config).unwrap();
        let opt = syncopt_machine::simulate(&opt.cfg, &config).unwrap();
        assert!(
            opt.exec_cycles < unopt.exec_cycles,
            "opt {} vs unopt {}",
            opt.exec_cycles,
            unopt.exec_cycles
        );
        assert_eq!(opt.memory, unopt.memory);
    }
}
