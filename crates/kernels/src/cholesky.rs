//! Cholesky: factorization of a symmetric matrix, blocked-cyclic panels,
//! producer-consumer synchronization with post/wait flags (§8).
//!
//! Panel `k` is owned by processor `k mod PROCS`. The owner factors the
//! panel (abstracted compute), publishes its column block with shared
//! writes, and posts `f[k]`; every processor waits on `f[k]` before
//! reading the panel to update its own trailing blocks. The post→wait
//! precedence is exactly the §5.1 pattern: the synchronization analysis
//! orders the panel writes before the panel reads, which lets the writes
//! pipeline among themselves and the reads overlap.

use crate::{Kernel, KernelParams};
use std::fmt::Write;

/// Generates the Cholesky skeleton for `params`.
///
/// The owner publishes three panel pieces at offsets `MYPROC`,
/// `MYPROC + PROCS`, `MYPROC + 2·PROCS` within the panel's stripe: since
/// only the owner writes and the offsets are congruence-distinct per
/// processor, the modular subscript analysis proves the writes
/// per-processor-disjoint — so the *only* ordering the analysis must keep
/// on the producer side is writes-before-post, and the three puts pipeline.
pub fn generate(params: &KernelParams) -> Kernel {
    let p = params.procs.max(2) as u64;
    let b = 3 * p; // panel stripe: three offsets per processor
    let panels = params.steps.max(2) as u64;
    let n = panels * b;
    let w_factor = params.work_per_element as u64 * 8;
    let w_update = params.work_per_element as u64 * 4;
    let mut s = String::new();
    writeln!(
        s,
        "// Cholesky: blocked-cyclic panels with post/wait flags."
    )
    .unwrap();
    writeln!(s, "shared double Panel[{n}];").unwrap();
    writeln!(s, "flag f[{panels}];").unwrap();
    writeln!(
        s,
        r#"
fn main() {{
    int k;
    double v0;
    double v1;
    for (k = 0; k < {panels}; k = k + 1) {{
        if (MYPROC == k % PROCS) {{
            // Factor the panel and publish its column block.
            work({w_factor});
            Panel[k * {b} + MYPROC] = 1.0;
            Panel[k * {b} + MYPROC + {p}] = 2.0;
            Panel[k * {b} + MYPROC + {p2}] = 3.0;
            post f[k];
        }}
        // Consumers (including the owner) use the panel to update their
        // trailing submatrix.
        wait f[k];
        v0 = Panel[k * {b} + k % PROCS];
        v1 = Panel[k * {b} + k % PROCS + {p}];
        work({w_update});
        work({w_update});
    }}
}}
"#,
        panels = panels,
        b = b,
        p = p,
        p2 = 2 * p,
        w_factor = w_factor,
        w_update = w_update,
    )
    .unwrap();
    Kernel {
        name: "Cholesky",
        source: s,
        procs: params.procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_core::analyze_for;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::access::AccessKind;
    use syncopt_ir::lower::lower_main;

    #[test]
    fn generates_valid_program() {
        let k = generate(&KernelParams::evaluation(8));
        prepare_program(&k.source).unwrap();
    }

    #[test]
    fn post_wait_precedence_is_found() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let post = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Post)
            .unwrap()
            .0;
        let wait = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Wait)
            .unwrap()
            .0;
        assert!(
            analysis.sync.precedence.contains(post, wait),
            "unique post site should match the wait"
        );
        // Panel writes must be ordered before the post (D1), and reads
        // after the wait.
        let writes: Vec<_> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Write)
            .map(|(id, _)| id)
            .collect();
        for w in writes {
            assert!(
                analysis.delay_sync.contains(w, post),
                "panel write {w} must complete before the post"
            );
        }
    }

    #[test]
    fn panel_writes_pipeline_under_refinement() {
        let k = generate(&KernelParams::evaluation(4));
        let cfg = lower_main(&prepare_program(&k.source).unwrap()).unwrap();
        let analysis = analyze_for(&cfg, k.procs);
        let writes: Vec<_> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Write)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(writes.len(), 3);
        // The three panel writes need no mutual delays under refinement.
        for &w1 in &writes {
            for &w2 in &writes {
                assert!(
                    !analysis.delay_sync.contains(w1, w2),
                    "writes {w1},{w2} should pipeline"
                );
            }
        }
        let s = analysis.stats();
        assert!(s.delay_sync < s.delay_ss, "{s:?}");
    }
}
