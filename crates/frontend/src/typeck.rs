//! Type checker for `minisplit`.
//!
//! Enforces the language restrictions of the paper's source language (§2):
//! shared data is reachable only through declared shared scalars and
//! distributed arrays, synchronization objects (`flag`, `lock`) are not data,
//! and there are no pointers at all. Integer-to-double widening is the only
//! implicit conversion.

use crate::ast::{
    BinOp, Decl, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind, Type, UnOp,
};
use crate::error::FrontendError;
use crate::span::Span;
use std::collections::HashMap;

/// Classification of a name visible inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    SharedScalar(Type),
    SharedArray(Type),
    Flag,
    FlagArray,
    Lock,
    Local(Type),
    LocalArray(Type),
}

/// Type checks `program`.
///
/// # Errors
///
/// Returns the first type error found: duplicate declarations, unknown or
/// misused names, type mismatches, bad call arity, or use of a
/// synchronization object as data.
pub fn check(program: &Program) -> Result<(), FrontendError> {
    let ctx = ProgramContext::build(program)?;
    for func in &program.functions {
        ctx.check_function(func)?;
    }
    Ok(())
}

/// The program-level facts a single function's type checking depends on:
/// the global declaration table plus every function signature. Building
/// the context performs the program-level checks (duplicate declarations,
/// duplicate or shadowing functions); individual functions can then be
/// checked — and cached — independently via
/// [`check_function`](ProgramContext::check_function). This is the
/// per-function hook the incremental session API keys its `fncheck`
/// artifacts on: a context fingerprint plus a function fingerprint
/// identify a check result exactly.
pub struct ProgramContext<'a> {
    program: &'a Program,
    globals: HashMap<&'a str, Binding>,
}

impl<'a> ProgramContext<'a> {
    /// Builds the context, performing all program-level checks.
    ///
    /// # Errors
    ///
    /// Returns duplicate-declaration, duplicate-function, or
    /// global-shadowing errors.
    pub fn build(program: &'a Program) -> Result<Self, FrontendError> {
        let mut globals: HashMap<&str, Binding> = HashMap::new();
        for decl in &program.decls {
            let binding = match decl {
                Decl::SharedScalar { ty, .. } => Binding::SharedScalar(*ty),
                Decl::SharedArray { ty, .. } => Binding::SharedArray(*ty),
                Decl::Flag { .. } => Binding::Flag,
                Decl::FlagArray { .. } => Binding::FlagArray,
                Decl::Lock { .. } => Binding::Lock,
            };
            if globals.insert(decl.name(), binding).is_some() {
                return Err(FrontendError::ty(
                    decl.span(),
                    format!("duplicate global declaration of `{}`", decl.name()),
                ));
            }
        }

        let mut seen_fns: HashMap<&str, Span> = HashMap::new();
        for func in &program.functions {
            if seen_fns.insert(&func.name, func.span).is_some() {
                return Err(FrontendError::ty(
                    func.span,
                    format!("duplicate function `{}`", func.name),
                ));
            }
            if globals.contains_key(func.name.as_str()) {
                return Err(FrontendError::ty(
                    func.span,
                    format!("function `{}` shadows a global declaration", func.name),
                ));
            }
        }
        Ok(ProgramContext { program, globals })
    }

    /// Type checks one function against this context.
    ///
    /// # Errors
    ///
    /// Returns the first type error in the function body.
    pub fn check_function(&self, func: &Function) -> Result<(), FrontendError> {
        Checker {
            program: self.program,
            globals: &self.globals,
            locals: HashMap::new(),
        }
        .check_function(func)
    }
}

struct Checker<'a> {
    program: &'a Program,
    globals: &'a HashMap<&'a str, Binding>,
    locals: HashMap<String, Binding>,
}

impl<'a> Checker<'a> {
    fn check_function(&mut self, func: &Function) -> Result<(), FrontendError> {
        for param in &func.params {
            if !param.ty.is_data() {
                return Err(FrontendError::ty(
                    param.span,
                    format!("parameter `{}` must be int or double", param.name),
                ));
            }
            if self
                .locals
                .insert(param.name.clone(), Binding::Local(param.ty))
                .is_some()
            {
                return Err(FrontendError::ty(
                    param.span,
                    format!("duplicate parameter `{}`", param.name),
                ));
            }
        }
        self.check_stmts(&func.body)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        self.locals
            .get(name)
            .copied()
            .or_else(|| self.globals.get(name).copied())
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for stmt in stmts {
            self.check_stmt(stmt)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match &stmt.kind {
            StmtKind::LocalDecl {
                name,
                ty,
                len,
                init,
            } => {
                if self.globals.contains_key(name.as_str()) {
                    return Err(FrontendError::ty(
                        stmt.span,
                        format!("local `{name}` shadows a global declaration"),
                    ));
                }
                if let Some(init) = init {
                    let init_ty = self.expr_type(init)?;
                    self.require_assignable(*ty, init_ty, init.span)?;
                }
                let binding = if len.is_some() {
                    Binding::LocalArray(*ty)
                } else {
                    Binding::Local(*ty)
                };
                if self.locals.insert(name.clone(), binding).is_some() {
                    return Err(FrontendError::ty(
                        stmt.span,
                        format!("duplicate local declaration of `{name}`"),
                    ));
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                let lhs_ty = self.lvalue_type(lhs)?;
                let rhs_ty = self.expr_type(rhs)?;
                self.require_assignable(lhs_ty, rhs_ty, rhs.span)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.require_bool(cond)?;
                self.check_stmts(then_branch)?;
                self.check_stmts(else_branch)
            }
            StmtKind::While { cond, body } => {
                self.require_bool(cond)?;
                self.check_stmts(body)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.check_stmt(init)?;
                self.require_bool(cond)?;
                self.check_stmt(step)?;
                self.check_stmts(body)
            }
            StmtKind::Barrier | StmtKind::Return => Ok(()),
            StmtKind::Post { flag, index } | StmtKind::Wait { flag, index } => {
                match (self.lookup(flag), index) {
                    (Some(Binding::Flag), None) => Ok(()),
                    (Some(Binding::FlagArray), Some(idx)) => {
                        let t = self.expr_type(idx)?;
                        if t != Type::Int {
                            return Err(FrontendError::ty(
                                idx.span,
                                format!("flag index must be int, found {t}"),
                            ));
                        }
                        Ok(())
                    }
                    (Some(Binding::Flag), Some(idx)) => Err(FrontendError::ty(
                        idx.span,
                        format!("`{flag}` is a scalar flag and cannot be indexed"),
                    )),
                    (Some(Binding::FlagArray), None) => Err(FrontendError::ty(
                        stmt.span,
                        format!("`{flag}` is a flag array and requires an index"),
                    )),
                    (Some(_), _) => Err(FrontendError::ty(
                        stmt.span,
                        format!("`{flag}` is not a flag"),
                    )),
                    (None, _) => Err(FrontendError::ty(
                        stmt.span,
                        format!("unknown flag `{flag}`"),
                    )),
                }
            }
            StmtKind::Lock { lock } | StmtKind::Unlock { lock } => match self.lookup(lock) {
                Some(Binding::Lock) => Ok(()),
                Some(_) => Err(FrontendError::ty(
                    stmt.span,
                    format!("`{lock}` is not a lock"),
                )),
                None => Err(FrontendError::ty(
                    stmt.span,
                    format!("unknown lock `{lock}`"),
                )),
            },
            StmtKind::Work { cost } => {
                let t = self.expr_type(cost)?;
                if t != Type::Int {
                    return Err(FrontendError::ty(
                        cost.span,
                        format!("work cost must be int, found {t}"),
                    ));
                }
                Ok(())
            }
            StmtKind::Call { name, args } => {
                let Some(callee) = self.program.function(name) else {
                    return Err(FrontendError::ty(
                        stmt.span,
                        format!("call to unknown function `{name}`"),
                    ));
                };
                if callee.params.len() != args.len() {
                    return Err(FrontendError::ty(
                        stmt.span,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            callee.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (param, arg) in callee.params.iter().zip(args) {
                    let arg_ty = self.expr_type(arg)?;
                    self.require_assignable(param.ty, arg_ty, arg.span)?;
                }
                Ok(())
            }
            StmtKind::Block(stmts) => self.check_stmts(stmts),
        }
    }

    fn lvalue_type(&self, lvalue: &LValue) -> Result<Type, FrontendError> {
        match lvalue {
            LValue::Var { name, span } => match self.lookup(name) {
                Some(Binding::Local(ty) | Binding::SharedScalar(ty)) => Ok(ty),
                Some(Binding::SharedArray(_) | Binding::LocalArray(_)) => Err(FrontendError::ty(
                    *span,
                    format!("array `{name}` must be indexed"),
                )),
                Some(Binding::Flag | Binding::FlagArray | Binding::Lock) => Err(FrontendError::ty(
                    *span,
                    format!("synchronization object `{name}` cannot be assigned"),
                )),
                None => Err(FrontendError::ty(
                    *span,
                    format!("unknown variable `{name}`"),
                )),
            },
            LValue::ArrayElem { name, index, span } => {
                let idx_ty = self.expr_type(index)?;
                if idx_ty != Type::Int {
                    return Err(FrontendError::ty(
                        index.span,
                        format!("array index must be int, found {idx_ty}"),
                    ));
                }
                match self.lookup(name) {
                    Some(Binding::SharedArray(ty) | Binding::LocalArray(ty)) => Ok(ty),
                    Some(_) => Err(FrontendError::ty(
                        *span,
                        format!("`{name}` is not an array"),
                    )),
                    None => Err(FrontendError::ty(*span, format!("unknown array `{name}`"))),
                }
            }
        }
    }

    fn expr_type(&self, expr: &Expr) -> Result<Type, FrontendError> {
        match &expr.kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::FloatLit(_) => Ok(Type::Double),
            ExprKind::BoolLit(_) => Ok(Type::Bool),
            ExprKind::MyProc | ExprKind::Procs => Ok(Type::Int),
            ExprKind::Var(name) => match self.lookup(name) {
                Some(Binding::Local(ty) | Binding::SharedScalar(ty)) => Ok(ty),
                Some(Binding::SharedArray(_) | Binding::LocalArray(_)) => Err(FrontendError::ty(
                    expr.span,
                    format!("array `{name}` must be indexed"),
                )),
                Some(Binding::Flag | Binding::FlagArray | Binding::Lock) => Err(FrontendError::ty(
                    expr.span,
                    format!("synchronization object `{name}` is not data"),
                )),
                None => Err(FrontendError::ty(
                    expr.span,
                    format!("unknown variable `{name}`"),
                )),
            },
            ExprKind::ArrayElem { name, index } => {
                let idx_ty = self.expr_type(index)?;
                if idx_ty != Type::Int {
                    return Err(FrontendError::ty(
                        index.span,
                        format!("array index must be int, found {idx_ty}"),
                    ));
                }
                match self.lookup(name) {
                    Some(Binding::SharedArray(ty) | Binding::LocalArray(ty)) => Ok(ty),
                    Some(_) => Err(FrontendError::ty(
                        expr.span,
                        format!("`{name}` is not an array"),
                    )),
                    None => Err(FrontendError::ty(
                        expr.span,
                        format!("unknown array `{name}`"),
                    )),
                }
            }
            ExprKind::Unary { op, expr: inner } => {
                let t = self.expr_type(inner)?;
                match op {
                    UnOp::Neg if t.is_numeric() => Ok(t),
                    UnOp::Not if t == Type::Bool => Ok(Type::Bool),
                    UnOp::Neg => Err(FrontendError::ty(inner.span, format!("cannot negate {t}"))),
                    UnOp::Not => Err(FrontendError::ty(
                        inner.span,
                        format!("`!` requires bool, found {t}"),
                    )),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr_type(lhs)?;
                let rt = self.expr_type(rhs)?;
                if op.is_logical() {
                    if lt != Type::Bool || rt != Type::Bool {
                        return Err(FrontendError::ty(
                            expr.span,
                            format!("`{op}` requires bool operands, found {lt} and {rt}"),
                        ));
                    }
                    return Ok(Type::Bool);
                }
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(FrontendError::ty(
                        expr.span,
                        format!("`{op}` requires numeric operands, found {lt} and {rt}"),
                    ));
                }
                if *op == BinOp::Rem && (lt != Type::Int || rt != Type::Int) {
                    return Err(FrontendError::ty(expr.span, "`%` requires int operands"));
                }
                if op.is_comparison() {
                    Ok(Type::Bool)
                } else if lt == Type::Double || rt == Type::Double {
                    Ok(Type::Double)
                } else {
                    Ok(Type::Int)
                }
            }
        }
    }

    fn require_bool(&self, cond: &Expr) -> Result<(), FrontendError> {
        let t = self.expr_type(cond)?;
        if t != Type::Bool {
            return Err(FrontendError::ty(
                cond.span,
                format!("condition must be bool, found {t}"),
            ));
        }
        Ok(())
    }

    fn require_assignable(&self, dst: Type, src: Type, span: Span) -> Result<(), FrontendError> {
        let ok = dst == src || (dst == Type::Double && src == Type::Int);
        if ok {
            Ok(())
        } else {
            Err(FrontendError::ty(
                span,
                format!("cannot assign {src} to {dst}"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::check_program;

    fn err(src: &str) -> String {
        check_program(src)
            .expect_err("expected a type error")
            .message()
            .to_string()
    }

    #[test]
    fn accepts_well_typed_program() {
        let src = r#"
            shared int X;
            shared double A[64];
            flag f;
            lock l;
            fn main() {
                int i = 0;
                double t;
                while (i < 10) {
                    t = A[i] * 2;
                    A[i] = t + X;
                    i = i + 1;
                }
                if (MYPROC == 0) { post f; } else { wait f; }
                lock l;
                X = X + 1;
                unlock l;
                barrier;
            }
        "#;
        check_program(src).unwrap();
    }

    #[test]
    fn int_widens_to_double_but_not_reverse() {
        check_program("fn main() { double d; d = 1; }").unwrap();
        assert!(err("fn main() { int i; i = 1.5; }").contains("cannot assign"));
    }

    #[test]
    fn rejects_duplicate_globals() {
        assert!(err("shared int X; shared double X;").contains("duplicate"));
    }

    #[test]
    fn rejects_duplicate_functions_and_shadowing() {
        assert!(err("fn f() {} fn f() {}").contains("duplicate function"));
        assert!(err("shared int f; fn f() {}").contains("shadows"));
        assert!(err("shared int X; fn main() { int X; }").contains("shadows"));
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(err("fn main() { x = 1; }").contains("unknown variable"));
        assert!(err("fn main() { int y; y = z; }").contains("unknown variable"));
        assert!(err("fn main() { post f; }").contains("unknown flag"));
        assert!(err("fn main() { lock l; }").contains("unknown lock"));
        assert!(err("fn main() { g(); }").contains("unknown function"));
    }

    #[test]
    fn rejects_sync_objects_as_data() {
        assert!(err("flag f; fn main() { int x; x = f; }").contains("not data"));
        assert!(err("lock l; fn main() { l = 1; }").contains("cannot be assigned"));
    }

    #[test]
    fn rejects_bad_flag_indexing() {
        assert!(err("flag f; fn main() { post f[0]; }").contains("cannot be indexed"));
        assert!(err("flag f[4]; fn main() { wait f; }").contains("requires an index"));
        assert!(err("flag f[4]; fn main() { post f[1.5]; }").contains("must be int"));
    }

    #[test]
    fn rejects_array_misuse() {
        assert!(err("shared int A[4]; fn main() { A = 1; }").contains("must be indexed"));
        assert!(err("shared int A[4]; fn main() { int x; x = A; }").contains("must be indexed"));
        assert!(err("shared int X; fn main() { X[0] = 1; }").contains("is not an array"));
        assert!(err("shared int A[4]; fn main() { A[1.5] = 1; }").contains("must be int"));
    }

    #[test]
    fn rejects_bad_conditions_and_operators() {
        assert!(err("fn main() { if (1) { } }").contains("must be bool"));
        assert!(err("fn main() { while (2.0) { } }").contains("must be bool"));
        assert!(err("fn main() { int x; x = 1 && 2; }").contains("requires bool"));
        assert!(err("fn main() { int x; x = !1; }").contains("requires bool"));
        assert!(err("fn main() { double d; d = 1.5 % 2.0; }").contains("requires int"));
        assert!(err("fn main() { int x; x = -true; }").contains("cannot negate"));
    }

    #[test]
    fn rejects_bad_calls() {
        assert!(err("fn f(int a) {} fn main() { f(); }").contains("expects 1 argument"));
        assert!(err("fn f(int a) {} fn main() { f(1.5); }").contains("cannot assign"));
        check_program("fn f(double a) {} fn main() { f(1); }").unwrap();
    }

    #[test]
    fn rejects_bad_work_cost() {
        assert!(err("fn main() { work(1.5); }").contains("must be int"));
    }

    #[test]
    fn local_arrays_type_check() {
        check_program("fn main() { int buf[8]; buf[0] = 1; int x; x = buf[3]; }").unwrap();
        assert!(err("fn main() { int buf[8]; buf = 1; }").contains("must be indexed"));
    }

    #[test]
    fn comparison_yields_bool_and_mixed_arith_widens() {
        check_program("fn main() { double d; d = 1 + 2.5; if (d < 3) { } }").unwrap();
    }
}
