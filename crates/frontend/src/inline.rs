//! Call inlining.
//!
//! `minisplit` functions are statement-level procedures; the analyses in
//! `syncopt-core` are whole-program, so before lowering we inline every call
//! into `main`. Callee locals and parameters are renamed with a unique
//! suffix, and parameters become initialized locals (call-by-value).
//!
//! Restrictions: recursion is rejected, and `return` is only permitted in
//! `main` (an inlined `return` would need a structured jump the AST lacks).

use crate::ast::{Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind};
use crate::error::FrontendError;
use crate::span::Span;
use std::collections::HashMap;

/// Inlines all calls, returning a program whose only function is `main`.
///
/// # Errors
///
/// Returns an error if the program has no `main`, if `main` takes
/// parameters, if any call chain is recursive, or if an inlined function
/// contains `return`.
pub fn inline_program(program: &Program) -> Result<Program, FrontendError> {
    let Some(main) = program.function("main") else {
        return Err(FrontendError::inline(
            Span::dummy(),
            "program has no `main` function",
        ));
    };
    if !main.params.is_empty() {
        return Err(FrontendError::inline(
            main.span,
            "`main` must not take parameters",
        ));
    }
    let mut ctx = Inliner {
        program,
        stack: vec!["main".to_string()],
        counter: 0,
    };
    let body = ctx.inline_stmts(&main.body, &HashMap::new(), true)?;
    Ok(Program {
        decls: program.decls.clone(),
        functions: vec![Function {
            name: "main".to_string(),
            params: Vec::new(),
            body,
            span: main.span,
        }],
    })
}

struct Inliner<'a> {
    program: &'a Program,
    stack: Vec<String>,
    counter: u64,
}

impl<'a> Inliner<'a> {
    fn inline_stmts(
        &mut self,
        stmts: &[Stmt],
        renames: &HashMap<String, String>,
        in_main: bool,
    ) -> Result<Vec<Stmt>, FrontendError> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            self.inline_stmt(stmt, renames, in_main, &mut out)?;
        }
        Ok(out)
    }

    fn inline_stmt(
        &mut self,
        stmt: &Stmt,
        renames: &HashMap<String, String>,
        in_main: bool,
        out: &mut Vec<Stmt>,
    ) -> Result<(), FrontendError> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::Call { name, args } => {
                if self.stack.iter().any(|f| f == name) {
                    return Err(FrontendError::inline(
                        span,
                        format!("recursive call to `{name}` cannot be inlined"),
                    ));
                }
                let callee = self
                    .program
                    .function(name)
                    .ok_or_else(|| {
                        FrontendError::inline(span, format!("call to unknown function `{name}`"))
                    })?
                    .clone();
                self.counter += 1;
                let suffix = format!("__{}_{}", name, self.counter);

                // Fresh names for parameters and all locals of the callee.
                let mut callee_renames: HashMap<String, String> = HashMap::new();
                for param in &callee.params {
                    callee_renames.insert(param.name.clone(), format!("{}{}", param.name, suffix));
                }
                collect_local_decls(&callee.body, &mut |n| {
                    callee_renames
                        .entry(n.to_string())
                        .or_insert_with(|| format!("{n}{suffix}"));
                });

                // Bind arguments (evaluated in the caller's scope).
                for (param, arg) in callee.params.iter().zip(args) {
                    out.push(Stmt::new(
                        StmtKind::LocalDecl {
                            name: callee_renames[&param.name].clone(),
                            ty: param.ty,
                            len: None,
                            init: Some(rename_expr(arg, renames)),
                        },
                        span,
                    ));
                }

                self.stack.push(name.clone());
                let body = self.inline_stmts(&callee.body, &callee_renames, false)?;
                self.stack.pop();
                out.push(Stmt::new(StmtKind::Block(body), span));
                Ok(())
            }
            StmtKind::Return => {
                if in_main {
                    out.push(Stmt::new(StmtKind::Return, span));
                    Ok(())
                } else {
                    Err(FrontendError::inline(
                        span,
                        "`return` inside an inlined function is not supported",
                    ))
                }
            }
            StmtKind::LocalDecl {
                name,
                ty,
                len,
                init,
            } => {
                let name = renames.get(name).cloned().unwrap_or_else(|| name.clone());
                out.push(Stmt::new(
                    StmtKind::LocalDecl {
                        name,
                        ty: *ty,
                        len: *len,
                        init: init.as_ref().map(|e| rename_expr(e, renames)),
                    },
                    span,
                ));
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                out.push(Stmt::new(
                    StmtKind::Assign {
                        lhs: rename_lvalue(lhs, renames),
                        rhs: rename_expr(rhs, renames),
                    },
                    span,
                ));
                Ok(())
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let kind = StmtKind::If {
                    cond: rename_expr(cond, renames),
                    then_branch: self.inline_stmts(then_branch, renames, in_main)?,
                    else_branch: self.inline_stmts(else_branch, renames, in_main)?,
                };
                out.push(Stmt::new(kind, span));
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let kind = StmtKind::While {
                    cond: rename_expr(cond, renames),
                    body: self.inline_stmts(body, renames, in_main)?,
                };
                out.push(Stmt::new(kind, span));
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut init_v = Vec::new();
                self.inline_stmt(init, renames, in_main, &mut init_v)?;
                let mut step_v = Vec::new();
                self.inline_stmt(step, renames, in_main, &mut step_v)?;
                debug_assert_eq!(init_v.len(), 1);
                debug_assert_eq!(step_v.len(), 1);
                let kind = StmtKind::For {
                    init: Box::new(init_v.pop().expect("one init statement")),
                    cond: rename_expr(cond, renames),
                    step: Box::new(step_v.pop().expect("one step statement")),
                    body: self.inline_stmts(body, renames, in_main)?,
                };
                out.push(Stmt::new(kind, span));
                Ok(())
            }
            StmtKind::Post { flag, index } => {
                out.push(Stmt::new(
                    StmtKind::Post {
                        flag: flag.clone(),
                        index: index.as_ref().map(|e| rename_expr(e, renames)),
                    },
                    span,
                ));
                Ok(())
            }
            StmtKind::Wait { flag, index } => {
                out.push(Stmt::new(
                    StmtKind::Wait {
                        flag: flag.clone(),
                        index: index.as_ref().map(|e| rename_expr(e, renames)),
                    },
                    span,
                ));
                Ok(())
            }
            StmtKind::Work { cost } => {
                out.push(Stmt::new(
                    StmtKind::Work {
                        cost: rename_expr(cost, renames),
                    },
                    span,
                ));
                Ok(())
            }
            StmtKind::Block(stmts) => {
                let inner = self.inline_stmts(stmts, renames, in_main)?;
                out.push(Stmt::new(StmtKind::Block(inner), span));
                Ok(())
            }
            StmtKind::Barrier | StmtKind::Lock { .. } | StmtKind::Unlock { .. } => {
                out.push(stmt.clone());
                Ok(())
            }
        }
    }
}

/// Calls `f` with the name of every local declaration in `stmts`, recursively.
fn collect_local_decls(stmts: &[Stmt], f: &mut impl FnMut(&str)) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::LocalDecl { name, .. } => f(name),
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_local_decls(then_branch, f);
                collect_local_decls(else_branch, f);
            }
            StmtKind::While { body, .. } => collect_local_decls(body, f),
            StmtKind::For {
                init, step, body, ..
            } => {
                collect_local_decls(std::slice::from_ref(init), f);
                collect_local_decls(std::slice::from_ref(step), f);
                collect_local_decls(body, f);
            }
            StmtKind::Block(stmts) => collect_local_decls(stmts, f),
            _ => {}
        }
    }
}

fn rename_expr(expr: &Expr, renames: &HashMap<String, String>) -> Expr {
    let kind = match &expr.kind {
        ExprKind::Var(name) => {
            ExprKind::Var(renames.get(name).cloned().unwrap_or_else(|| name.clone()))
        }
        ExprKind::ArrayElem { name, index } => ExprKind::ArrayElem {
            name: renames.get(name).cloned().unwrap_or_else(|| name.clone()),
            index: Box::new(rename_expr(index, renames)),
        },
        ExprKind::Unary { op, expr: inner } => ExprKind::Unary {
            op: *op,
            expr: Box::new(rename_expr(inner, renames)),
        },
        ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, renames)),
            rhs: Box::new(rename_expr(rhs, renames)),
        },
        other => other.clone(),
    };
    Expr::new(kind, expr.span)
}

fn rename_lvalue(lvalue: &LValue, renames: &HashMap<String, String>) -> LValue {
    match lvalue {
        LValue::Var { name, span } => LValue::Var {
            name: renames.get(name).cloned().unwrap_or_else(|| name.clone()),
            span: *span,
        },
        LValue::ArrayElem { name, index, span } => LValue::ArrayElem {
            name: renames.get(name).cloned().unwrap_or_else(|| name.clone()),
            index: Box::new(rename_expr(index, renames)),
            span: *span,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::prepare_program;
    use crate::pretty::program_to_string;

    #[test]
    fn inlines_simple_call() {
        let src = r#"
            shared int X;
            fn bump(int amount) { X = X + amount; }
            fn main() { bump(2); bump(3); }
        "#;
        let prog = prepare_program(src).unwrap();
        assert_eq!(prog.functions.len(), 1);
        let printed = program_to_string(&prog);
        assert!(!printed.contains("bump("), "call not inlined:\n{printed}");
        assert!(printed.contains("amount__bump_1"), "{printed}");
        assert!(printed.contains("amount__bump_2"), "{printed}");
    }

    #[test]
    fn inlines_nested_calls() {
        let src = r#"
            shared int X;
            fn inner(int v) { X = v; }
            fn outer(int v) { inner(v + 1); }
            fn main() { outer(5); }
        "#;
        let prog = prepare_program(src).unwrap();
        let printed = program_to_string(&prog);
        assert!(printed.contains("X = v__inner"), "{printed}");
    }

    #[test]
    fn renames_callee_locals() {
        let src = r#"
            shared int X;
            fn f() { int t; t = 1; X = t; }
            fn main() { int t; t = 9; f(); X = t; }
        "#;
        let prog = prepare_program(src).unwrap();
        let printed = program_to_string(&prog);
        assert!(printed.contains("t__f_1"), "{printed}");
    }

    #[test]
    fn rejects_recursion() {
        let src = "fn f() { f(); } fn main() { f(); }";
        let err = prepare_program(src).unwrap_err();
        assert!(err.message().contains("recursive"), "{err}");

        let mutual = "fn a() { b(); } fn b() { a(); } fn main() { a(); }";
        assert!(prepare_program(mutual).is_err());
    }

    #[test]
    fn rejects_return_in_inlined_function() {
        let src = "fn f() { return; } fn main() { f(); }";
        let err = prepare_program(src).unwrap_err();
        assert!(err.message().contains("return"), "{err}");
    }

    #[test]
    fn allows_return_in_main() {
        prepare_program("fn main() { return; }").unwrap();
    }

    #[test]
    fn rejects_missing_main() {
        let err = prepare_program("fn f() { }").unwrap_err();
        assert!(err.message().contains("main"), "{err}");
    }

    #[test]
    fn inlined_function_with_loops_and_sync() {
        let src = r#"
            shared double A[16]; flag f;
            fn phase(int base) {
                int i;
                for (i = 0; i < 4; i = i + 1) { A[base + i] = 1.0; }
                barrier;
            }
            fn main() {
                phase(0);
                if (MYPROC == 0) { post f; } else { wait f; }
                phase(4);
            }
        "#;
        let prog = prepare_program(src).unwrap();
        let printed = program_to_string(&prog);
        assert!(printed.contains("i__phase_1"), "{printed}");
        assert!(printed.contains("i__phase_2"), "{printed}");
        // Re-check the inlined program to make sure it is still well-typed.
        crate::typeck::check(&prog).unwrap();
    }
}
