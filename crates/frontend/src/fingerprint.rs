//! Stable content fingerprints for incremental analysis.
//!
//! The session/cache layer (`syncopt-core::cache`, `syncopt::session`)
//! keys every expensive pipeline artifact by a hash of its inputs so an
//! edited program only recomputes what actually changed. This module
//! provides the hash itself — a 128-bit FNV-1a over canonical text — and
//! the per-function hooks: a function's fingerprint is the hash of its
//! pretty-printed source (so formatting-identical definitions share one
//! fingerprint regardless of where in the file they sit), and the
//! *context* fingerprint captures everything outside a function body that
//! its type checking depends on (global declarations and every function
//! signature).
//!
//! Fingerprints are stable across processes and platforms: they depend
//! only on canonical text, never on addresses, hash-map order, or time.

use crate::ast::{Decl, Function, Program};
use crate::pretty::{decl_to_string, function_to_string};
use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash with a stable hex rendering.
///
/// ```
/// use syncopt_frontend::fingerprint::Fingerprint;
///
/// let a = Fingerprint::of("barrier;");
/// assert_eq!(a, Fingerprint::of("barrier;"));
/// assert_ne!(a, Fingerprint::of("post F;"));
/// assert_eq!(a.to_hex().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Hashes one string.
    pub fn of(text: &str) -> Self {
        Fingerprint(FNV_OFFSET).push(text)
    }

    /// Hashes a sequence of parts. Each part is terminated before mixing,
    /// so `of_parts(&["ab", "c"])` differs from `of_parts(&["a", "bc"])`.
    pub fn of_parts(parts: &[&str]) -> Self {
        parts
            .iter()
            .fold(Fingerprint(FNV_OFFSET), |fp, part| fp.push(part))
    }

    /// Extends this fingerprint with another part (order-sensitive).
    #[must_use]
    pub fn push(self, part: &str) -> Self {
        let mut h = self.0;
        for b in part.as_bytes() {
            h ^= u128::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Terminate the part so concatenation cannot collide.
        h ^= 0x1f;
        h = h.wrapping_mul(FNV_PRIME);
        Fingerprint(h)
    }

    /// The hash as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Fingerprint of one function definition: the hash of its canonical
/// (pretty-printed) source, so whitespace and comment edits do not change
/// it.
pub fn function_fingerprint(func: &Function) -> Fingerprint {
    Fingerprint::of_parts(&["fn.v1", &function_to_string(func)])
}

/// Fingerprint of everything a function body's type checking can see
/// besides its own text: every global declaration and every function
/// signature (name and parameter types), in program order.
pub fn context_fingerprint(program: &Program) -> Fingerprint {
    let mut fp = Fingerprint::of("ctx.v1");
    for decl in &program.decls {
        fp = fp.push(&decl_to_string(decl));
    }
    for func in &program.functions {
        fp = fp.push(&signature_string(func));
    }
    fp
}

/// Fingerprint of a whole program's canonical text (declarations plus
/// every function, pretty-printed).
pub fn program_fingerprint(program: &Program) -> Fingerprint {
    let mut fp = Fingerprint::of("program.v1");
    for decl in &program.decls {
        fp = fp.push(&decl_to_string(decl));
    }
    for func in &program.functions {
        fp = fp.push(&function_to_string(func));
    }
    fp
}

/// A function's call signature as canonical text (`name(int, double)`).
fn signature_string(func: &Function) -> String {
    let params: Vec<String> = func.params.iter().map(|p| p.ty.to_string()).collect();
    format!("{}({})", func.name, params.join(", "))
}

/// Canonical per-function fingerprints for every function in `program`,
/// in program order. Each entry pairs the function name with the hash of
/// its pretty-printed definition — the per-function cache key material
/// used by the incremental session.
pub fn function_fingerprints(program: &Program) -> Vec<(String, Fingerprint)> {
    program
        .functions
        .iter()
        .map(|f| (f.name.clone(), function_fingerprint(f)))
        .collect()
}

/// Helper: a decl-only fingerprint (used to detect edits confined to
/// function bodies).
pub fn decls_fingerprint(decls: &[Decl]) -> Fingerprint {
    let mut fp = Fingerprint::of("decls.v1");
    for decl in decls {
        fp = fp.push(&decl_to_string(decl));
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn part_boundaries_do_not_collide() {
        assert_ne!(
            Fingerprint::of_parts(&["ab", "c"]),
            Fingerprint::of_parts(&["a", "bc"])
        );
        assert_ne!(
            Fingerprint::of_parts(&["ab"]),
            Fingerprint::of_parts(&["ab", ""])
        );
    }

    #[test]
    fn function_fingerprint_ignores_formatting_but_not_content() {
        let a = parse_program("fn main() { work(1); }").unwrap();
        let b = parse_program("fn main()   {\n    work(1);\n}").unwrap();
        let c = parse_program("fn main() { work(2); }").unwrap();
        assert_eq!(
            function_fingerprint(&a.functions[0]),
            function_fingerprint(&b.functions[0])
        );
        assert_ne!(
            function_fingerprint(&a.functions[0]),
            function_fingerprint(&c.functions[0])
        );
    }

    #[test]
    fn context_fingerprint_tracks_decls_and_signatures_only() {
        let base =
            parse_program("shared int X; fn f(int a) { work(a); } fn main() { f(1); }").unwrap();
        // Editing a body leaves the context untouched.
        let body = parse_program("shared int X; fn f(int a) { work(a + 1); } fn main() { f(1); }")
            .unwrap();
        assert_eq!(context_fingerprint(&base), context_fingerprint(&body));
        // Changing a declaration or a signature changes it.
        let decl =
            parse_program("shared int Y; fn f(int a) { work(a); } fn main() { f(1); }").unwrap();
        let sig = parse_program("shared int X; fn f(double a) { work(1); } fn main() { f(1.0); }")
            .unwrap();
        assert_ne!(context_fingerprint(&base), context_fingerprint(&decl));
        assert_ne!(context_fingerprint(&base), context_fingerprint(&sig));
    }

    #[test]
    fn program_fingerprint_is_stable_and_order_sensitive() {
        let p = parse_program("shared int X; fn main() { X = 1; }").unwrap();
        assert_eq!(program_fingerprint(&p), program_fingerprint(&p));
        let fps = function_fingerprints(&p);
        assert_eq!(fps.len(), 1);
        assert_eq!(fps[0].0, "main");
    }
}
