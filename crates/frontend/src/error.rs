//! Frontend errors.
//!
//! [`FrontendError`] carries a classification, a message, and the source
//! [`Span`] it refers to. It deliberately stays renderer-free beyond the
//! plain [`FrontendError::render`] line format: the shared diagnostics
//! framework in `syncopt-core` (`diag::frontend_diagnostic`) converts it
//! to a full rustc-style [`Diagnostic`] with a source snippet, so there is
//! a single snippet renderer for the whole pipeline.
//!
//! [`Diagnostic`]: https://docs.rs/syncopt-core

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// An error produced while lexing, parsing, type checking, or inlining a
/// `minisplit` program.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    kind: FrontendErrorKind,
    span: Span,
    message: String,
}

/// Broad classification of a [`FrontendError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrontendErrorKind {
    /// Invalid character, malformed literal, unterminated comment.
    Lex,
    /// Unexpected token / malformed syntax.
    Parse,
    /// Type mismatch, unknown identifier, illegal construct.
    Type,
    /// Problems during call inlining (recursion, missing `main`).
    Inline,
}

impl FrontendError {
    /// Creates a lexical error at `span`.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        FrontendError {
            kind: FrontendErrorKind::Lex,
            span,
            message: message.into(),
        }
    }

    /// Creates a syntax error at `span`.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        FrontendError {
            kind: FrontendErrorKind::Parse,
            span,
            message: message.into(),
        }
    }

    /// Creates a type error at `span`.
    pub fn ty(span: Span, message: impl Into<String>) -> Self {
        FrontendError {
            kind: FrontendErrorKind::Type,
            span,
            message: message.into(),
        }
    }

    /// Creates an inlining error at `span`.
    pub fn inline(span: Span, message: impl Into<String>) -> Self {
        FrontendError {
            kind: FrontendErrorKind::Inline,
            span,
            message: message.into(),
        }
    }

    /// The classification of this error.
    pub fn kind(&self) -> FrontendErrorKind {
        self.kind
    }

    /// The source span the error refers to.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The human-readable message, without location information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Renders the error with line/column information computed from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{}:{}: {}: {}", line, col, self.kind, self.message)
    }
}

impl fmt::Display for FrontendErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrontendErrorKind::Lex => "lexical error",
            FrontendErrorKind::Parse => "syntax error",
            FrontendErrorKind::Type => "type error",
            FrontendErrorKind::Inline => "inline error",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.span, self.message)
    }
}

impl Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_line_and_column() {
        let src = "x\nyz";
        let err = FrontendError::parse(Span::new(2, 3), "bad thing");
        assert_eq!(err.render(src), "2:1: syntax error: bad thing");
    }

    #[test]
    fn display_mentions_kind() {
        let err = FrontendError::ty(Span::new(0, 1), "mismatch");
        let s = err.to_string();
        assert!(s.contains("type error"), "{s}");
        assert!(s.contains("mismatch"), "{s}");
    }
}
