#![warn(missing_docs)]

//! `minisplit`: a small explicitly parallel SPMD language frontend.
//!
//! This crate implements the *source language* of the PLDI'95 paper
//! "Optimizing Parallel Programs with Explicit Synchronization"
//! (Krishnamurthy & Yelick). The language is a restriction of Split-C:
//!
//! * SPMD execution — every processor runs the same program; `MYPROC` and
//!   `PROCS` are built-in expressions.
//! * A global address space reachable only through **shared scalars** and
//!   **distributed arrays** (no global pointers, so no alias analysis is
//!   needed; local pointers are disallowed entirely in `minisplit`).
//! * All shared accesses are **blocking** in the source; the optimizer
//!   (crate `syncopt-codegen`) introduces split-phase `get`/`put`/`store`.
//! * Explicit synchronization: `barrier`, `post f` / `wait f` on event
//!   variables, and `lock l` / `unlock l` on lock variables.
//!
//! # Example
//!
//! ```
//! use syncopt_frontend::parse_program;
//!
//! let src = r#"
//!     shared int Flag;
//!     shared int Data;
//!     fn main() {
//!         int v;
//!         if (MYPROC == 0) {
//!             Data = 1;
//!             Flag = 1;
//!         } else {
//!             v = Flag;
//!             v = Data;
//!         }
//!     }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok::<(), syncopt_frontend::FrontendError>(())
//! ```

pub mod ast;
pub mod error;
pub mod fingerprint;
pub mod inline;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typeck;

pub use ast::{
    BinOp, Decl, Expr, ExprKind, Function, LValue, Param, Program, Stmt, StmtKind, Type, UnOp,
};
pub use error::{FrontendError, FrontendErrorKind};
pub use fingerprint::Fingerprint;
pub use span::Span;

/// Parses `minisplit` source text into an AST without type checking.
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first lexical or syntactic
/// problem encountered.
pub fn parse_program(src: &str) -> Result<Program, FrontendError> {
    let tokens = lexer::lex(src)?;
    parser::Parser::new(src, tokens).parse_program()
}

/// Parses and type checks `minisplit` source text.
///
/// This is the entry point most clients want: the returned program is
/// guaranteed well-typed and ready for lowering by `syncopt-ir`.
///
/// # Errors
///
/// Returns a [`FrontendError`] on lexical, syntactic, or type errors.
pub fn check_program(src: &str) -> Result<Program, FrontendError> {
    let program = parse_program(src)?;
    typeck::check(&program)?;
    Ok(program)
}

/// Parses, type checks, and inlines all calls so that only `main` remains.
///
/// # Errors
///
/// Returns a [`FrontendError`] on frontend errors, on recursion, or if the
/// program has no `main` function.
pub fn prepare_program(src: &str) -> Result<Program, FrontendError> {
    let program = check_program(src)?;
    inline::inline_program(&program)
}
