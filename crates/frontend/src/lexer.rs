//! Hand-rolled lexer for `minisplit`.
//!
//! Supports `//` line comments and `/* ... */` block comments (non-nesting),
//! decimal integer and floating-point literals, and the operators listed in
//! [`crate::token::TokenKind`].

use crate::error::FrontendError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token stream terminated by a single `Eof` token.
///
/// # Errors
///
/// Returns a [`FrontendError`] on the first invalid character, malformed
/// numeric literal, or unterminated block comment.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start as u32, start as u32),
                });
                return Ok(out);
            };
            let kind = match b {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b'{' => self.one(TokenKind::LBrace),
                b'}' => self.one(TokenKind::RBrace),
                b'[' => self.one(TokenKind::LBracket),
                b']' => self.one(TokenKind::RBracket),
                b';' => self.one(TokenKind::Semi),
                b',' => self.one(TokenKind::Comma),
                b'+' => self.one(TokenKind::Plus),
                b'-' => self.one(TokenKind::Minus),
                b'*' => self.one(TokenKind::Star),
                b'/' => self.one(TokenKind::Slash),
                b'%' => self.one(TokenKind::Percent),
                b'=' => self.one_or_two(b'=', TokenKind::Assign, TokenKind::EqEq),
                b'<' => self.one_or_two(b'=', TokenKind::Lt, TokenKind::Le),
                b'>' => self.one_or_two(b'=', TokenKind::Gt, TokenKind::Ge),
                b'!' => self.one_or_two(b'=', TokenKind::Not, TokenKind::NotEq),
                b'&' => self.pair(b'&', TokenKind::AndAnd)?,
                b'|' => self.pair(b'|', TokenKind::OrOr)?,
                other => {
                    return Err(FrontendError::lex(
                        Span::new(start as u32, start as u32 + 1),
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            out.push(Token {
                kind,
                span: Span::new(start as u32, self.pos as u32),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    #[allow(dead_code)]
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn one_or_two(&mut self, second: u8, single: TokenKind, double: TokenKind) -> TokenKind {
        self.pos += 1;
        if self.peek() == Some(second) {
            self.pos += 1;
            double
        } else {
            single
        }
    }

    fn pair(&mut self, second: u8, kind: TokenKind) -> Result<TokenKind, FrontendError> {
        let start = self.pos;
        self.pos += 1;
        if self.peek() == Some(second) {
            self.pos += 1;
            Ok(kind)
        } else {
            Err(FrontendError::lex(
                Span::new(start as u32, start as u32 + 1),
                format!(
                    "expected `{}{}`; single `{}` is not an operator",
                    second as char, second as char, second as char
                ),
            ))
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(FrontendError::lex(
                                    Span::new(start as u32, self.pos as u32),
                                    "unterminated block comment",
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn number(&mut self) -> Result<TokenKind, FrontendError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mark = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                is_float = true;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. identifier following).
                self.pos = mark;
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32);
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::FloatLit)
                .map_err(|e| FrontendError::lex(span, format!("invalid float literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|e| FrontendError::lex(span, format!("invalid integer literal: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex should succeed")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 42;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::IntLit(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("== != <= >= < > && || ! = + - * / %"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Not,
                TokenKind::Assign,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats_and_ints() {
        assert_eq!(
            kinds("1 2.5 3e2 4.5e-1 7"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::FloatLit(2.5),
                TokenKind::FloatLit(300.0),
                TokenKind::FloatLit(0.45),
                TokenKind::IntLit(7),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn int_followed_by_ident_e_is_not_exponent() {
        assert_eq!(
            kinds("3 elephants"),
            vec![
                TokenKind::IntLit(3),
                TokenKind::Ident("elephants".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("a // comment\n /* block \n more */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = lex("x /* oops").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn single_ampersand_errors() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn unknown_character_errors() {
        let err = lex("a ? b").unwrap_err();
        assert!(err.message().contains('?'), "{}", err.message());
    }

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(
            kinds("shared int barrier MYPROC"),
            vec![
                TokenKind::Shared,
                TokenKind::Int,
                TokenKind::Barrier,
                TokenKind::MyProc,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(5, 5));
    }

    #[test]
    fn huge_integer_literal_errors() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
