//! Abstract syntax tree for `minisplit`.
//!
//! The AST deliberately mirrors the restrictions the paper places on its
//! source language (§2): the global address space is reachable only through
//! shared scalars and distributed arrays, all shared accesses are blocking,
//! and synchronization is expressed with dedicated constructs (`barrier`,
//! `post`/`wait`, `lock`/`unlock`) so the analysis can recognize it.

use crate::span::Span;
use std::fmt;

/// A scalar value type, or one of the two synchronization-object types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// Boolean (expressions only; no `bool` variables in the source).
    Bool,
    /// Event variable usable with `post` / `wait`.
    Flag,
    /// Mutual-exclusion variable usable with `lock` / `unlock`.
    Lock,
}

impl Type {
    /// Whether this type can be stored in a variable or array element.
    pub fn is_data(self) -> bool {
        matches!(self, Type::Int | Type::Double)
    }

    /// Whether this is a numeric type (participates in arithmetic).
    pub fn is_numeric(self) -> bool {
        matches!(self, Type::Int | Type::Double)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Int => "int",
            Type::Double => "double",
            Type::Bool => "bool",
            Type::Flag => "flag",
            Type::Lock => "lock",
        };
        f.write_str(s)
    }
}

/// A whole translation unit: global declarations plus functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global declarations: shared scalars/arrays, flags, locks.
    pub decls: Vec<Decl>,
    /// Function definitions; execution starts at `main`.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global declaration by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name() == name)
    }
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `shared int X;` — a scalar in the global address space.
    SharedScalar {
        /// Variable name.
        name: String,
        /// Element type (`int` or `double`).
        ty: Type,
        /// Source location.
        span: Span,
    },
    /// `shared double A[1024];` — a distributed array (block layout).
    SharedArray {
        /// Array name.
        name: String,
        /// Element type (`int` or `double`).
        ty: Type,
        /// Number of elements.
        len: u64,
        /// Source location.
        span: Span,
    },
    /// `flag f;` — an event variable for `post` / `wait`.
    Flag {
        /// Flag name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// `flag f[16];` — an array of event variables, indexed dynamically.
    FlagArray {
        /// Flag array name.
        name: String,
        /// Number of flags.
        len: u64,
        /// Source location.
        span: Span,
    },
    /// `lock l;` — a mutual-exclusion variable.
    Lock {
        /// Lock name.
        name: String,
        /// Source location.
        span: Span,
    },
}

impl Decl {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            Decl::SharedScalar { name, .. }
            | Decl::SharedArray { name, .. }
            | Decl::Flag { name, .. }
            | Decl::FlagArray { name, .. }
            | Decl::Lock { name, .. } => name,
        }
    }

    /// The source span of the declaration.
    pub fn span(&self) -> Span {
        match self {
            Decl::SharedScalar { span, .. }
            | Decl::SharedArray { span, .. }
            | Decl::Flag { span, .. }
            | Decl::FlagArray { span, .. }
            | Decl::Lock { span, .. } => *span,
        }
    }
}

/// A function definition. `minisplit` functions are statement-level
/// procedures (no return values); calls are inlined before lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters (passed by value).
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the definition.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (`int` or `double`).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Convenience constructor.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local variable declaration, e.g. `int i;` or `double t = 0.0;` or a
    /// local array `int buf[16];`.
    LocalDecl {
        /// Variable name.
        name: String,
        /// Element type.
        ty: Type,
        /// `Some(len)` for a local array.
        len: Option<u64>,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
    },
    /// Assignment to a variable or array element.
    Assign {
        /// Left-hand side.
        lhs: LValue,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `if (cond) { ... } else { ... }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements executed when true.
        then_branch: Vec<Stmt>,
        /// Statements executed when false (may be empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { ... }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { ... }` — sugar for a while loop.
    For {
        /// Initialization assignment (e.g. `i = 0`).
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step assignment (e.g. `i = i + 1`).
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Global `barrier;`.
    Barrier,
    /// `post f;` or `post f[e];` — signal an event variable.
    Post {
        /// Flag name.
        flag: String,
        /// Optional index for flag arrays.
        index: Option<Expr>,
    },
    /// `wait f;` or `wait f[e];` — block until the event is posted.
    Wait {
        /// Flag name.
        flag: String,
        /// Optional index for flag arrays.
        index: Option<Expr>,
    },
    /// `lock l;` — acquire a lock.
    Lock {
        /// Lock name.
        lock: String,
    },
    /// `unlock l;` — release a lock.
    Unlock {
        /// Lock name.
        lock: String,
    },
    /// `work(e);` — abstract local computation costing `e` cycles in the
    /// simulator. Lets kernels model computation without numerics.
    Work {
        /// Cycle cost expression.
        cost: Expr,
    },
    /// Call to another `minisplit` function (inlined before lowering).
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// Early exit from the current function.
    Return,
    /// A braced block introducing no scope semantics beyond grouping.
    Block(Vec<Stmt>),
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable (shared or local — resolved during checking).
    Var {
        /// Variable name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// An array element (shared distributed array or local array).
    ArrayElem {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl LValue {
    /// The variable or array name being assigned.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var { name, .. } | LValue::ArrayElem { name, .. } => name,
        }
    }

    /// The source span of the lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var { span, .. } | LValue::ArrayElem { span, .. } => *span,
        }
    }
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression computes.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// An integer literal with a dummy span (for synthesized code).
    pub fn int(v: i64) -> Self {
        Expr::new(ExprKind::IntLit(v), Span::dummy())
    }

    /// A variable reference with a dummy span (for synthesized code).
    pub fn var(name: impl Into<String>) -> Self {
        Expr::new(ExprKind::Var(name.into()), Span::dummy())
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// Variable reference (shared scalar, local, or parameter).
    Var(String),
    /// Array element read.
    ArrayElem {
        /// Array name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// The executing processor's id, in `0..PROCS`.
    MyProc,
    /// The number of processors.
    Procs,
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator takes boolean operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_predicates() {
        assert!(Type::Int.is_data());
        assert!(Type::Double.is_numeric());
        assert!(!Type::Flag.is_data());
        assert!(!Type::Bool.is_data());
        assert!(!Type::Lock.is_numeric());
    }

    #[test]
    fn program_lookup() {
        let prog = Program {
            decls: vec![Decl::SharedScalar {
                name: "X".into(),
                ty: Type::Int,
                span: Span::dummy(),
            }],
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                body: vec![],
                span: Span::dummy(),
            }],
        };
        assert!(prog.function("main").is_some());
        assert!(prog.function("other").is_none());
        assert_eq!(prog.decl("X").map(Decl::name), Some("X"));
        assert!(prog.decl("Y").is_none());
    }

    #[test]
    fn operator_display() {
        assert_eq!(BinOp::Le.to_string(), "<=");
        assert_eq!(UnOp::Not.to_string(), "!");
        assert!(BinOp::Le.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn lvalue_accessors() {
        let lv = LValue::ArrayElem {
            name: "A".into(),
            index: Box::new(Expr::int(3)),
            span: Span::new(1, 5),
        };
        assert_eq!(lv.name(), "A");
        assert_eq!(lv.span(), Span::new(1, 5));
    }
}
