//! Recursive-descent parser for `minisplit`.
//!
//! Expression parsing uses precedence climbing. The grammar is LL(2) — the
//! only lookahead beyond one token distinguishes `x = e;` from `f(...);` and
//! array lvalues.

use crate::ast::{
    BinOp, Decl, Expr, ExprKind, Function, LValue, Param, Program, Stmt, StmtKind, Type, UnOp,
};
use crate::error::FrontendError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// A `minisplit` parser over a pre-lexed token stream.
pub struct Parser<'a> {
    #[allow(dead_code)]
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser for `tokens`, which must be terminated by `Eof`
    /// (as produced by [`crate::lexer::lex`]).
    pub fn new(src: &'a str, tokens: Vec<Token>) -> Self {
        debug_assert!(matches!(
            tokens.last().map(|t| &t.kind),
            Some(TokenKind::Eof)
        ));
        Parser {
            src,
            tokens,
            pos: 0,
        }
    }

    /// Parses a whole program (declarations followed by functions, in any
    /// interleaving).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_program(mut self) -> Result<Program, FrontendError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Shared | TokenKind::Flag | TokenKind::Lock => {
                    program.decls.push(self.decl()?);
                }
                TokenKind::Fn => program.functions.push(self.function()?),
                other => {
                    let other = other.describe();
                    return Err(FrontendError::parse(
                        self.peek_span(),
                        format!("expected declaration or function, found {other}"),
                    ));
                }
            }
        }
        Ok(program)
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, FrontendError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(FrontendError::parse(
                self.peek_span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), FrontendError> {
        match self.peek() {
            TokenKind::Ident(_) => {
                let tok = self.bump();
                let TokenKind::Ident(name) = tok.kind else {
                    unreachable!()
                };
                Ok((name, tok.span))
            }
            other => Err(FrontendError::parse(
                self.peek_span(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn expect_int_lit(&mut self) -> Result<(i64, Span), FrontendError> {
        match self.peek() {
            TokenKind::IntLit(_) => {
                let tok = self.bump();
                let TokenKind::IntLit(v) = tok.kind else {
                    unreachable!()
                };
                Ok((v, tok.span))
            }
            other => Err(FrontendError::parse(
                self.peek_span(),
                format!("expected integer literal, found {}", other.describe()),
            )),
        }
    }

    // ---- declarations --------------------------------------------------

    fn decl(&mut self) -> Result<Decl, FrontendError> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Shared => {
                self.bump();
                let ty = self.data_type()?;
                let (name, _) = self.expect_ident()?;
                if self.eat(&TokenKind::LBracket) {
                    let (len, len_span) = self.expect_int_lit()?;
                    if len <= 0 {
                        return Err(FrontendError::parse(
                            len_span,
                            "array length must be positive",
                        ));
                    }
                    self.expect(&TokenKind::RBracket)?;
                    let end = self.expect(&TokenKind::Semi)?.span;
                    Ok(Decl::SharedArray {
                        name,
                        ty,
                        len: len as u64,
                        span: start.merge(end),
                    })
                } else {
                    let end = self.expect(&TokenKind::Semi)?.span;
                    Ok(Decl::SharedScalar {
                        name,
                        ty,
                        span: start.merge(end),
                    })
                }
            }
            TokenKind::Flag => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                if self.eat(&TokenKind::LBracket) {
                    let (len, len_span) = self.expect_int_lit()?;
                    if len <= 0 {
                        return Err(FrontendError::parse(
                            len_span,
                            "flag array length must be positive",
                        ));
                    }
                    self.expect(&TokenKind::RBracket)?;
                    let end = self.expect(&TokenKind::Semi)?.span;
                    Ok(Decl::FlagArray {
                        name,
                        len: len as u64,
                        span: start.merge(end),
                    })
                } else {
                    let end = self.expect(&TokenKind::Semi)?.span;
                    Ok(Decl::Flag {
                        name,
                        span: start.merge(end),
                    })
                }
            }
            TokenKind::Lock => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Decl::Lock {
                    name,
                    span: start.merge(end),
                })
            }
            other => Err(FrontendError::parse(
                start,
                format!("expected declaration, found {}", other.describe()),
            )),
        }
    }

    fn data_type(&mut self) -> Result<Type, FrontendError> {
        match self.peek() {
            TokenKind::Int => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::Double => {
                self.bump();
                Ok(Type::Double)
            }
            other => Err(FrontendError::parse(
                self.peek_span(),
                format!("expected `int` or `double`, found {}", other.describe()),
            )),
        }
    }

    // ---- functions -----------------------------------------------------

    fn function(&mut self) -> Result<Function, FrontendError> {
        let start = self.expect(&TokenKind::Fn)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let pstart = self.peek_span();
                let ty = self.data_type()?;
                let (pname, pend) = self.expect_ident()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pstart.merge(pend),
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let (body, end) = self.block()?;
        Ok(Function {
            name,
            params,
            body,
            span: start.merge(end),
        })
    }

    fn block(&mut self) -> Result<(Vec<Stmt>, Span), FrontendError> {
        let start = self.expect(&TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(FrontendError::parse(start, "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok((stmts, start.merge(end)))
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int | TokenKind::Double => self.local_decl(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Barrier => {
                self.bump();
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Barrier, start.merge(end)))
            }
            TokenKind::Post => self.event_stmt(true),
            TokenKind::Wait => self.event_stmt(false),
            TokenKind::Lock => {
                self.bump();
                let (lock, _) = self.expect_ident()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Lock { lock }, start.merge(end)))
            }
            TokenKind::Unlock => {
                self.bump();
                let (lock, _) = self.expect_ident()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Unlock { lock }, start.merge(end)))
            }
            TokenKind::Work => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cost = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Work { cost }, start.merge(end)))
            }
            TokenKind::Return => {
                self.bump();
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::new(StmtKind::Return, start.merge(end)))
            }
            TokenKind::LBrace => {
                let (stmts, span) = self.block()?;
                Ok(Stmt::new(StmtKind::Block(stmts), span))
            }
            TokenKind::Ident(_) => {
                if self.peek_at(1) == &TokenKind::LParen {
                    self.call_stmt()
                } else {
                    self.assign_stmt()
                }
            }
            other => Err(FrontendError::parse(
                start,
                format!("expected statement, found {}", other.describe()),
            )),
        }
    }

    fn local_decl(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek_span();
        let ty = self.data_type()?;
        let (name, _) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let (len, len_span) = self.expect_int_lit()?;
            if len <= 0 {
                return Err(FrontendError::parse(
                    len_span,
                    "array length must be positive",
                ));
            }
            self.expect(&TokenKind::RBracket)?;
            let end = self.expect(&TokenKind::Semi)?.span;
            return Ok(Stmt::new(
                StmtKind::LocalDecl {
                    name,
                    ty,
                    len: Some(len as u64),
                    init: None,
                },
                start.merge(end),
            ));
        }
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Stmt::new(
            StmtKind::LocalDecl {
                name,
                ty,
                len: None,
                init,
            },
            start.merge(end),
        ))
    }

    fn if_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.expect(&TokenKind::If)?.span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let (then_branch, mut end) = self.block()?;
        let else_branch = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                let nested = self.if_stmt()?;
                end = nested.span;
                vec![nested]
            } else {
                let (stmts, espan) = self.block()?;
                end = espan;
                stmts
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            start.merge(end),
        ))
    }

    fn while_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.expect(&TokenKind::While)?.span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let (body, end) = self.block()?;
        Ok(Stmt::new(StmtKind::While { cond, body }, start.merge(end)))
    }

    fn for_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.expect(&TokenKind::For)?.span;
        self.expect(&TokenKind::LParen)?;
        let init = self.simple_assign()?;
        self.expect(&TokenKind::Semi)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        let step = self.simple_assign()?;
        self.expect(&TokenKind::RParen)?;
        let (body, end) = self.block()?;
        Ok(Stmt::new(
            StmtKind::For {
                init: Box::new(init),
                cond,
                step: Box::new(step),
                body,
            },
            start.merge(end),
        ))
    }

    /// An assignment without the trailing semicolon (for-loop headers).
    fn simple_assign(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek_span();
        let lhs = self.lvalue()?;
        self.expect(&TokenKind::Assign)?;
        let rhs = self.expr()?;
        let span = start.merge(rhs.span);
        Ok(Stmt::new(StmtKind::Assign { lhs, rhs }, span))
    }

    fn assign_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let stmt = self.simple_assign()?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Stmt::new(stmt.kind, stmt.span.merge(end)))
    }

    fn call_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.peek_span();
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Stmt::new(StmtKind::Call { name, args }, start.merge(end)))
    }

    fn event_stmt(&mut self, is_post: bool) -> Result<Stmt, FrontendError> {
        let start = self.bump().span; // `post` or `wait`
        let (flag, _) = self.expect_ident()?;
        let index = if self.eat(&TokenKind::LBracket) {
            let e = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Some(e)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        let kind = if is_post {
            StmtKind::Post { flag, index }
        } else {
            StmtKind::Wait { flag, index }
        };
        Ok(Stmt::new(kind, start.merge(end)))
    }

    fn lvalue(&mut self) -> Result<LValue, FrontendError> {
        let (name, span) = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expr()?;
            let end = self.expect(&TokenKind::RBracket)?.span;
            Ok(LValue::ArrayElem {
                name,
                index: Box::new(index),
                span: span.merge(end),
            })
        } else {
            Ok(LValue::Var { name, span })
        }
    }

    // ---- expressions (precedence climbing) ------------------------------

    /// Parses an expression.
    ///
    /// # Errors
    ///
    /// Returns a syntax error if the token stream does not start with a
    /// valid expression.
    pub fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        // Not `while let`: the loop has a second exit condition (precedence).
        #[allow(clippy::while_let_loop)]
        loop {
            let Some((op, prec)) = binop_of(self.peek()) else {
                break;
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        let start = self.peek_span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.merge(inner.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(inner),
                    },
                    span,
                ))
            }
            TokenKind::Not => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.merge(inner.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(inner),
                    },
                    span,
                ))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontendError> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), start))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(false), start))
            }
            TokenKind::MyProc => {
                self.bump();
                Ok(Expr::new(ExprKind::MyProc, start))
            }
            TokenKind::Procs => {
                self.bump();
                Ok(Expr::new(ExprKind::Procs, start))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                let end = self.expect(&TokenKind::RParen)?.span;
                Ok(Expr::new(inner.kind, start.merge(end)))
            }
            TokenKind::Ident(_) => {
                let (name, span) = self.expect_ident()?;
                if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    let end = self.expect(&TokenKind::RBracket)?.span;
                    Ok(Expr::new(
                        ExprKind::ArrayElem {
                            name,
                            index: Box::new(index),
                        },
                        span.merge(end),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), span))
                }
            }
            other => Err(FrontendError::parse(
                start,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

/// Operator token → (BinOp, precedence). Higher binds tighter.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match kind {
        TokenKind::OrOr => (BinOp::Or, 1),
        TokenKind::AndAnd => (BinOp::And, 2),
        TokenKind::EqEq => (BinOp::Eq, 3),
        TokenKind::NotEq => (BinOp::Ne, 3),
        TokenKind::Lt => (BinOp::Lt, 4),
        TokenKind::Le => (BinOp::Le, 4),
        TokenKind::Gt => (BinOp::Gt, 4),
        TokenKind::Ge => (BinOp::Ge, 4),
        TokenKind::Plus => (BinOp::Add, 5),
        TokenKind::Minus => (BinOp::Sub, 5),
        TokenKind::Star => (BinOp::Mul, 6),
        TokenKind::Slash => (BinOp::Div, 6),
        TokenKind::Percent => (BinOp::Rem, 6),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn parses_declarations() {
        let prog =
            parse_program("shared int X; shared double A[128]; flag f; flag done[8]; lock l;")
                .unwrap();
        assert_eq!(prog.decls.len(), 5);
        assert!(matches!(prog.decls[0], Decl::SharedScalar { .. }));
        assert!(matches!(prog.decls[1], Decl::SharedArray { len: 128, .. }));
        assert!(matches!(prog.decls[2], Decl::Flag { .. }));
        assert!(matches!(prog.decls[3], Decl::FlagArray { len: 8, .. }));
        assert!(matches!(prog.decls[4], Decl::Lock { .. }));
    }

    #[test]
    fn parses_function_with_params() {
        let prog = parse_program("fn f(int a, double b) { work(a); }").unwrap();
        let f = prog.function("f").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, Type::Int);
        assert_eq!(f.params[1].ty, Type::Double);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let prog = parse_program("fn main() { int x; x = 1 + 2 * 3; }").unwrap();
        let body = &prog.function("main").unwrap().body;
        let StmtKind::Assign { rhs, .. } = &body[1].kind else {
            panic!("expected assign");
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs: mul,
            ..
        } = &rhs.kind
        else {
            panic!("expected + at top: {rhs:?}");
        };
        assert!(matches!(mul.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parens_override_precedence() {
        let prog = parse_program("fn main() { int x; x = (1 + 2) * 3; }").unwrap();
        let body = &prog.function("main").unwrap().body;
        let StmtKind::Assign { rhs, .. } = &body[1].kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_and_logical_chain() {
        let prog =
            parse_program("fn main() { int x; if (x < 1 && x != 2 || MYPROC == 0) { x = 1; } }");
        assert!(prog.is_ok(), "{prog:?}");
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            shared int X;
            fn main() {
                int i;
                for (i = 0; i < 10; i = i + 1) {
                    while (i > 5) { i = i - 1; }
                    if (i == 2) { X = i; } else if (i == 3) { X = 0; }
                }
            }
        "#;
        let prog = parse_program(src).unwrap();
        let body = &prog.function("main").unwrap().body;
        assert!(matches!(body[1].kind, StmtKind::For { .. }));
    }

    #[test]
    fn parses_sync_statements() {
        let src = r#"
            flag f; flag g[4]; lock l;
            fn main() {
                barrier;
                post f;
                wait g[MYPROC];
                lock l;
                unlock l;
                return;
            }
        "#;
        let prog = parse_program(src).unwrap();
        let body = &prog.function("main").unwrap().body;
        assert!(matches!(body[0].kind, StmtKind::Barrier));
        assert!(matches!(body[1].kind, StmtKind::Post { .. }));
        assert!(matches!(
            body[2].kind,
            StmtKind::Wait { index: Some(_), .. }
        ));
        assert!(matches!(body[3].kind, StmtKind::Lock { .. }));
        assert!(matches!(body[4].kind, StmtKind::Unlock { .. }));
        assert!(matches!(body[5].kind, StmtKind::Return));
    }

    #[test]
    fn parses_calls_and_blocks() {
        let src = r#"
            fn helper(int n) { work(n); }
            fn main() { { helper(3); } }
        "#;
        let prog = parse_program(src).unwrap();
        let body = &prog.function("main").unwrap().body;
        let StmtKind::Block(inner) = &body[0].kind else {
            panic!()
        };
        assert!(matches!(inner[0].kind, StmtKind::Call { .. }));
    }

    #[test]
    fn rejects_garbage_at_top_level() {
        assert!(parse_program("42").is_err());
        assert!(parse_program("fn main() { 42; }").is_err());
        assert!(parse_program("fn main() { x = ; }").is_err());
        assert!(parse_program("fn main() {").is_err());
    }

    #[test]
    fn rejects_zero_length_array() {
        assert!(parse_program("shared int A[0];").is_err());
    }

    #[test]
    fn unary_operators_nest() {
        let prog = parse_program("fn main() { int x; x = --1; }").unwrap();
        let StmtKind::Assign { rhs, .. } = &prog.function("main").unwrap().body[1].kind else {
            panic!()
        };
        let ExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } = &rhs.kind
        else {
            panic!()
        };
        assert!(matches!(expr.kind, ExprKind::Unary { op: UnOp::Neg, .. }));
    }

    #[test]
    fn array_assignment_and_read() {
        let src = "shared int A[8]; fn main() { A[MYPROC] = A[MYPROC + 1] + 2; }";
        let prog = parse_program(src).unwrap();
        let StmtKind::Assign { lhs, rhs } = &prog.function("main").unwrap().body[0].kind else {
            panic!()
        };
        assert!(matches!(lhs, LValue::ArrayElem { .. }));
        assert!(matches!(rhs.kind, ExprKind::Binary { .. }));
    }
}
