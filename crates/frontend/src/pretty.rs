//! Pretty printer for `minisplit` ASTs.
//!
//! The output is valid `minisplit` source: `parse(pretty(p))` produces an AST
//! equal to `p` up to spans. Used by the round-trip tests and the examples.

use crate::ast::{Decl, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind};
use std::fmt::Write;

/// Renders a whole program as source text.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for decl in &program.decls {
        writeln!(out, "{}", decl_to_string(decl)).unwrap();
    }
    for func in &program.functions {
        out.push_str(&function_to_string(func));
    }
    out
}

/// Renders a single global declaration.
pub fn decl_to_string(decl: &Decl) -> String {
    match decl {
        Decl::SharedScalar { name, ty, .. } => format!("shared {ty} {name};"),
        Decl::SharedArray { name, ty, len, .. } => format!("shared {ty} {name}[{len}];"),
        Decl::Flag { name, .. } => format!("flag {name};"),
        Decl::FlagArray { name, len, .. } => format!("flag {name}[{len}];"),
        Decl::Lock { name, .. } => format!("lock {name};"),
    }
}

/// Renders a function definition.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .map(|p| format!("{} {}", p.ty, p.name))
        .collect();
    writeln!(out, "fn {}({}) {{", func.name, params.join(", ")).unwrap();
    for stmt in &func.body {
        write_stmt(&mut out, stmt, 1);
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Renders a single statement (multi-line, no trailing newline trimming).
pub fn stmt_to_string(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out
}

fn write_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match &stmt.kind {
        StmtKind::LocalDecl {
            name,
            ty,
            len,
            init,
        } => match (len, init) {
            (Some(n), _) => writeln!(out, "{pad}{ty} {name}[{n}];").unwrap(),
            (None, Some(e)) => writeln!(out, "{pad}{ty} {name} = {};", expr_to_string(e)).unwrap(),
            (None, None) => writeln!(out, "{pad}{ty} {name};").unwrap(),
        },
        StmtKind::Assign { lhs, rhs } => {
            writeln!(
                out,
                "{pad}{} = {};",
                lvalue_to_string(lhs),
                expr_to_string(rhs)
            )
            .unwrap();
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            writeln!(out, "{pad}if ({}) {{", expr_to_string(cond)).unwrap();
            for s in then_branch {
                write_stmt(out, s, depth + 1);
            }
            if else_branch.is_empty() {
                writeln!(out, "{pad}}}").unwrap();
            } else {
                writeln!(out, "{pad}}} else {{").unwrap();
                for s in else_branch {
                    write_stmt(out, s, depth + 1);
                }
                writeln!(out, "{pad}}}").unwrap();
            }
        }
        StmtKind::While { cond, body } => {
            writeln!(out, "{pad}while ({}) {{", expr_to_string(cond)).unwrap();
            for s in body {
                write_stmt(out, s, depth + 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            writeln!(
                out,
                "{pad}for ({}; {}; {}) {{",
                inline_assign(init),
                expr_to_string(cond),
                inline_assign(step)
            )
            .unwrap();
            for s in body {
                write_stmt(out, s, depth + 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
        StmtKind::Barrier => writeln!(out, "{pad}barrier;").unwrap(),
        StmtKind::Post { flag, index } => match index {
            Some(e) => writeln!(out, "{pad}post {flag}[{}];", expr_to_string(e)).unwrap(),
            None => writeln!(out, "{pad}post {flag};").unwrap(),
        },
        StmtKind::Wait { flag, index } => match index {
            Some(e) => writeln!(out, "{pad}wait {flag}[{}];", expr_to_string(e)).unwrap(),
            None => writeln!(out, "{pad}wait {flag};").unwrap(),
        },
        StmtKind::Lock { lock } => writeln!(out, "{pad}lock {lock};").unwrap(),
        StmtKind::Unlock { lock } => writeln!(out, "{pad}unlock {lock};").unwrap(),
        StmtKind::Work { cost } => writeln!(out, "{pad}work({});", expr_to_string(cost)).unwrap(),
        StmtKind::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_to_string).collect();
            writeln!(out, "{pad}{name}({});", args.join(", ")).unwrap();
        }
        StmtKind::Return => writeln!(out, "{pad}return;").unwrap(),
        StmtKind::Block(stmts) => {
            writeln!(out, "{pad}{{").unwrap();
            for s in stmts {
                write_stmt(out, s, depth + 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
    }
}

fn inline_assign(stmt: &Stmt) -> String {
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            format!("{} = {}", lvalue_to_string(lhs), expr_to_string(rhs))
        }
        other => panic!("for-loop header must be an assignment, got {other:?}"),
    }
}

/// Renders an lvalue.
pub fn lvalue_to_string(lvalue: &LValue) -> String {
    match lvalue {
        LValue::Var { name, .. } => name.clone(),
        LValue::ArrayElem { name, index, .. } => format!("{name}[{}]", expr_to_string(index)),
    }
}

/// Renders an expression with full parenthesization of nested operations.
pub fn expr_to_string(expr: &Expr) -> String {
    match &expr.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        ExprKind::BoolLit(v) => v.to_string(),
        ExprKind::Var(name) => name.clone(),
        ExprKind::ArrayElem { name, index } => format!("{name}[{}]", expr_to_string(index)),
        ExprKind::MyProc => "MYPROC".to_string(),
        ExprKind::Procs => "PROCS".to_string(),
        ExprKind::Unary { op, expr } => format!("{op}({})", expr_to_string(expr)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", expr_to_string(lhs), expr_to_string(rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// Strips spans by re-parsing: two ASTs are "equal" if they print the same.
    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        assert_eq!(
            printed,
            program_to_string(&p2),
            "pretty-print not a fixpoint"
        );
    }

    #[test]
    fn round_trips_declarations() {
        round_trip("shared int X; shared double A[16]; flag f; flag g[4]; lock l;");
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            r#"
            shared int A[32];
            fn main() {
                int i;
                for (i = 0; i < 32; i = i + 1) {
                    if (i % 2 == 0) { A[i] = -i; } else { A[i] = i * i; }
                }
                while (i > 0) { i = i - 1; }
            }
            "#,
        );
    }

    #[test]
    fn round_trips_sync_and_calls() {
        round_trip(
            r#"
            flag f[8]; lock l;
            fn helper(int n, double x) { work(n); }
            fn main() {
                barrier;
                post f[MYPROC];
                wait f[(MYPROC + 1) % PROCS];
                lock l; unlock l;
                helper(3, 2.5);
                { return; }
            }
            "#,
        );
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        round_trip("fn main() { double d; d = 2.0; d = 0.5; }");
    }

    #[test]
    fn expr_parenthesization_preserves_shape() {
        let p = parse_program("fn main() { int x; x = 1 + 2 * 3 - 4; }").unwrap();
        let printed = program_to_string(&p);
        assert!(printed.contains("((1 + (2 * 3)) - 4)"), "{printed}");
    }
}
