//! Token kinds produced by the `minisplit` lexer.

use crate::span::Span;
use std::fmt;

/// A lexed token: a kind plus the source span it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appeared.
    pub span: Span,
}

/// The set of token kinds in `minisplit`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal, e.g. `42`.
    IntLit(i64),
    /// Floating-point literal, e.g. `3.5`.
    FloatLit(f64),
    /// Identifier, e.g. `foo`.
    Ident(String),

    // Keywords.
    /// `shared`
    Shared,
    /// `int`
    Int,
    /// `double`
    Double,
    /// `bool`
    Bool,
    /// `flag`
    Flag,
    /// `lock`
    Lock,
    /// `unlock`
    Unlock,
    /// `fn`
    Fn,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `barrier`
    Barrier,
    /// `post`
    Post,
    /// `wait`
    Wait,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
    /// `MYPROC`
    MyProc,
    /// `PROCS`
    Procs,
    /// `work` — an abstract local-computation statement with a cost argument,
    /// used by kernels to model computation without numerics.
    Work,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `ident`, if it is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "shared" => TokenKind::Shared,
            "int" => TokenKind::Int,
            "double" => TokenKind::Double,
            "bool" => TokenKind::Bool,
            "flag" => TokenKind::Flag,
            "lock" => TokenKind::Lock,
            "unlock" => TokenKind::Unlock,
            "fn" => TokenKind::Fn,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "barrier" => TokenKind::Barrier,
            "post" => TokenKind::Post,
            "wait" => TokenKind::Wait,
            "return" => TokenKind::Return,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "MYPROC" => TokenKind::MyProc,
            "PROCS" => TokenKind::Procs,
            "work" => TokenKind::Work,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::IntLit(v) => return write!(f, "{v}"),
            TokenKind::FloatLit(v) => return write!(f, "{v}"),
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::Shared => "shared",
            TokenKind::Int => "int",
            TokenKind::Double => "double",
            TokenKind::Bool => "bool",
            TokenKind::Flag => "flag",
            TokenKind::Lock => "lock",
            TokenKind::Unlock => "unlock",
            TokenKind::Fn => "fn",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::For => "for",
            TokenKind::Barrier => "barrier",
            TokenKind::Post => "post",
            TokenKind::Wait => "wait",
            TokenKind::Return => "return",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::MyProc => "MYPROC",
            TokenKind::Procs => "PROCS",
            TokenKind::Work => "work",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Not => "!",
            TokenKind::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip_through_display() {
        for kw in [
            "shared", "int", "double", "bool", "flag", "lock", "unlock", "fn", "if", "else",
            "while", "for", "barrier", "post", "wait", "return", "true", "false", "MYPROC",
            "PROCS", "work",
        ] {
            let tok = TokenKind::keyword(kw).expect("should be a keyword");
            assert_eq!(tok.to_string(), kw);
        }
    }

    #[test]
    fn non_keywords_are_none() {
        assert_eq!(TokenKind::keyword("foo"), None);
        assert_eq!(TokenKind::keyword("Int"), None);
        assert_eq!(TokenKind::keyword("myproc"), None);
    }

    #[test]
    fn describe_quotes_punctuation() {
        assert_eq!(TokenKind::Semi.describe(), "`;`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
    }
}
