//! Byte-offset source spans used by diagnostics throughout the pipeline.

use std::fmt;

/// A half-open byte range `[start, end)` into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start {start} exceeds end {end}");
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is zero-width.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Computes the 1-based (line, column) of the span start within `src`.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let upto = &src[..(self.start as usize).min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.rfind('\n').map_or(upto.len() + 1, |i| upto.len() - i);
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn dummy_is_empty() {
        assert!(Span::dummy().is_empty());
        assert_eq!(Span::dummy().len(), 0);
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 3);
    }
}
