//! Diagnostics quality: errors point at the right place and say the right
//! thing, across the lexer, parser, type checker, and inliner.

use syncopt_frontend::{check_program, parse_program, prepare_program, FrontendError};

fn parse_err(src: &str) -> FrontendError {
    parse_program(src).expect_err("should not parse")
}

fn check_err(src: &str) -> FrontendError {
    check_program(src).expect_err("should not check")
}

#[test]
fn error_positions_are_line_accurate() {
    let src = "shared int X;\nfn main() {\n    X = ;\n}\n";
    let err = parse_err(src);
    let (line, col) = err.span().line_col(src);
    assert_eq!(line, 3, "{}", err.render(src));
    assert!(col >= 9, "{}", err.render(src));
    assert!(err.render(src).starts_with("3:"));
}

#[test]
fn missing_semicolons_are_reported_with_expected_token() {
    let err = parse_err("shared int X\nfn main() { }");
    assert!(err.message().contains("`;`"), "{}", err.message());
}

#[test]
fn reserved_words_cannot_be_identifiers() {
    for kw in ["barrier", "post", "wait", "work", "flag"] {
        let src = format!("fn main() {{ int {kw}; }}");
        assert!(
            parse_program(&src).is_err(),
            "`{kw}` must not parse as a variable name"
        );
    }
}

#[test]
fn mismatched_braces_and_parens() {
    assert!(parse_program("fn main() { if (1 > 0 { } }").is_err());
    assert!(parse_program("fn main() { work(3; }").is_err());
    assert!(parse_program("fn main() { { }").is_err());
    assert!(parse_program("fn main() } {").is_err());
}

#[test]
fn for_header_must_be_assignments() {
    assert!(parse_program("fn main() { int i; for (i < 3; i < 5; i = i + 1) { } }").is_err());
    assert!(parse_program("fn main() { int i; for (i = 0; i = 1; i = i + 1) { } }").is_err());
}

#[test]
fn type_errors_carry_the_offending_expression_span() {
    let src = "fn main() {\n    int i;\n    i = 1.5;\n}\n";
    let err = check_err(src);
    let (line, _) = err.span().line_col(src);
    assert_eq!(line, 3, "{}", err.render(src));
    assert!(err.message().contains("cannot assign double to int"));
}

#[test]
fn sync_misuse_messages_name_the_construct() {
    assert!(check_err("flag f; fn main() { f = 1; }")
        .message()
        .contains("cannot be assigned"));
    assert!(check_err("lock l; fn main() { post l; }")
        .message()
        .contains("not a flag"));
    assert!(check_err("flag f; fn main() { lock f; }")
        .message()
        .contains("not a lock"));
    assert!(check_err("shared int X; fn main() { wait X; }")
        .message()
        .contains("not a flag"));
}

#[test]
fn inliner_reports_the_call_chain_problem() {
    let err = prepare_program("fn a() { b(); } fn b() { c(); } fn c() { a(); } fn main() { a(); }")
        .expect_err("mutual recursion");
    assert!(err.message().contains("recursive"), "{}", err.message());
}

#[test]
fn deep_but_finite_nesting_parses() {
    // 64 nested blocks: the recursive-descent parser should handle it.
    let mut src = String::from("fn main() {");
    for _ in 0..64 {
        src.push('{');
    }
    src.push_str("work(1);");
    for _ in 0..64 {
        src.push('}');
    }
    src.push('}');
    check_program(&src).expect("deep nesting should parse");
}

#[test]
fn long_programs_parse_quickly_enough() {
    // 2000 statements — a smoke check that parsing is linear-ish.
    let mut src = String::from("shared int X;\nfn main() {\n    int a;\n");
    for i in 0..2000 {
        src.push_str(&format!("    a = {i};\n"));
    }
    src.push_str("    X = a;\n}\n");
    let program = check_program(&src).unwrap();
    assert_eq!(program.functions[0].body.len(), 2002);
}

#[test]
fn unicode_in_comments_is_fine_but_not_in_code() {
    check_program("// ∀p: MYPROC < PROCS ✓\nfn main() { }").unwrap();
    assert!(parse_program("fn main() { int π; }").is_err());
}
