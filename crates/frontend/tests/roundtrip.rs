//! NOTE: this property-based suite needs the `proptest` crate, which is
//! not available in offline builds. It is compiled only when the custom
//! `proptest` cfg is set:
//!
//!     1. re-add `proptest = "1"` to this crate's [dev-dependencies]
//!     2. RUSTFLAGS="--cfg proptest" cargo test
//!
#![cfg(proptest)]

//! Property tests: pretty-printing is a parser fixpoint, and well-formed
//! generated programs survive the whole frontend.

use proptest::prelude::*;
use syncopt_frontend::ast::BinOp;
use syncopt_frontend::pretty::program_to_string;
use syncopt_frontend::{check_program, parse_program, prepare_program};

/// Renders a random integer expression over locals `a`, `b` and `MYPROC`.
fn int_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..100i64).prop_map(|v| v.to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("MYPROC".to_string()),
        Just("PROCS".to_string()),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),],
            any::<bool>(),
        )
            .prop_map(|(l, r, op, neg)| {
                let core = format!("({l} {op} {r})");
                if neg {
                    format!("-{core}")
                } else {
                    core
                }
            })
    })
    .boxed()
}

fn bool_expr() -> BoxedStrategy<String> {
    (
        int_expr(1),
        int_expr(1),
        prop_oneof![
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Ge),
            Just(BinOp::Gt),
        ],
        any::<bool>(),
    )
        .prop_map(|(l, r, op, not)| {
            let core = format!("{l} {op} {r}");
            if not {
                format!("!({core})")
            } else {
                core
            }
        })
        .boxed()
}

#[derive(Debug, Clone)]
enum GenStmt {
    AssignA(String),
    AssignB(String),
    WriteX(String),
    WriteArr(String, String),
    ReadArr(String),
    If(String, Vec<GenStmt>, Vec<GenStmt>),
    Work(String),
    Barrier,
    Post,
    Wait,
    LockBlock(Vec<GenStmt>),
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<GenStmt> {
    let leaf = prop_oneof![
        int_expr(2).prop_map(GenStmt::AssignA),
        int_expr(2).prop_map(GenStmt::AssignB),
        int_expr(2).prop_map(GenStmt::WriteX),
        (int_expr(1), int_expr(2)).prop_map(|(i, v)| GenStmt::WriteArr(i, v)),
        int_expr(1).prop_map(GenStmt::ReadArr),
        (1u64..200).prop_map(|c| GenStmt::Work(c.to_string())),
        Just(GenStmt::Barrier),
        Just(GenStmt::Post),
        Just(GenStmt::Wait),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (
                bool_expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2),
            )
                .prop_map(|(c, t, e)| GenStmt::If(c, t, e)),
            prop::collection::vec(inner.clone(), 1..3).prop_map(GenStmt::LockBlock),
        ]
    })
    .boxed()
}

fn render_stmt(s: &GenStmt, out: &mut String, depth: usize) {
    let pad = "    ".repeat(depth);
    match s {
        GenStmt::AssignA(e) => out.push_str(&format!("{pad}a = {e};\n")),
        GenStmt::AssignB(e) => out.push_str(&format!("{pad}b = {e};\n")),
        GenStmt::WriteX(e) => out.push_str(&format!("{pad}X = {e};\n")),
        GenStmt::WriteArr(i, v) => out.push_str(&format!(
            "{pad}Arr[({i}) - ({i}) + ({i} % 32 + 32) % 32] = {v};\n"
        )),
        GenStmt::ReadArr(i) => out.push_str(&format!("{pad}a = Arr[({i} % 32 + 32) % 32];\n")),
        GenStmt::If(c, t, e) => {
            out.push_str(&format!("{pad}if ({c}) {{\n"));
            for s in t {
                render_stmt(s, out, depth + 1);
            }
            if e.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    render_stmt(s, out, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        GenStmt::Work(c) => out.push_str(&format!("{pad}work({c});\n")),
        GenStmt::Barrier => out.push_str(&format!("{pad}barrier;\n")),
        GenStmt::Post => out.push_str(&format!("{pad}post F[MYPROC];\n")),
        GenStmt::Wait => out.push_str(&format!("{pad}wait F[MYPROC];\n")),
        GenStmt::LockBlock(body) => {
            out.push_str(&format!("{pad}lock L;\n"));
            for s in body {
                render_stmt(s, out, depth + 1);
            }
            out.push_str(&format!("{pad}unlock L;\n"));
        }
    }
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut src = String::from(
        "shared int X; shared int Arr[32]; flag F[64]; lock L;\nfn main() {\n    int a;\n    int b;\n",
    );
    for s in stmts {
        render_stmt(s, &mut src, 1);
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_programs_parse_and_check(stmts in prop::collection::vec(stmt_strategy(2), 0..8)) {
        let src = render_program(&stmts);
        let checked = check_program(&src);
        prop_assert!(checked.is_ok(), "frontend rejected:\n{src}\n{:?}", checked.err());
    }

    #[test]
    fn pretty_print_is_a_parser_fixpoint(stmts in prop::collection::vec(stmt_strategy(2), 0..8)) {
        let src = render_program(&stmts);
        let p1 = parse_program(&src).unwrap();
        let printed1 = program_to_string(&p1);
        let p2 = parse_program(&printed1)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed1}"));
        let printed2 = program_to_string(&p2);
        prop_assert_eq!(printed1, printed2, "not a fixpoint for:\n{}", src);
    }

    #[test]
    fn prepared_programs_stay_well_typed(stmts in prop::collection::vec(stmt_strategy(2), 0..6)) {
        let src = render_program(&stmts);
        let prepared = prepare_program(&src).unwrap();
        // Inlining output must itself re-check.
        prop_assert!(syncopt_frontend::typeck::check(&prepared).is_ok());
    }
}
