//! AST → CFG lowering.
//!
//! Works on a prepared program (type checked, all calls inlined — see
//! [`syncopt_frontend::prepare_program`]). Lowering:
//!
//! * flattens structured control flow into basic blocks;
//! * hoists every shared read into a blocking [`Instr::GetShared`] targeting
//!   a fresh compiler temporary, so all expressions become local-pure;
//! * turns every shared write into a blocking [`Instr::PutShared`];
//! * records an [`AccessInfo`] for each shared access and synchronization
//!   operation.

use crate::access::{AccessInfo, AccessKind, AccessTable};
use crate::cfg::{Block, Cfg, Instr, Terminator};
use crate::expr::{Expr, SharedRef};
use crate::ids::{AccessId, BlockId, Position, VarId};
use crate::vars::{VarInfo, VarKind, VarTable};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use syncopt_frontend::ast;
use syncopt_frontend::ast::{Program, StmtKind, Type};
use syncopt_frontend::span::Span;

/// An error produced during lowering.
///
/// These indicate contract violations (e.g. lowering a program that was not
/// prepared) rather than user-facing diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    message: String,
    span: Span,
}

impl LowerError {
    fn new(span: Span, message: impl Into<String>) -> Self {
        LowerError {
            message: message.into(),
            span,
        }
    }

    /// The explanation of what went wrong.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span the error refers to (dummy when the failure has no
    /// single source location, e.g. a missing `main`).
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error at {}: {}", self.span, self.message)
    }
}

impl Error for LowerError {}

/// Lowers the `main` function of a prepared program to a CFG.
///
/// # Errors
///
/// Returns a [`LowerError`] if the program still contains calls (it was not
/// inlined), names an undeclared variable, or has no `main`.
pub fn lower_main(program: &Program) -> Result<Cfg, LowerError> {
    let main = program
        .function("main")
        .ok_or_else(|| LowerError::new(Span::dummy(), "program has no `main` function"))?;

    let mut vars = VarTable::new();
    let mut names: HashMap<String, VarId> = HashMap::new();
    for decl in &program.decls {
        let (kind, ty) = match decl {
            ast::Decl::SharedScalar { ty, .. } => (VarKind::SharedScalar, *ty),
            ast::Decl::SharedArray { ty, len, .. } => (VarKind::SharedArray { len: *len }, *ty),
            ast::Decl::Flag { .. } => (VarKind::Flag, Type::Flag),
            ast::Decl::FlagArray { len, .. } => (VarKind::FlagArray { len: *len }, Type::Flag),
            ast::Decl::Lock { .. } => (VarKind::Lock, Type::Lock),
        };
        let id = vars.push(VarInfo {
            name: decl.name().to_string(),
            kind,
            ty,
        });
        names.insert(decl.name().to_string(), id);
    }

    let mut lowerer = Lowerer {
        cfg: Cfg {
            blocks: vec![
                Block::new(Terminator::Goto(BlockId(1))), // entry (placeholder)
                Block::new(Terminator::Return),           // exit
            ],
            entry: BlockId(0),
            exit: BlockId(1),
            vars,
            accesses: AccessTable::new(),
            num_ctrs: 0,
        },
        names,
        current: BlockId(0),
        temp_counter: 0,
    };

    lowerer.lower_stmts(&main.body)?;
    // Fall off the end of main → exit.
    lowerer.set_term(Terminator::Goto(lowerer.cfg.exit));
    let mut cfg = lowerer.cfg;
    cfg.recompute_access_positions();
    debug_assert_eq!(cfg.validate(), Ok(()));
    Ok(cfg)
}

struct Lowerer {
    cfg: Cfg,
    names: HashMap<String, VarId>,
    current: BlockId,
    temp_counter: u32,
}

impl Lowerer {
    fn fresh_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.cfg.blocks.len());
        // Placeholder terminator; always overwritten or left as a self-loop
        // guard that validate() would reject if we forgot.
        self.cfg.blocks.push(Block::new(Terminator::Goto(id)));
        id
    }

    fn set_term(&mut self, term: Terminator) {
        self.cfg.block_mut(self.current).term = term;
    }

    fn emit(&mut self, instr: Instr) {
        self.cfg.block_mut(self.current).instrs.push(instr);
    }

    fn fresh_temp(&mut self, ty: Type) -> VarId {
        let name = format!("%t{}", self.temp_counter);
        self.temp_counter += 1;
        self.cfg.vars.push(VarInfo {
            name,
            kind: VarKind::Local,
            ty,
        })
    }

    fn add_access(
        &mut self,
        kind: AccessKind,
        var: Option<VarId>,
        index: Option<Expr>,
        span: Span,
    ) -> AccessId {
        // Position is provisional; recomputed after lowering.
        let pos = Position::new(self.current, self.cfg.block(self.current).instrs.len());
        self.cfg.add_access(AccessInfo {
            kind,
            var,
            index,
            pos,
            span,
        })
    }

    fn lookup(&self, name: &str, span: Span) -> Result<VarId, LowerError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| LowerError::new(span, format!("undeclared variable `{name}`")))
    }

    fn var_ty(&self, id: VarId) -> Type {
        self.cfg.vars.info(id).ty
    }

    // ---- statements ------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[ast::Stmt]) -> Result<(), LowerError> {
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &ast::Stmt) -> Result<(), LowerError> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::LocalDecl {
                name,
                ty,
                len,
                init,
            } => {
                let kind = match len {
                    Some(n) => VarKind::LocalArray { len: *n },
                    None => VarKind::Local,
                };
                let id = self.cfg.vars.push(VarInfo {
                    name: name.clone(),
                    kind,
                    ty: *ty,
                });
                self.names.insert(name.clone(), id);
                if let Some(init) = init {
                    let value = self.lower_expr(init)?;
                    self.emit(Instr::AssignLocal { dst: id, value });
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                // Fuse `local = <shared read>` into a single GetShared so
                // the split-phase optimizer is not pinned by a temp copy.
                if let ast::LValue::Var { name, span: lspan } = lhs {
                    let dst = self.names.get(name).copied();
                    let src = self.shared_read_target(rhs).map(|(v, i)| (v, i.cloned()));
                    if let (Some(dst), Some((src_var, idx_ast))) = (dst, src) {
                        if self.cfg.vars.info(dst).kind == VarKind::Local
                            && self.cfg.vars.info(dst).ty == self.cfg.vars.info(src_var).ty
                        {
                            let idx = idx_ast.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                            let access = self.add_access(
                                AccessKind::Read,
                                Some(src_var),
                                idx.clone(),
                                *lspan,
                            );
                            let src = match idx {
                                Some(i) => SharedRef::element(src_var, i),
                                None => SharedRef::scalar(src_var),
                            };
                            self.emit(Instr::GetShared { access, dst, src });
                            return Ok(());
                        }
                    }
                }
                let value = self.lower_expr(rhs)?;
                match lhs {
                    ast::LValue::Var { name, span } => {
                        let var = self.lookup(name, *span)?;
                        match self.cfg.vars.info(var).kind {
                            VarKind::SharedScalar => {
                                let access =
                                    self.add_access(AccessKind::Write, Some(var), None, *span);
                                self.emit(Instr::PutShared {
                                    access,
                                    dst: SharedRef::scalar(var),
                                    src: value,
                                });
                            }
                            VarKind::Local => {
                                self.emit(Instr::AssignLocal { dst: var, value });
                            }
                            other => {
                                return Err(LowerError::new(
                                    *span,
                                    format!("cannot assign to variable of kind {other:?}"),
                                ))
                            }
                        }
                    }
                    ast::LValue::ArrayElem { name, index, span } => {
                        let var = self.lookup(name, *span)?;
                        let idx = self.lower_expr(index)?;
                        match self.cfg.vars.info(var).kind {
                            VarKind::SharedArray { .. } => {
                                let access = self.add_access(
                                    AccessKind::Write,
                                    Some(var),
                                    Some(idx.clone()),
                                    *span,
                                );
                                self.emit(Instr::PutShared {
                                    access,
                                    dst: SharedRef::element(var, idx),
                                    src: value,
                                });
                            }
                            VarKind::LocalArray { .. } => {
                                self.emit(Instr::AssignLocalElem {
                                    array: var,
                                    index: idx,
                                    value,
                                });
                            }
                            other => {
                                return Err(LowerError::new(
                                    *span,
                                    format!("cannot index variable of kind {other:?}"),
                                ))
                            }
                        }
                    }
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.lower_expr(cond)?;
                let then_bb = self.fresh_block();
                let else_bb = self.fresh_block();
                let join_bb = self.fresh_block();
                self.set_term(Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                });
                self.current = then_bb;
                self.lower_stmts(then_branch)?;
                self.set_term(Terminator::Goto(join_bb));
                self.current = else_bb;
                self.lower_stmts(else_branch)?;
                self.set_term(Terminator::Goto(join_bb));
                self.current = join_bb;
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let header = self.fresh_block();
                self.set_term(Terminator::Goto(header));
                self.current = header;
                // Shared reads in the condition are re-issued each iteration
                // because they are emitted into the (re-entered) header.
                let cond = self.lower_expr(cond)?;
                let body_bb = self.fresh_block();
                let exit_bb = self.fresh_block();
                self.set_term(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.current = body_bb;
                self.lower_stmts(body)?;
                self.set_term(Terminator::Goto(header));
                self.current = exit_bb;
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.lower_stmt(init)?;
                let header = self.fresh_block();
                self.set_term(Terminator::Goto(header));
                self.current = header;
                let cond = self.lower_expr(cond)?;
                let body_bb = self.fresh_block();
                let exit_bb = self.fresh_block();
                self.set_term(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.current = body_bb;
                self.lower_stmts(body)?;
                self.lower_stmt(step)?;
                self.set_term(Terminator::Goto(header));
                self.current = exit_bb;
                Ok(())
            }
            StmtKind::Barrier => {
                let access = self.add_access(AccessKind::Barrier, None, None, span);
                self.emit(Instr::Barrier { access });
                Ok(())
            }
            StmtKind::Post { flag, index } => {
                let var = self.lookup(flag, span)?;
                let idx = index.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                let access = self.add_access(AccessKind::Post, Some(var), idx.clone(), span);
                self.emit(Instr::Post {
                    access,
                    flag: var,
                    index: idx,
                });
                Ok(())
            }
            StmtKind::Wait { flag, index } => {
                let var = self.lookup(flag, span)?;
                let idx = index.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                let access = self.add_access(AccessKind::Wait, Some(var), idx.clone(), span);
                self.emit(Instr::Wait {
                    access,
                    flag: var,
                    index: idx,
                });
                Ok(())
            }
            StmtKind::Lock { lock } => {
                let var = self.lookup(lock, span)?;
                let access = self.add_access(AccessKind::LockAcq, Some(var), None, span);
                self.emit(Instr::LockAcq { access, lock: var });
                Ok(())
            }
            StmtKind::Unlock { lock } => {
                let var = self.lookup(lock, span)?;
                let access = self.add_access(AccessKind::LockRel, Some(var), None, span);
                self.emit(Instr::LockRel { access, lock: var });
                Ok(())
            }
            StmtKind::Work { cost } => {
                let cost = self.lower_expr(cost)?;
                self.emit(Instr::Work { cost });
                Ok(())
            }
            StmtKind::Return => {
                let exit = self.cfg.exit;
                self.set_term(Terminator::Goto(exit));
                // Statements after `return` are unreachable; park them in a
                // fresh block that nothing jumps to.
                self.current = self.fresh_block();
                self.set_term(Terminator::Goto(exit));
                Ok(())
            }
            StmtKind::Block(stmts) => self.lower_stmts(stmts),
            StmtKind::Call { name, .. } => Err(LowerError::new(
                span,
                format!("call to `{name}` survived inlining; lower a prepared program"),
            )),
        }
    }

    /// If `rhs` is exactly a read of a shared scalar or shared array
    /// element, returns the variable and the (un-lowered) index.
    fn shared_read_target<'e>(&self, rhs: &'e ast::Expr) -> Option<(VarId, Option<&'e ast::Expr>)> {
        match &rhs.kind {
            ast::ExprKind::Var(n) => {
                let v = self.names.get(n).copied()?;
                matches!(self.cfg.vars.info(v).kind, VarKind::SharedScalar).then_some((v, None))
            }
            ast::ExprKind::ArrayElem { name, index } => {
                let v = self.names.get(name).copied()?;
                matches!(self.cfg.vars.info(v).kind, VarKind::SharedArray { .. })
                    .then_some((v, Some(index.as_ref())))
            }
            _ => None,
        }
    }

    // ---- expressions -------------------------------------------------------

    /// Lowers an AST expression to a local-pure IR expression, emitting
    /// `GetShared` instructions for shared reads.
    fn lower_expr(&mut self, expr: &ast::Expr) -> Result<Expr, LowerError> {
        let span = expr.span;
        match &expr.kind {
            ast::ExprKind::IntLit(v) => Ok(Expr::Int(*v)),
            ast::ExprKind::FloatLit(v) => Ok(Expr::Float(*v)),
            ast::ExprKind::BoolLit(v) => Ok(Expr::Bool(*v)),
            ast::ExprKind::MyProc => Ok(Expr::MyProc),
            ast::ExprKind::Procs => Ok(Expr::Procs),
            ast::ExprKind::Var(name) => {
                let var = self.lookup(name, span)?;
                match self.cfg.vars.info(var).kind {
                    VarKind::Local => Ok(Expr::Local(var)),
                    VarKind::SharedScalar => {
                        let ty = self.var_ty(var);
                        let tmp = self.fresh_temp(ty);
                        let access = self.add_access(AccessKind::Read, Some(var), None, span);
                        self.emit(Instr::GetShared {
                            access,
                            dst: tmp,
                            src: SharedRef::scalar(var),
                        });
                        Ok(Expr::Local(tmp))
                    }
                    other => Err(LowerError::new(
                        span,
                        format!("cannot read variable of kind {other:?} as a scalar"),
                    )),
                }
            }
            ast::ExprKind::ArrayElem { name, index } => {
                let var = self.lookup(name, span)?;
                let idx = self.lower_expr(index)?;
                match self.cfg.vars.info(var).kind {
                    VarKind::LocalArray { .. } => Ok(Expr::LocalElem {
                        array: var,
                        index: Box::new(idx),
                    }),
                    VarKind::SharedArray { .. } => {
                        let ty = self.var_ty(var);
                        let tmp = self.fresh_temp(ty);
                        let access =
                            self.add_access(AccessKind::Read, Some(var), Some(idx.clone()), span);
                        self.emit(Instr::GetShared {
                            access,
                            dst: tmp,
                            src: SharedRef::element(var, idx),
                        });
                        Ok(Expr::Local(tmp))
                    }
                    other => Err(LowerError::new(
                        span,
                        format!("cannot index variable of kind {other:?}"),
                    )),
                }
            }
            ast::ExprKind::Unary { op, expr } => {
                let inner = self.lower_expr(expr)?;
                Ok(Expr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                })
            }
            ast::ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                Ok(Expr::Binary {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;

    fn lower(src: &str) -> Cfg {
        let program = prepare_program(src).expect("frontend should accept");
        lower_main(&program).expect("lowering should succeed")
    }

    fn count_instrs(cfg: &Cfg, pred: impl Fn(&Instr) -> bool) -> usize {
        cfg.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn shared_reads_are_hoisted() {
        let cfg = lower("shared int X; shared int Y; fn main() { int a; a = X + Y * X; }");
        // Three reads (X, Y, X) — no caching at lowering time.
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::GetShared { .. })),
            3
        );
        assert_eq!(cfg.accesses.len(), 3);
        assert!(cfg.accesses.iter().all(|(_, a)| a.kind == AccessKind::Read));
    }

    #[test]
    fn shared_write_becomes_put() {
        let cfg = lower("shared int X; fn main() { X = MYPROC + 1; }");
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::PutShared { .. })),
            1
        );
        assert_eq!(cfg.accesses.len(), 1);
        assert_eq!(
            cfg.accesses.iter().next().unwrap().1.kind,
            AccessKind::Write
        );
    }

    #[test]
    fn local_assignments_do_not_create_accesses() {
        let cfg = lower("fn main() { int a; int b[4]; a = 3; b[a] = a * 2; }");
        assert_eq!(cfg.accesses.len(), 0);
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::AssignLocal { .. })),
            1
        );
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::AssignLocalElem { .. })),
            1
        );
    }

    #[test]
    fn if_produces_diamond() {
        let cfg =
            lower("shared int X; fn main() { if (MYPROC == 0) { X = 1; } else { X = 2; } X = 3; }");
        cfg.validate().unwrap();
        // entry, exit, then, else, join
        assert_eq!(cfg.num_blocks(), 5);
        let branch_blocks: Vec<_> = cfg
            .block_ids()
            .filter(|&b| matches!(cfg.block(b).term, Terminator::Branch { .. }))
            .collect();
        assert_eq!(branch_blocks.len(), 1);
    }

    #[test]
    fn while_loop_reissues_condition_reads() {
        let cfg = lower("shared int N; fn main() { int i; i = 0; while (i < N) { i = i + 1; } }");
        cfg.validate().unwrap();
        // The read of N sits in the loop header, which has ≥2 predecessors.
        let (read_id, info) = cfg.accesses.iter().next().unwrap();
        assert_eq!(info.kind, AccessKind::Read);
        let preds = cfg.predecessors();
        assert!(
            preds[info.pos.block.index()].len() >= 2,
            "header of while should have 2+ preds; access {read_id} at {}",
            info.pos
        );
    }

    #[test]
    fn for_loop_lowers_like_while() {
        let cfg = lower(
            "shared double A[8]; fn main() { int i; for (i = 0; i < 8; i = i + 1) { A[i] = 1.0; } }",
        );
        cfg.validate().unwrap();
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::PutShared { .. })),
            1
        );
    }

    #[test]
    fn sync_statements_create_access_records() {
        let cfg = lower(
            r#"
            flag f; flag g[4]; lock l;
            fn main() {
                barrier;
                post f;
                wait g[MYPROC];
                lock l;
                unlock l;
            }
            "#,
        );
        let kinds: Vec<AccessKind> = cfg.accesses.iter().map(|(_, a)| a.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AccessKind::Barrier,
                AccessKind::Post,
                AccessKind::Wait,
                AccessKind::LockAcq,
                AccessKind::LockRel,
            ]
        );
        // Indexed wait keeps its index expression.
        let wait = cfg
            .accesses
            .iter()
            .find(|(_, a)| a.kind == AccessKind::Wait);
        assert!(wait.unwrap().1.index.is_some());
    }

    #[test]
    fn return_jumps_to_exit() {
        let cfg = lower("shared int X; fn main() { if (MYPROC == 0) { return; } X = 1; }");
        cfg.validate().unwrap();
        // The write to X must still be reachable from entry.
        let rpo = cfg.reverse_postorder();
        let write_block = cfg.accesses.iter().next().unwrap().1.pos.block;
        let reachable_prefix: Vec<_> = rpo
            .iter()
            .take_while(|_| true) // rpo includes unreachable at the end; check membership
            .collect();
        assert!(reachable_prefix.iter().any(|&&b| b == write_block));
    }

    #[test]
    fn access_positions_match_instructions() {
        let cfg = lower(
            "shared int X; shared double A[4]; fn main() { int i; i = X; A[i] = 2.0; X = i; }",
        );
        for (id, _) in cfg.accesses.iter() {
            let instr = cfg.instr_for_access(id);
            assert!(instr.is_some(), "access {id} has stale position");
        }
    }

    #[test]
    fn direct_assignment_fuses_into_get() {
        // `x = D;` produces a GetShared straight into `x`, with no temp.
        let cfg = lower("shared double D; fn main() { double x; x = D; }");
        let get = cfg
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find_map(|i| match i {
                Instr::GetShared { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert_eq!(cfg.vars.info(get).name, "x");
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::AssignLocal { .. })),
            0
        );
    }

    #[test]
    fn widening_assignment_is_not_fused() {
        // `d = I;` (int → double) must keep the conversion copy.
        let cfg = lower("shared int I; fn main() { double d; d = I; }");
        assert_eq!(
            count_instrs(&cfg, |i| matches!(i, Instr::AssignLocal { .. })),
            1
        );
    }

    #[test]
    fn temps_are_typed_like_their_source() {
        let cfg = lower("shared double D; fn main() { double x; x = D + 1.0; }");
        let get = cfg
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find_map(|i| match i {
                Instr::GetShared { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert_eq!(cfg.vars.info(get).ty, Type::Double);
        assert!(cfg.vars.info(get).name.starts_with('%'));
    }

    #[test]
    fn rejects_unprepared_program_with_calls() {
        let program = syncopt_frontend::check_program("fn f() {} fn main() { f(); }").unwrap();
        let err = lower_main(&program).unwrap_err();
        assert!(err.message().contains("inlining"), "{err}");
    }
}
