//! Reaching definitions and def-use chains for local variables.
//!
//! The paper's code generator consumes "the use-def graph for each
//! processor's variable accesses (obtained through standard sequential
//! compiler analysis)" (§6). Shared variables are *not* tracked here — they
//! are governed by the delay set; this analysis covers the processor-local
//! dataflow that constrains instruction motion.

use crate::cfg::{Cfg, Instr, Terminator};
use crate::ids::{Position, VarId};

/// A definition site: the instruction at `pos` defines `var`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Where the definition happens.
    pub pos: Position,
    /// The local variable (or local array, conservatively) defined.
    pub var: VarId,
}

/// Reaching-definition analysis results.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites, in block/instruction order.
    pub defs: Vec<DefSite>,
    /// Bitset (one `Vec<u64>` per block) of definitions live at block entry.
    in_sets: Vec<Vec<u64>>,
    words: usize,
}

/// The local variables an instruction defines (scalar def or conservative
/// array def).
pub fn instr_defs(instr: &Instr) -> Vec<VarId> {
    instr.def().into_iter().chain(instr.array_def()).collect()
}

/// The local variables an instruction uses.
pub fn instr_uses(instr: &Instr) -> Vec<VarId> {
    let mut out = Vec::new();
    instr.for_each_use(&mut |v| {
        if !out.contains(&v) {
            out.push(v);
        }
    });
    out
}

/// The local variables a terminator uses.
pub fn term_uses(term: &Terminator) -> Vec<VarId> {
    match term {
        Terminator::Branch { cond, .. } => cond.vars_used(),
        Terminator::Goto(_) | Terminator::Return => Vec::new(),
    }
}

impl ReachingDefs {
    /// Runs the classic forward may-analysis to a fixpoint.
    pub fn compute(cfg: &Cfg) -> Self {
        // Enumerate definition sites.
        let mut defs = Vec::new();
        for b in cfg.block_ids() {
            for (i, instr) in cfg.block(b).instrs.iter().enumerate() {
                for var in instr_defs(instr) {
                    defs.push(DefSite {
                        pos: Position::new(b, i),
                        var,
                    });
                }
            }
        }
        let nd = defs.len();
        let words = nd.div_ceil(64).max(1);
        let nb = cfg.num_blocks();

        // defs_of_var: which def ids define each var (for KILL).
        let mut defs_of_var: std::collections::HashMap<VarId, Vec<usize>> = Default::default();
        for (i, d) in defs.iter().enumerate() {
            defs_of_var.entry(d.var).or_default().push(i);
        }

        // GEN/KILL per block.
        let mut gen = vec![vec![0u64; words]; nb];
        let mut kill = vec![vec![0u64; words]; nb];
        for (i, d) in defs.iter().enumerate() {
            let b = d.pos.block.index();
            set_bit(&mut gen[b], i);
            for &other in &defs_of_var[&d.var] {
                if other != i {
                    set_bit(&mut kill[b], other);
                }
            }
        }
        // Within a block, later defs of the same var kill earlier ones, but
        // block-level GEN keeps only the last def of each var.
        for b in cfg.block_ids() {
            let mut last: std::collections::HashMap<VarId, usize> = Default::default();
            for (i, d) in defs.iter().enumerate() {
                if d.pos.block == b {
                    last.insert(d.var, i);
                }
            }
            for (i, d) in defs.iter().enumerate() {
                if d.pos.block == b && last[&d.var] != i {
                    clear_bit(&mut gen[b.index()], i);
                }
            }
        }

        let preds = cfg.predecessors();
        let mut in_sets = vec![vec![0u64; words]; nb];
        let mut out_sets = vec![vec![0u64; words]; nb];
        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let bi = b.index();
                let mut inb = vec![0u64; words];
                for &p in &preds[bi] {
                    for w in 0..words {
                        inb[w] |= out_sets[p.index()][w];
                    }
                }
                let mut outb = vec![0u64; words];
                for w in 0..words {
                    outb[w] = gen[bi][w] | (inb[w] & !kill[bi][w]);
                }
                if inb != in_sets[bi] || outb != out_sets[bi] {
                    in_sets[bi] = inb;
                    out_sets[bi] = outb;
                    changed = true;
                }
            }
        }

        ReachingDefs {
            defs,
            in_sets,
            words,
        }
    }

    /// The definition sites of `var` that may reach the *use* at `pos`
    /// (i.e. live just before the instruction at `pos` executes).
    pub fn reaching(&self, cfg: &Cfg, pos: Position, var: VarId) -> Vec<DefSite> {
        let mut live = self.in_sets[pos.block.index()].clone();
        // Simulate the block prefix.
        for (i, instr) in cfg.block(pos.block).instrs.iter().enumerate() {
            if i >= pos.instr {
                break;
            }
            for v in instr_defs(instr) {
                // Kill all defs of v, then gen this one.
                for (d, site) in self.defs.iter().enumerate() {
                    if site.var == v {
                        clear_bit(&mut live, d);
                    }
                }
                if let Some(d) = self
                    .defs
                    .iter()
                    .position(|s| s.pos == Position::new(pos.block, i) && s.var == v)
                {
                    set_bit(&mut live, d);
                }
            }
        }
        self.defs
            .iter()
            .enumerate()
            .filter(|(d, site)| site.var == var && get_bit(&live, *d))
            .map(|(_, site)| *site)
            .collect()
    }

    /// Number of definition sites found.
    pub fn num_defs(&self) -> usize {
        self.defs.len()
    }

    /// Internal bitset width in words (exposed for tests).
    pub fn words(&self) -> usize {
        self.words
    }
}

fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

fn clear_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] &= !(1 << (i % 64));
}

fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] & (1 << (i % 64)) != 0
}

/// Whether two instructions have a local dataflow dependence that forbids
/// swapping their order (`first` currently executes before `second`).
///
/// Checks write-read, read-write, and write-write conflicts on locals.
/// Shared-memory constraints are handled separately by the delay set.
pub fn local_dependence(first: &Instr, second: &Instr) -> bool {
    let d1 = instr_defs(first);
    let u1 = instr_uses(first);
    let d2 = instr_defs(second);
    let u2 = instr_uses(second);
    // RAW: second reads what first writes.
    if d1.iter().any(|v| u2.contains(v)) {
        return true;
    }
    // WAR: second overwrites what first reads.
    if d2.iter().any(|v| u1.contains(v)) {
        return true;
    }
    // WAW.
    if d1.iter().any(|v| d2.contains(v)) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use syncopt_frontend::prepare_program;

    fn analyzed(src: &str) -> (Cfg, ReachingDefs) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let rd = ReachingDefs::compute(&cfg);
        (cfg, rd)
    }

    fn var(cfg: &Cfg, name: &str) -> VarId {
        cfg.vars.by_name(name).unwrap()
    }

    #[test]
    fn straight_line_single_def_reaches_use() {
        let (cfg, rd) = analyzed("shared int X; fn main() { int a; a = 1; X = a; }");
        let a = var(&cfg, "a");
        // The PutShared is the last instruction of the entry block.
        let put_pos = cfg.accesses.iter().next().unwrap().1.pos;
        let reaching = rd.reaching(&cfg, put_pos, a);
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].var, a);
    }

    #[test]
    fn redefinition_kills_earlier_def() {
        let (cfg, rd) = analyzed("shared int X; fn main() { int a; a = 1; a = 2; X = a; }");
        let a = var(&cfg, "a");
        let put_pos = cfg.accesses.iter().next().unwrap().1.pos;
        let reaching = rd.reaching(&cfg, put_pos, a);
        assert_eq!(reaching.len(), 1, "only the second def should reach");
        assert_eq!(reaching[0].pos.instr, 1);
    }

    #[test]
    fn branch_merges_definitions() {
        let (cfg, rd) = analyzed(
            r#"
            shared int X;
            fn main() {
                int a; a = 0;
                if (MYPROC == 0) { a = 1; } else { a = 2; }
                X = a;
            }
            "#,
        );
        let a = var(&cfg, "a");
        let put_pos = cfg.accesses.iter().next().unwrap().1.pos;
        let reaching = rd.reaching(&cfg, put_pos, a);
        assert_eq!(reaching.len(), 2, "both branch defs reach the join");
    }

    #[test]
    fn loop_def_reaches_header_use() {
        let (cfg, rd) = analyzed(
            r#"
            shared int X;
            fn main() {
                int i; i = 0;
                while (i < 4) { i = i + 1; }
                X = i;
            }
            "#,
        );
        let i = var(&cfg, "i");
        let put_pos = cfg.accesses.iter().next().unwrap().1.pos;
        let reaching = rd.reaching(&cfg, put_pos, i);
        assert_eq!(reaching.len(), 2, "initial def and loop def both reach");
    }

    #[test]
    fn local_dependence_detects_raw_war_waw() {
        let a = Instr::AssignLocal {
            dst: VarId(0),
            value: crate::expr::Expr::Int(1),
        };
        let reads0 = Instr::AssignLocal {
            dst: VarId(1),
            value: crate::expr::Expr::Local(VarId(0)),
        };
        let writes0 = Instr::AssignLocal {
            dst: VarId(0),
            value: crate::expr::Expr::Int(2),
        };
        let unrelated = Instr::AssignLocal {
            dst: VarId(2),
            value: crate::expr::Expr::Int(3),
        };
        assert!(local_dependence(&a, &reads0), "RAW");
        assert!(local_dependence(&reads0, &writes0), "WAR");
        assert!(local_dependence(&a, &writes0), "WAW");
        assert!(!local_dependence(&a, &unrelated));
    }

    #[test]
    fn work_and_sync_have_no_local_defs() {
        let (cfg, rd) = analyzed("flag f; fn main() { work(5); barrier; post f; }");
        assert_eq!(rd.num_defs(), 0);
        assert!(rd.words() >= 1);
        assert_eq!(cfg.accesses.len(), 2); // barrier + post (work is not an access)
    }

    #[test]
    fn local_array_defs_are_conservative() {
        let (cfg, rd) = analyzed(
            "shared int X; fn main() { int b[4]; b[0] = 1; b[1] = 2; int a; a = b[0]; X = a; }",
        );
        let b = var(&cfg, "b");
        // Both element writes count as defs of `b`.
        assert_eq!(rd.defs.iter().filter(|d| d.var == b).count(), 2);
    }
}
