//! Constant folding and algebraic simplification of local-pure
//! expressions.
//!
//! The paper remarks that in explicitly parallel programs "the quality of
//! the scalar code is limited by the inability to move code around
//! parallelism primitives" (§1) — once the delay set tells the compiler
//! which motion is legal, ordinary scalar optimization applies. This
//! module provides the ordinary part: folding `1 + 2`, `x * 1`, `0 + x`,
//! `e - e`-style identities inside instructions, conditions, and
//! subscripts. Division and modulo fold only when the divisor is a
//! nonzero constant (folding must not hide a runtime trap).

use crate::cfg::{Cfg, Instr, Terminator};
use crate::expr::Expr;
use syncopt_frontend::ast::{BinOp, UnOp};

/// Recursively folds an expression. Idempotent.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Unary { op, expr } => {
            let inner = fold_expr(expr);
            match (op, &inner) {
                (UnOp::Neg, Expr::Int(v)) => Expr::Int(v.wrapping_neg()),
                (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
                // --x = x
                (
                    UnOp::Neg,
                    Expr::Unary {
                        op: UnOp::Neg,
                        expr,
                    },
                ) => (**expr).clone(),
                (
                    UnOp::Not,
                    Expr::Unary {
                        op: UnOp::Not,
                        expr,
                    },
                ) => (**expr).clone(),
                _ => Expr::Unary {
                    op: *op,
                    expr: Box::new(inner),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = fold_expr(lhs);
            let r = fold_expr(rhs);
            fold_binary(*op, l, r)
        }
        Expr::LocalElem { array, index } => Expr::LocalElem {
            array: *array,
            index: Box::new(fold_expr(index)),
        },
        other => other.clone(),
    }
}

fn fold_binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    use BinOp::*;
    // Pure integer folding.
    if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        match op {
            Add => return Expr::Int(a.wrapping_add(b)),
            Sub => return Expr::Int(a.wrapping_sub(b)),
            Mul => return Expr::Int(a.wrapping_mul(b)),
            Div if b != 0 => return Expr::Int(a.wrapping_div(b)),
            Rem if b != 0 => return Expr::Int(a.rem_euclid(b)),
            Eq => return Expr::Bool(a == b),
            Ne => return Expr::Bool(a != b),
            Lt => return Expr::Bool(a < b),
            Le => return Expr::Bool(a <= b),
            Gt => return Expr::Bool(a > b),
            Ge => return Expr::Bool(a >= b),
            _ => {}
        }
    }
    if let (Expr::Bool(a), Expr::Bool(b)) = (&l, &r) {
        match op {
            And => return Expr::Bool(*a && *b),
            Or => return Expr::Bool(*a || *b),
            Eq => return Expr::Bool(a == b),
            Ne => return Expr::Bool(a != b),
            _ => {}
        }
    }
    // Algebraic identities (trap-free operands only: folding away a
    // division would be wrong, but every identity below keeps or drops a
    // *pure* side).
    match (op, &l, &r) {
        // x + 0, 0 + x, x - 0.
        (Add, x, Expr::Int(0)) | (Add, Expr::Int(0), x) | (Sub, x, Expr::Int(0)) => {
            return x.clone()
        }
        // x * 1, 1 * x.
        (Mul, x, Expr::Int(1)) | (Mul, Expr::Int(1), x) => return x.clone(),
        // x * 0, 0 * x — only when x cannot trap.
        (Mul, x, Expr::Int(0)) | (Mul, Expr::Int(0), x) if !may_trap(x) => return Expr::Int(0),
        // x / 1.
        (Div, x, Expr::Int(1)) => return x.clone(),
        // b && true / b || false.
        (And, x, Expr::Bool(true)) | (And, Expr::Bool(true), x) => return x.clone(),
        (Or, x, Expr::Bool(false)) | (Or, Expr::Bool(false), x) => return x.clone(),
        // b && false / b || true — only when b cannot trap.
        (And, x, Expr::Bool(false)) | (And, Expr::Bool(false), x) if !may_trap(x) => {
            return Expr::Bool(false)
        }
        (Or, x, Expr::Bool(true)) | (Or, Expr::Bool(true), x) if !may_trap(x) => {
            return Expr::Bool(true)
        }
        _ => {}
    }
    Expr::Binary {
        op,
        lhs: Box::new(l),
        rhs: Box::new(r),
    }
}

/// Whether evaluating the expression can fault at runtime.
pub fn may_trap(e: &Expr) -> bool {
    match e {
        Expr::Int(_)
        | Expr::Float(_)
        | Expr::Bool(_)
        | Expr::MyProc
        | Expr::Procs
        | Expr::Local(_) => false,
        Expr::LocalElem { .. } => true, // bounds check
        Expr::Unary { expr, .. } => may_trap(expr),
        Expr::Binary { op, lhs, rhs } => {
            let divisorish = matches!(op, BinOp::Div | BinOp::Rem)
                && !matches!(rhs.as_ref(), Expr::Int(v) if *v != 0);
            divisorish || may_trap(lhs) || may_trap(rhs)
        }
    }
}

/// Folds every expression in the CFG in place: assignment values, shared
/// indices, put sources, work costs, and branch conditions. Branches whose
/// condition folds to a constant become unconditional jumps.
pub fn fold_cfg(cfg: &mut Cfg) -> usize {
    fn touch_with(e: &mut Expr, changes: &mut usize) {
        let folded = fold_expr(e);
        if folded != *e {
            *e = folded;
            *changes += 1;
        }
    }
    let mut changes = 0;
    for bi in 0..cfg.blocks.len() {
        let b = crate::ids::BlockId::from_index(bi);
        for instr in &mut cfg.block_mut(b).instrs {
            match instr {
                Instr::AssignLocal { value, .. } => touch_with(value, &mut changes),
                Instr::AssignLocalElem { index, value, .. } => {
                    touch_with(index, &mut changes);
                    touch_with(value, &mut changes);
                }
                Instr::Work { cost } => touch_with(cost, &mut changes),
                Instr::GetShared { src, .. } | Instr::GetInit { src, .. } => {
                    if let Some(i) = &mut src.index {
                        touch_with(i, &mut changes);
                    }
                }
                Instr::PutShared { dst, src, .. }
                | Instr::PutInit { dst, src, .. }
                | Instr::StoreInit { dst, src, .. } => {
                    if let Some(i) = &mut dst.index {
                        touch_with(i, &mut changes);
                    }
                    touch_with(src, &mut changes);
                }
                Instr::Post { index, .. } | Instr::Wait { index, .. } => {
                    if let Some(i) = index {
                        touch_with(i, &mut changes);
                    }
                }
                Instr::SyncCtr { .. }
                | Instr::Barrier { .. }
                | Instr::LockAcq { .. }
                | Instr::LockRel { .. } => {}
            }
        }
        let term = cfg.block(b).term.clone();
        if let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = term
        {
            let folded = fold_expr(&cond);
            match folded {
                Expr::Bool(true) => {
                    cfg.block_mut(b).term = Terminator::Goto(then_bb);
                    changes += 1;
                }
                Expr::Bool(false) => {
                    cfg.block_mut(b).term = Terminator::Goto(else_bb);
                    changes += 1;
                }
                folded => {
                    if folded != cond {
                        changes += 1;
                    }
                    cfg.block_mut(b).term = Terminator::Branch {
                        cond: folded,
                        then_bb,
                        else_bb,
                    };
                }
            }
        }
    }
    // Folding conditions can strand access positions if it changed reachable
    // structure; positions themselves are untouched (no instruction moved).
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    #[test]
    fn folds_integer_arithmetic() {
        assert_eq!(
            fold_expr(&bin(BinOp::Add, Expr::Int(1), Expr::Int(2))),
            Expr::Int(3)
        );
        assert_eq!(
            fold_expr(&bin(BinOp::Mul, Expr::Int(4), Expr::Int(8))),
            Expr::Int(32)
        );
        assert_eq!(
            fold_expr(&bin(BinOp::Rem, Expr::Int(-1), Expr::Int(8))),
            Expr::Int(7)
        );
        assert_eq!(
            fold_expr(&bin(BinOp::Lt, Expr::Int(1), Expr::Int(2))),
            Expr::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let e = bin(BinOp::Div, Expr::Int(1), Expr::Int(0));
        assert_eq!(fold_expr(&e), e, "must keep the trapping division");
        let m = bin(BinOp::Rem, Expr::Int(1), Expr::Int(0));
        assert_eq!(fold_expr(&m), m);
    }

    #[test]
    fn identities() {
        let x = Expr::Local(VarId(3));
        assert_eq!(fold_expr(&bin(BinOp::Add, x.clone(), Expr::Int(0))), x);
        assert_eq!(fold_expr(&bin(BinOp::Mul, Expr::Int(1), x.clone())), x);
        assert_eq!(fold_expr(&bin(BinOp::Sub, x.clone(), Expr::Int(0))), x);
        assert_eq!(fold_expr(&bin(BinOp::Div, x.clone(), Expr::Int(1))), x);
        assert_eq!(
            fold_expr(&bin(BinOp::Mul, x.clone(), Expr::Int(0))),
            Expr::Int(0)
        );
    }

    #[test]
    fn trapping_subterms_block_zeroing() {
        // (a / b) * 0 must not fold: the division may trap.
        let div = bin(BinOp::Div, Expr::Local(VarId(0)), Expr::Local(VarId(1)));
        let e = bin(BinOp::Mul, div.clone(), Expr::Int(0));
        assert_eq!(fold_expr(&e), bin(BinOp::Mul, div, Expr::Int(0)));
    }

    #[test]
    fn nested_folding_and_double_negation() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(Expr::Local(VarId(2))),
            }),
        };
        assert_eq!(fold_expr(&e), Expr::Local(VarId(2)));
        let deep = bin(
            BinOp::Add,
            bin(BinOp::Mul, Expr::Int(2), Expr::Int(3)),
            bin(BinOp::Sub, Expr::Int(10), Expr::Int(4)),
        );
        assert_eq!(fold_expr(&deep), Expr::Int(12));
    }

    #[test]
    fn fold_is_idempotent() {
        let e = bin(
            BinOp::Add,
            bin(BinOp::Mul, Expr::MyProc, Expr::Int(1)),
            bin(BinOp::Add, Expr::Int(2), Expr::Int(3)),
        );
        let once = fold_expr(&e);
        assert_eq!(fold_expr(&once), once);
        assert_eq!(once, bin(BinOp::Add, Expr::MyProc, Expr::Int(5)));
    }

    #[test]
    fn fold_cfg_simplifies_instructions_and_branches() {
        use crate::lower::lower_main;
        use syncopt_frontend::prepare_program;
        let src = r#"
            shared int A[8];
            fn main() {
                int v;
                v = 2 * 3 + 0;
                A[MYPROC * 1] = v + 1 * 0 + 6;
                if (1 < 2) { work(4 + 4); }
            }
        "#;
        let mut cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let changes = fold_cfg(&mut cfg);
        assert!(changes >= 3, "{changes}");
        // The branch became a goto.
        let branches = cfg
            .block_ids()
            .filter(|&b| matches!(cfg.block(b).term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 0);
        // Idempotent.
        assert_eq!(fold_cfg(&mut cfg), 0);
        cfg.validate().unwrap();
    }
}
