//! The access table: every shared-memory operation and synchronization
//! operation in the program, with its kind, target, and position.
//!
//! Access sites are the nodes of the paper's `P ∪ C` graph. Synchronization
//! operations are accesses too — Shasha & Snir treat them as conflicting
//! accesses, and §5 of the paper additionally exploits their semantics.

use crate::expr::Expr;
use crate::ids::{AccessId, Position, VarId};
use syncopt_frontend::span::Span;

/// What an access does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read of a shared scalar or distributed array element.
    Read,
    /// Write of a shared scalar or distributed array element.
    Write,
    /// `post f` — signal an event.
    Post,
    /// `wait f` — block on an event.
    Wait,
    /// `barrier` — global synchronization.
    Barrier,
    /// `lock l` — acquire.
    LockAcq,
    /// `unlock l` — release.
    LockRel,
}

impl AccessKind {
    /// Whether this is a plain data access (read or write).
    pub fn is_data(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Write)
    }

    /// Whether this is a synchronization operation.
    pub fn is_sync(self) -> bool {
        !self.is_data()
    }

    /// Whether the access modifies its target (for conflict detection,
    /// sync operations behave like writes to their sync object).
    pub fn is_write_like(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// Everything known about one access site.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessInfo {
    /// What the access does.
    pub kind: AccessKind,
    /// The accessed variable; `None` for barriers (which name no variable).
    pub var: Option<VarId>,
    /// The index expression for array / flag-array accesses.
    pub index: Option<Expr>,
    /// Where the access sits in the CFG (kept in sync by
    /// [`crate::cfg::Cfg::recompute_access_positions`]).
    pub pos: Position,
    /// Originating source span.
    pub span: Span,
}

/// Append-only table of access sites, indexed by [`AccessId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessTable {
    accesses: Vec<AccessInfo>,
}

impl AccessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        AccessTable::default()
    }

    /// Adds an access, returning its id.
    pub fn push(&mut self, info: AccessInfo) -> AccessId {
        let id = AccessId::from_index(self.accesses.len());
        self.accesses.push(info);
        id
    }

    /// Looks up an access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn info(&self, id: AccessId) -> &AccessInfo {
        &self.accesses[id.index()]
    }

    /// Mutable lookup (used when positions are recomputed).
    pub fn info_mut(&mut self, id: AccessId) -> &mut AccessInfo {
        &mut self.accesses[id.index()]
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AccessId, &AccessInfo)> {
        self.accesses
            .iter()
            .enumerate()
            .map(|(i, a)| (AccessId::from_index(i), a))
    }

    /// All access ids.
    pub fn ids(&self) -> impl Iterator<Item = AccessId> {
        (0..self.accesses.len()).map(AccessId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BlockId;

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(!AccessKind::Read.is_write_like());
        assert!(AccessKind::Write.is_write_like());
        for k in [
            AccessKind::Post,
            AccessKind::Wait,
            AccessKind::Barrier,
            AccessKind::LockAcq,
            AccessKind::LockRel,
        ] {
            assert!(k.is_sync());
            assert!(k.is_write_like());
            assert!(!k.is_data());
        }
    }

    #[test]
    fn push_and_iter() {
        let mut t = AccessTable::new();
        let id = t.push(AccessInfo {
            kind: AccessKind::Write,
            var: Some(VarId(0)),
            index: None,
            pos: Position::new(BlockId(0), 0),
            span: Span::dummy(),
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.info(id).kind, AccessKind::Write);
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![id]);
    }
}
