//! IR expressions.
//!
//! After lowering, expressions are *local-pure*: they mention only constants,
//! local variables, local array elements, and the SPMD built-ins `MYPROC`
//! and `PROCS`. Shared reads are hoisted into `GetShared` instructions.

use crate::ids::VarId;
use std::fmt;
use syncopt_frontend::ast::{BinOp, UnOp};

/// A local-pure expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer constant.
    Int(i64),
    /// Floating constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
    /// Read of a local scalar (or compiler temporary).
    Local(VarId),
    /// Read of a local array element.
    LocalElem {
        /// The local array.
        array: VarId,
        /// Element index.
        index: Box<Expr>,
    },
    /// The executing processor id.
    MyProc,
    /// The processor count.
    Procs,
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Calls `f` on every variable read by this expression.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::MyProc | Expr::Procs => {}
            Expr::Local(v) => f(*v),
            Expr::LocalElem { array, index } => {
                f(*array);
                index.for_each_var(f);
            }
            Expr::Unary { expr, .. } => expr.for_each_var(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.for_each_var(f);
                rhs.for_each_var(f);
            }
        }
    }

    /// Collects the set of variables read, in first-use order without
    /// duplicates.
    pub fn vars_used(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.for_each_var(&mut |v| {
            if !out.contains(&v) {
                out.push(v);
            }
        });
        out
    }

    /// Whether the expression reads `var`.
    pub fn uses_var(&self, var: VarId) -> bool {
        let mut found = false;
        self.for_each_var(&mut |v| found |= v == var);
        found
    }

    /// Whether the expression is a compile-time constant (no variable,
    /// `MYPROC`, or `PROCS` reference).
    pub fn is_const(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) => true,
            Expr::MyProc | Expr::Procs | Expr::Local(_) | Expr::LocalElem { .. } => false,
            Expr::Unary { expr, .. } => expr.is_const(),
            Expr::Binary { lhs, rhs, .. } => lhs.is_const() && rhs.is_const(),
        }
    }

    /// Structural size (node count), used by cost heuristics.
    pub fn size(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::MyProc | Expr::Procs => 1,
            Expr::Local(_) => 1,
            Expr::LocalElem { index, .. } => 1 + index.size(),
            Expr::Unary { expr, .. } => 1 + expr.size(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Float(v) => write!(f, "{v}"),
            Expr::Bool(v) => write!(f, "{v}"),
            Expr::Local(v) => write!(f, "{v}"),
            Expr::LocalElem { array, index } => write!(f, "{array}[{index}]"),
            Expr::MyProc => write!(f, "MYPROC"),
            Expr::Procs => write!(f, "PROCS"),
            Expr::Unary { op, expr } => write!(f, "{op}({expr})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

/// A reference to a shared location: a shared scalar (`index == None`) or a
/// distributed array element.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedRef {
    /// The shared variable.
    pub var: VarId,
    /// Element index for arrays.
    pub index: Option<Expr>,
}

impl SharedRef {
    /// A reference to a shared scalar.
    pub fn scalar(var: VarId) -> Self {
        SharedRef { var, index: None }
    }

    /// A reference to a distributed array element.
    pub fn element(var: VarId, index: Expr) -> Self {
        SharedRef {
            var,
            index: Some(index),
        }
    }
}

impl fmt::Display for SharedRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.index {
            Some(idx) => write!(f, "{}[{idx}]", self.var),
            None => write!(f, "{}", self.var),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn vars_used_deduplicates() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Local(v(1))),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Mul,
                lhs: Box::new(Expr::Local(v(1))),
                rhs: Box::new(Expr::Local(v(2))),
            }),
        };
        assert_eq!(e.vars_used(), vec![v(1), v(2)]);
        assert!(e.uses_var(v(2)));
        assert!(!e.uses_var(v(3)));
    }

    #[test]
    fn local_elem_uses_array_and_index_vars() {
        let e = Expr::LocalElem {
            array: v(5),
            index: Box::new(Expr::Local(v(6))),
        };
        assert_eq!(e.vars_used(), vec![v(5), v(6)]);
    }

    #[test]
    fn const_detection() {
        let c = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1)),
            rhs: Box::new(Expr::Int(2)),
        };
        assert!(c.is_const());
        assert!(!Expr::MyProc.is_const());
        assert!(!Expr::Local(v(0)).is_const());
    }

    #[test]
    fn display_forms() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::MyProc),
            rhs: Box::new(Expr::Int(4)),
        };
        assert_eq!(e.to_string(), "(MYPROC * 4)");
        assert_eq!(SharedRef::scalar(v(2)).to_string(), "v2");
        assert_eq!(SharedRef::element(v(3), Expr::Int(7)).to_string(), "v3[7]");
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Local(v(0))),
            }),
        };
        assert_eq!(e.size(), 4);
    }
}
