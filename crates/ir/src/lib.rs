#![warn(missing_docs)]

//! Control-flow-graph IR for `minisplit` programs.
//!
//! The IR is the substrate for the paper's analyses: a per-program CFG of
//! basic blocks in which **every shared-memory access and synchronization
//! operation is an explicit instruction** with a unique [`ids::AccessId`].
//! Because the programs are SPMD, a single CFG describes every processor;
//! `MYPROC` is an ordinary (runtime) value.
//!
//! Lowering normalizes expressions so that shared reads never appear inside
//! expressions: each becomes a `GetShared` into a compiler temporary. After
//! lowering, branch conditions, array indices, and assignment right-hand
//! sides mention only locals and constants.
//!
//! Provided analyses (consumed by `syncopt-core` and `syncopt-codegen`):
//!
//! * dominators and postdominators ([`dom`]),
//! * local def-use chains via reaching definitions ([`dataflow`]) and
//!   live variables ([`liveness`]),
//! * program-order reachability between accesses ([`order`]),
//! * natural-loop detection ([`loops`]).
//!
//! # Example
//!
//! ```
//! use syncopt_frontend::prepare_program;
//! use syncopt_ir::lower::lower_main;
//!
//! let src = "shared int X; fn main() { X = MYPROC; }";
//! let program = prepare_program(src)?;
//! let cfg = lower_main(&program)?;
//! assert_eq!(cfg.accesses.len(), 1); // the single write to X
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod access;
pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod expr;
pub mod fold;
pub mod ids;
pub mod liveness;
pub mod loops;
pub mod lower;
pub mod order;
pub mod print;
pub mod vars;

pub use access::{AccessInfo, AccessKind, AccessTable};
pub use cfg::{Block, Cfg, Instr, Terminator};
pub use expr::{Expr, SharedRef};
pub use ids::{AccessId, BlockId, VarId};
pub use vars::{VarInfo, VarKind, VarTable};
