//! Natural-loop detection via back edges.
//!
//! Used by the sync-motion heuristics of `syncopt-codegen` (don't propagate
//! a `sync_ctr` into a loop body — it would execute every iteration, §6) and
//! by the barrier-alignment analysis.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use crate::ids::BlockId;

/// A natural loop: header plus the set of blocks in the loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }
}

/// Finds all natural loops of `cfg`. Loops sharing a header are merged.
pub fn find_loops(cfg: &Cfg, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for b in cfg.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        for succ in cfg.successors(b) {
            // Back edge: successor dominates source.
            if dom.dominates(succ, b) {
                let body = loop_body(cfg, succ, b);
                if let Some(existing) = loops.iter_mut().find(|l| l.header == succ) {
                    for blk in body {
                        if !existing.blocks.contains(&blk) {
                            existing.blocks.push(blk);
                        }
                    }
                } else {
                    loops.push(NaturalLoop {
                        header: succ,
                        blocks: body,
                    });
                }
            }
        }
    }
    loops
}

/// The natural loop of back edge `latch → header`: header plus all blocks
/// that reach `latch` without passing through `header`.
fn loop_body(cfg: &Cfg, header: BlockId, latch: BlockId) -> Vec<BlockId> {
    let preds = cfg.predecessors();
    let mut body = vec![header];
    let mut stack = Vec::new();
    if latch != header {
        body.push(latch);
        stack.push(latch);
    }
    while let Some(b) = stack.pop() {
        for &p in &preds[b.index()] {
            if !body.contains(&p) {
                body.push(p);
                stack.push(p);
            }
        }
    }
    body
}

/// A basic induction variable: inside `loops[loop_idx]` it is updated by
/// exactly one statement of the form `var = var ± c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionVar {
    /// Index into the loop vector this variable belongs to.
    pub loop_idx: usize,
    /// The variable.
    pub var: crate::ids::VarId,
    /// Its per-iteration step (nonzero).
    pub step: i64,
}

/// Detects basic induction variables of every loop.
pub fn induction_vars(cfg: &Cfg, loops: &[NaturalLoop]) -> Vec<InductionVar> {
    use crate::cfg::Instr;
    use crate::expr::Expr;
    use syncopt_frontend::ast::BinOp;
    let mut out = Vec::new();
    for (loop_idx, l) in loops.iter().enumerate() {
        // Collect all defs inside the loop per variable.
        let mut defs: std::collections::HashMap<crate::ids::VarId, Vec<&Instr>> =
            std::collections::HashMap::new();
        for &b in &l.blocks {
            for instr in &cfg.block(b).instrs {
                if let Some(d) = instr.def() {
                    defs.entry(d).or_default().push(instr);
                }
                if let Some(d) = instr.array_def() {
                    defs.entry(d).or_default().push(instr);
                }
            }
        }
        for (var, sites) in defs {
            let [Instr::AssignLocal { dst, value }] = sites.as_slice() else {
                continue;
            };
            debug_assert_eq!(*dst, var);
            let step = match value {
                Expr::Binary { op, lhs, rhs } => match (op, lhs.as_ref(), rhs.as_ref()) {
                    (BinOp::Add, Expr::Local(v), Expr::Int(c)) if *v == var => Some(*c),
                    (BinOp::Add, Expr::Int(c), Expr::Local(v)) if *v == var => Some(*c),
                    (BinOp::Sub, Expr::Local(v), Expr::Int(c)) if *v == var => Some(-*c),
                    _ => None,
                },
                _ => None,
            };
            if let Some(step) = step {
                if step != 0 {
                    out.push(InductionVar {
                        loop_idx,
                        var,
                        step,
                    });
                }
            }
        }
    }
    out
}

/// Whether `var` is defined anywhere inside the loop.
pub fn defined_in_loop(cfg: &Cfg, l: &NaturalLoop, var: crate::ids::VarId) -> bool {
    l.blocks.iter().any(|&b| {
        cfg.block(b)
            .instrs
            .iter()
            .any(|i| i.def() == Some(var) || i.array_def() == Some(var))
    })
}

/// Convenience: the set of blocks belonging to *any* loop.
pub fn blocks_in_loops(loops: &[NaturalLoop]) -> Vec<BlockId> {
    let mut out = Vec::new();
    for l in loops {
        for &b in &l.blocks {
            if !out.contains(&b) {
                out.push(b);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use syncopt_frontend::prepare_program;

    fn loops_of(src: &str) -> (Cfg, Vec<NaturalLoop>) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let dom = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &dom);
        (cfg, loops)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, loops) = loops_of("shared int X; fn main() { X = 1; X = 2; }");
        assert!(loops.is_empty());
    }

    #[test]
    fn single_while_loop_found() {
        let (cfg, loops) = loops_of("fn main() { int i; i = 0; while (i < 4) { i = i + 1; } }");
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert!(l.contains(l.header));
        assert!(l.blocks.len() >= 2, "header and body");
        // The exit block is not part of the loop.
        assert!(!l.contains(cfg.exit));
    }

    #[test]
    fn nested_loops_found_separately() {
        let (_, loops) = loops_of(
            r#"
            fn main() {
                int i; int j;
                for (i = 0; i < 4; i = i + 1) {
                    for (j = 0; j < 4; j = j + 1) { work(1); }
                }
            }
            "#,
        );
        assert_eq!(loops.len(), 2);
        // The outer loop contains the inner loop's header.
        let (outer, inner) = if loops[0].blocks.len() > loops[1].blocks.len() {
            (&loops[0], &loops[1])
        } else {
            (&loops[1], &loops[0])
        };
        assert!(outer.contains(inner.header));
        assert!(!inner.contains(outer.header));
    }

    #[test]
    fn induction_variables_detected() {
        let (cfg, loops) = loops_of(
            r#"
            fn main() {
                int i; int j; int acc;
                acc = 0;
                for (i = 0; i < 8; i = i + 2) {
                    j = i * 3;       // derived, not basic induction
                    acc = acc + j;   // also single-def... of add-local form?
                    work(1);
                }
            }
            "#,
        );
        let ivs = induction_vars(&cfg, &loops);
        let i = cfg.vars.by_name("i").unwrap();
        let j = cfg.vars.by_name("j").unwrap();
        let found_i = ivs.iter().find(|iv| iv.var == i);
        assert_eq!(found_i.map(|iv| iv.step), Some(2));
        assert!(!ivs.iter().any(|iv| iv.var == j), "j is not basic");
        // `acc = acc + j` is not a constant step.
        let acc = cfg.vars.by_name("acc").unwrap();
        assert!(!ivs.iter().any(|iv| iv.var == acc));
    }

    #[test]
    fn defined_in_loop_query() {
        let (cfg, loops) = loops_of(
            r#"
            fn main() {
                int i; int outside;
                outside = 5;
                for (i = 0; i < 4; i = i + 1) { work(outside); }
            }
            "#,
        );
        let i = cfg.vars.by_name("i").unwrap();
        let outside = cfg.vars.by_name("outside").unwrap();
        assert!(defined_in_loop(&cfg, &loops[0], i));
        assert!(!defined_in_loop(&cfg, &loops[0], outside));
    }

    #[test]
    fn blocks_in_loops_deduplicates() {
        let (_, loops) = loops_of(
            r#"
            fn main() {
                int i; int j;
                for (i = 0; i < 4; i = i + 1) {
                    for (j = 0; j < 4; j = j + 1) { work(1); }
                }
            }
            "#,
        );
        let all = blocks_in_loops(&loops);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }
}
