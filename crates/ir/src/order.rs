//! Program-order reachability.
//!
//! The compile-time approximation `P` of the paper (§3): `a ≤_P b` iff some
//! control-flow path executes access `a` and then access `b`. With loops
//! both `a ≤_P b` and `b ≤_P a` may hold.

use crate::cfg::Cfg;
use crate::ids::{AccessId, BlockId, Position};

/// A dense boolean matrix, used for reachability closures.
#[derive(Debug, Clone, PartialEq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an `n × n` matrix of `false`.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// The dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets `(row, col)` to true.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    /// Clears `(row, col)` to false.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn clear(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] &= !(1 << (col % 64));
    }

    /// Reads `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] & (1 << (col % 64)) != 0
    }

    /// `row_dst |= row_src`; returns whether `row_dst` changed.
    pub fn or_row(&mut self, row_dst: usize, row_src: usize) -> bool {
        let (dst_off, src_off) = (row_dst * self.words_per_row, row_src * self.words_per_row);
        let mut changed = false;
        for w in 0..self.words_per_row {
            let src = self.bits[src_off + w];
            let dst = &mut self.bits[dst_off + w];
            let new = *dst | src;
            changed |= new != *dst;
            *dst = new;
        }
        changed
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Computes the transitive closure of `edges` over `n` nodes:
/// `result.get(a, b)` iff `b` is reachable from `a` via **one or more**
/// edges.
pub fn reachability(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    let mut m = BitMatrix::new(n);
    // BFS from each node (kernel-sized graphs; O(n·e) is fine).
    let mut stack = Vec::new();
    let mut on = vec![false; n];
    for start in 0..n {
        on.iter_mut().for_each(|b| *b = false);
        stack.clear();
        for &s in &adj[start] {
            if !on[s] {
                on[s] = true;
                stack.push(s);
            }
        }
        while let Some(node) = stack.pop() {
            m.set(start, node);
            for &s in &adj[node] {
                if !on[s] {
                    on[s] = true;
                    stack.push(s);
                }
            }
        }
    }
    m
}

/// Program-order information for a CFG.
#[derive(Debug, Clone)]
pub struct ProgramOrder {
    /// `block_reach.get(a, b)` iff block `b` is reachable from block `a`
    /// via one or more CFG edges.
    block_reach: BitMatrix,
}

impl ProgramOrder {
    /// Computes block reachability for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let mut edges = Vec::new();
        for b in cfg.block_ids() {
            for s in cfg.successors(b) {
                edges.push((b.index(), s.index()));
            }
        }
        ProgramOrder {
            block_reach: reachability(cfg.num_blocks(), &edges),
        }
    }

    /// Whether block `b` is reachable from block `a` via ≥ 1 edge.
    pub fn block_reaches(&self, a: BlockId, b: BlockId) -> bool {
        self.block_reach.get(a.index(), b.index())
    }

    /// Whether some execution runs the instruction at `a` and later the
    /// instruction at `b` (`a <_P b`).
    pub fn pos_precedes(&self, a: Position, b: Position) -> bool {
        (a.block == b.block && a.instr < b.instr) || self.block_reaches(a.block, b.block)
    }

    /// Whether access `x` may execute before access `y` on some path.
    pub fn access_precedes(&self, cfg: &Cfg, x: AccessId, y: AccessId) -> bool {
        self.pos_precedes(cfg.accesses.info(x).pos, cfg.accesses.info(y).pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use syncopt_frontend::prepare_program;

    fn order_of(src: &str) -> (Cfg, ProgramOrder) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let po = ProgramOrder::compute(&cfg);
        (cfg, po)
    }

    #[test]
    fn bitmatrix_set_get() {
        let mut m = BitMatrix::new(70);
        m.set(0, 65);
        m.set(69, 0);
        assert!(m.get(0, 65));
        assert!(m.get(69, 0));
        assert!(!m.get(1, 1));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn bitmatrix_or_row() {
        let mut m = BitMatrix::new(4);
        m.set(1, 2);
        assert!(m.or_row(0, 1));
        assert!(m.get(0, 2));
        assert!(!m.or_row(0, 1), "second or is a no-op");
    }

    #[test]
    fn reachability_is_transitive_and_irreflexive_without_cycles() {
        // 0→1→2, 3 isolated.
        let m = reachability(4, &[(0, 1), (1, 2)]);
        assert!(m.get(0, 1));
        assert!(m.get(0, 2));
        assert!(m.get(1, 2));
        assert!(!m.get(0, 0));
        assert!(!m.get(2, 0));
        assert!(!m.get(3, 3));
    }

    #[test]
    fn reachability_cycle_reaches_itself() {
        let m = reachability(2, &[(0, 1), (1, 0)]);
        assert!(m.get(0, 0));
        assert!(m.get(1, 1));
    }

    #[test]
    fn straight_line_accesses_are_ordered_one_way() {
        let (cfg, po) = order_of("shared int X; shared int Y; fn main() { X = 1; Y = 2; }");
        let ids: Vec<AccessId> = cfg.accesses.ids().collect();
        assert!(po.access_precedes(&cfg, ids[0], ids[1]));
        assert!(!po.access_precedes(&cfg, ids[1], ids[0]));
        assert!(!po.access_precedes(&cfg, ids[0], ids[0]));
    }

    #[test]
    fn loop_accesses_are_mutually_ordered() {
        let (cfg, po) = order_of(
            r#"
            shared int X; shared int Y;
            fn main() {
                int i;
                for (i = 0; i < 4; i = i + 1) { X = i; Y = i; }
            }
            "#,
        );
        let writes: Vec<AccessId> = cfg
            .accesses
            .iter()
            .filter(|(_, a)| a.kind == crate::access::AccessKind::Write)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(writes.len(), 2);
        assert!(po.access_precedes(&cfg, writes[0], writes[1]));
        assert!(
            po.access_precedes(&cfg, writes[1], writes[0]),
            "across iterations Y-write precedes X-write"
        );
        // Loop body access precedes itself (next iteration).
        assert!(po.access_precedes(&cfg, writes[0], writes[0]));
    }

    #[test]
    fn branch_arms_are_unordered() {
        let (cfg, po) = order_of(
            "shared int X; shared int Y; fn main() { if (MYPROC == 0) { X = 1; } else { Y = 1; } }",
        );
        let ids: Vec<AccessId> = cfg.accesses.ids().collect();
        assert!(!po.access_precedes(&cfg, ids[0], ids[1]));
        assert!(!po.access_precedes(&cfg, ids[1], ids[0]));
    }
}
