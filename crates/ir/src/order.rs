//! Program-order reachability.
//!
//! The compile-time approximation `P` of the paper (§3): `a ≤_P b` iff some
//! control-flow path executes access `a` and then access `b`. With loops
//! both `a ≤_P b` and `b ≤_P a` may hold.

use crate::cfg::Cfg;
use crate::ids::{AccessId, BlockId, Position};

/// A dense boolean matrix, used for reachability closures.
#[derive(Debug, Clone, PartialEq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an `n × n` matrix of `false`.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// The dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets `(row, col)` to true.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    /// Clears `(row, col)` to false.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn clear(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] &= !(1 << (col % 64));
    }

    /// Reads `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] & (1 << (col % 64)) != 0
    }

    /// `row_dst |= row_src`; returns whether `row_dst` changed.
    pub fn or_row(&mut self, row_dst: usize, row_src: usize) -> bool {
        let (dst_off, src_off) = (row_dst * self.words_per_row, row_src * self.words_per_row);
        let mut changed = false;
        for w in 0..self.words_per_row {
            let src = self.bits[src_off + w];
            let dst = &mut self.bits[dst_off + w];
            let new = *dst | src;
            changed |= new != *dst;
            *dst = new;
        }
        changed
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The raw words of `row`, for word-parallel set operations.
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(row < self.n);
        &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// `row |= words` for a raw word slice; returns whether `row` changed.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `words` has the wrong length.
    pub fn or_row_words(&mut self, row: usize, words: &[u64]) -> bool {
        assert!(row < self.n);
        assert_eq!(words.len(), self.words_per_row);
        let off = row * self.words_per_row;
        let mut changed = false;
        for (w, &src) in words.iter().enumerate() {
            let dst = &mut self.bits[off + w];
            let new = *dst | src;
            changed |= new != *dst;
            *dst = new;
        }
        changed
    }
}

/// A dense bitset over `0..n`, the word-parallel replacement for the
/// `Vec<AccessId>` + `contains` scans the back-path oracle used to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    n: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        BitSet {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.n);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.n);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Whether `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self |= words` (word-parallel union with a raw row).
    ///
    /// # Panics
    ///
    /// Panics on a word-length mismatch.
    pub fn union_words(&mut self, words: &[u64]) {
        assert_eq!(self.words.len(), words.len());
        for (d, s) in self.words.iter_mut().zip(words) {
            *d |= s;
        }
    }

    /// `self = words & !mask`, word-parallel.
    ///
    /// # Panics
    ///
    /// Panics on a word-length mismatch.
    pub fn assign_and_not(&mut self, words: &[u64], mask: &BitSet) {
        assert_eq!(self.words.len(), words.len());
        assert_eq!(self.words.len(), mask.words.len());
        for (d, (s, m)) in self.words.iter_mut().zip(words.iter().zip(&mask.words)) {
            *d = s & !m;
        }
    }

    /// Whether `self ∩ other` is non-empty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self` and the raw row `words` share an element.
    pub fn intersects_words(&self, words: &[u64]) -> bool {
        self.words.iter().zip(words).any(|(a, b)| a & b != 0)
    }

    /// The raw words, for word-parallel consumers.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the elements in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Work performed by one [`reachability_counted`] closure computation —
/// deterministic counters for the observability report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachStats {
    /// Strongly connected components found by the Tarjan condensation.
    pub sccs: u64,
    /// `u64` words ORed while propagating closure rows.
    pub closure_word_ors: u64,
}

/// Computes the transitive closure of `edges` over `n` nodes:
/// `result.get(a, b)` iff `b` is reachable from `a` via **one or more**
/// edges.
pub fn reachability(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    reachability_counted(&adj).0
}

/// [`reachability`] over a prebuilt adjacency list, additionally reporting
/// work counters.
///
/// The closure is computed by Tarjan SCC condensation: components are
/// emitted in reverse topological order, so each component's closure row
/// is the word-parallel OR of its successor components' (already final)
/// rows plus the successors' member bits — no per-start BFS. All members
/// of one component share a single physical row computation; members of a
/// cyclic component (size > 1, or a self-loop) reach each other and
/// themselves.
pub fn reachability_counted(adj: &[Vec<usize>]) -> (BitMatrix, ReachStats) {
    let n = adj.len();
    let mut m = BitMatrix::new(n);
    let mut stats = ReachStats::default();
    if n == 0 {
        return (m, stats);
    }
    let (comp, members) = tarjan_sccs(adj);
    let num_sccs = members.len();
    stats.sccs = num_sccs as u64;
    let words_per_row = n.div_ceil(64);

    // `full.row(rep_of[c])` = closure row of component `c` *including*
    // `c`'s own members — exactly what a predecessor component ORs in.
    let mut full = BitMatrix::new(n);
    let rep_of: Vec<usize> = members.iter().map(|mems| mems[0]).collect();
    // Dedup marker so each successor component is ORed at most once per
    // component, regardless of how many edges lead to it.
    let mut last_seen = vec![usize::MAX; num_sccs];

    // Tarjan emits components in reverse topological order: every
    // successor component of `c` has an id < `c` and is already final.
    for (c, mems) in members.iter().enumerate() {
        let rep = rep_of[c];
        let mut cyclic = mems.len() > 1;
        for &u in mems {
            for &v in &adj[u] {
                let t = comp[v];
                if t == c {
                    cyclic = true;
                } else if last_seen[t] != c {
                    last_seen[t] = c;
                    m.or_row_words(rep, full.row_words(rep_of[t]));
                    stats.closure_word_ors += words_per_row as u64;
                }
            }
        }
        if cyclic {
            for &u in mems {
                m.set(rep, u);
            }
        }
        // All members share the component row: propagate it.
        for &u in mems.iter().skip(1) {
            m.or_row(u, rep);
            stats.closure_word_ors += words_per_row as u64;
        }
        // full(c) = closure(c) | members(c).
        full.or_row_words(rep, m.row_words(rep));
        for &u in mems {
            full.set(rep, u);
        }
        stats.closure_word_ors += words_per_row as u64;
    }
    (m, stats)
}

/// Iterative Tarjan: returns `(comp, members)` where `comp[v]` is the
/// component id of `v` and `members[c]` lists component `c`'s nodes.
/// Components are numbered in emission order, which is **reverse
/// topological** over the condensation DAG.
fn tarjan_sccs(adj: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    let n = adj.len();
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSEEN; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    // Explicit call stack of (node, next-edge-offset) — the mirror graph
    // of a heavily unrolled program is deep enough to overflow recursion.
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, ei)) = call.last() {
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ei < adj[v].len() {
                call.last_mut().unwrap().1 += 1;
                let w = adj[v][ei];
                if index[w] == UNSEEN {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let c = members.len();
                    let mut mems = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp[w] = c;
                        mems.push(w);
                        if w == v {
                            break;
                        }
                    }
                    // Deterministic member order (smallest node first) so
                    // the representative choice is stable.
                    mems.sort_unstable();
                    members.push(mems);
                }
            }
        }
    }
    (comp, members)
}

/// Program-order information for a CFG.
#[derive(Debug, Clone)]
pub struct ProgramOrder {
    /// `block_reach.get(a, b)` iff block `b` is reachable from block `a`
    /// via one or more CFG edges.
    block_reach: BitMatrix,
}

impl ProgramOrder {
    /// Computes block reachability for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let mut edges = Vec::new();
        for b in cfg.block_ids() {
            for s in cfg.successors(b) {
                edges.push((b.index(), s.index()));
            }
        }
        ProgramOrder {
            block_reach: reachability(cfg.num_blocks(), &edges),
        }
    }

    /// Whether block `b` is reachable from block `a` via ≥ 1 edge.
    pub fn block_reaches(&self, a: BlockId, b: BlockId) -> bool {
        self.block_reach.get(a.index(), b.index())
    }

    /// Whether some execution runs the instruction at `a` and later the
    /// instruction at `b` (`a <_P b`).
    pub fn pos_precedes(&self, a: Position, b: Position) -> bool {
        (a.block == b.block && a.instr < b.instr) || self.block_reaches(a.block, b.block)
    }

    /// Whether access `x` may execute before access `y` on some path.
    pub fn access_precedes(&self, cfg: &Cfg, x: AccessId, y: AccessId) -> bool {
        self.pos_precedes(cfg.accesses.info(x).pos, cfg.accesses.info(y).pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use syncopt_frontend::prepare_program;

    fn order_of(src: &str) -> (Cfg, ProgramOrder) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let po = ProgramOrder::compute(&cfg);
        (cfg, po)
    }

    #[test]
    fn bitmatrix_set_get() {
        let mut m = BitMatrix::new(70);
        m.set(0, 65);
        m.set(69, 0);
        assert!(m.get(0, 65));
        assert!(m.get(69, 0));
        assert!(!m.get(1, 1));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn bitmatrix_or_row() {
        let mut m = BitMatrix::new(4);
        m.set(1, 2);
        assert!(m.or_row(0, 1));
        assert!(m.get(0, 2));
        assert!(!m.or_row(0, 1), "second or is a no-op");
    }

    #[test]
    fn reachability_is_transitive_and_irreflexive_without_cycles() {
        // 0→1→2, 3 isolated.
        let m = reachability(4, &[(0, 1), (1, 2)]);
        assert!(m.get(0, 1));
        assert!(m.get(0, 2));
        assert!(m.get(1, 2));
        assert!(!m.get(0, 0));
        assert!(!m.get(2, 0));
        assert!(!m.get(3, 3));
    }

    #[test]
    fn reachability_cycle_reaches_itself() {
        let m = reachability(2, &[(0, 1), (1, 0)]);
        assert!(m.get(0, 0));
        assert!(m.get(1, 1));
    }

    #[test]
    fn reachability_self_loop_only() {
        let m = reachability(3, &[(1, 1)]);
        assert!(m.get(1, 1));
        assert!(!m.get(0, 0));
        assert!(!m.get(2, 2));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn reachability_condensation_chains_through_sccs() {
        // 0↔1 → 2 → 3↔4, plus 2→2 self-loop.
        let edges = [(0, 1), (1, 0), (1, 2), (2, 2), (2, 3), (3, 4), (4, 3)];
        let m = reachability(5, &edges);
        for a in 0..2 {
            for b in 0..5 {
                assert!(m.get(a, b), "{a}->{b}");
            }
        }
        assert!(m.get(2, 2) && m.get(2, 3) && m.get(2, 4));
        assert!(!m.get(2, 0) && !m.get(2, 1));
        assert!(m.get(3, 3) && m.get(3, 4) && m.get(4, 4) && m.get(4, 3));
        assert!(!m.get(3, 2));
    }

    #[test]
    fn reachability_counted_reports_work() {
        let adj = vec![vec![1], vec![2], vec![]];
        let (m, stats) = reachability_counted(&adj);
        assert!(m.get(0, 2));
        assert_eq!(stats.sccs, 3);
        assert!(stats.closure_word_ors > 0);
    }

    /// Naive per-start BFS closure — the pre-SCC reference.
    fn reachability_naive(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
        }
        let mut m = BitMatrix::new(n);
        let mut stack = Vec::new();
        let mut on = vec![false; n];
        for start in 0..n {
            on.iter_mut().for_each(|b| *b = false);
            stack.clear();
            for &s in &adj[start] {
                if !on[s] {
                    on[s] = true;
                    stack.push(s);
                }
            }
            while let Some(node) = stack.pop() {
                m.set(start, node);
                for &s in &adj[node] {
                    if !on[s] {
                        on[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
        m
    }

    #[test]
    fn scc_closure_matches_naive_bfs_on_random_graphs() {
        // SplitMix64-seeded random digraphs across densities.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for trial in 0..200 {
            let n = 1 + (next() % 70) as usize;
            let density = 1 + next() % 4;
            let nedges = (n as u64 * density) as usize;
            let edges: Vec<(usize, usize)> = (0..nedges)
                .map(|_| ((next() % n as u64) as usize, (next() % n as u64) as usize))
                .collect();
            let fast = reachability(n, &edges);
            let naive = reachability_naive(n, &edges);
            assert_eq!(fast, naive, "trial {trial}: n={n} edges={edges:?}");
        }
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(65);
        s.insert(129);
        assert!(s.contains(65) && !s.contains(64));
        assert!(!s.contains(1000), "out-of-range contains is false");
        assert_eq!(s.count_ones(), 3);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 65, 129]);
        let mut t = BitSet::new(130);
        t.insert(65);
        assert!(s.intersects(&t));
        s.remove(65);
        assert!(!s.intersects(&t));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn bitset_word_ops() {
        let mut m = BitMatrix::new(70);
        m.set(1, 3);
        m.set(1, 68);
        let mut s = BitSet::new(70);
        s.union_words(m.row_words(1));
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![3, 68]);
        assert!(s.intersects_words(m.row_words(1)));
        let mut mask = BitSet::new(70);
        mask.insert(3);
        let mut d = BitSet::new(70);
        d.assign_and_not(m.row_words(1), &mask);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![68]);
        let mut other = BitMatrix::new(70);
        assert!(other.or_row_words(0, m.row_words(1)));
        assert!(!other.or_row_words(0, m.row_words(1)), "idempotent");
        assert!(other.get(0, 68));
    }

    #[test]
    fn straight_line_accesses_are_ordered_one_way() {
        let (cfg, po) = order_of("shared int X; shared int Y; fn main() { X = 1; Y = 2; }");
        let ids: Vec<AccessId> = cfg.accesses.ids().collect();
        assert!(po.access_precedes(&cfg, ids[0], ids[1]));
        assert!(!po.access_precedes(&cfg, ids[1], ids[0]));
        assert!(!po.access_precedes(&cfg, ids[0], ids[0]));
    }

    #[test]
    fn loop_accesses_are_mutually_ordered() {
        let (cfg, po) = order_of(
            r#"
            shared int X; shared int Y;
            fn main() {
                int i;
                for (i = 0; i < 4; i = i + 1) { X = i; Y = i; }
            }
            "#,
        );
        let writes: Vec<AccessId> = cfg
            .accesses
            .iter()
            .filter(|(_, a)| a.kind == crate::access::AccessKind::Write)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(writes.len(), 2);
        assert!(po.access_precedes(&cfg, writes[0], writes[1]));
        assert!(
            po.access_precedes(&cfg, writes[1], writes[0]),
            "across iterations Y-write precedes X-write"
        );
        // Loop body access precedes itself (next iteration).
        assert!(po.access_precedes(&cfg, writes[0], writes[0]));
    }

    #[test]
    fn branch_arms_are_unordered() {
        let (cfg, po) = order_of(
            "shared int X; shared int Y; fn main() { if (MYPROC == 0) { X = 1; } else { Y = 1; } }",
        );
        let ids: Vec<AccessId> = cfg.accesses.ids().collect();
        assert!(!po.access_precedes(&cfg, ids[0], ids[1]));
        assert!(!po.access_precedes(&cfg, ids[1], ids[0]));
    }
}
