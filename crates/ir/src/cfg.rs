//! The control-flow graph: blocks, instructions, terminators.
//!
//! One instruction set serves both pipeline stages:
//!
//! * **Source IR** (produced by [`crate::lower`]) uses only *blocking*
//!   shared operations ([`Instr::GetShared`], [`Instr::PutShared`]) plus
//!   local compute and synchronization.
//! * **Target IR** (produced by `syncopt-codegen`) additionally uses the
//!   split-phase operations `GetInit`/`PutInit`/`StoreInit`/`SyncCtr`,
//!   mirroring Split-C's `get`/`put`/`store`/`sync_ctr` with synchronizing
//!   counters (§6 of the paper).

use crate::access::{AccessInfo, AccessTable};
use crate::expr::{Expr, SharedRef};
use crate::ids::{AccessId, BlockId, Position, VarId};
use crate::vars::VarTable;
use std::fmt;

/// A synchronizing-counter id (Split-C `sync_ctr` counters, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtrId(pub u32);

impl fmt::Display for CtrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctr{}", self.0)
    }
}

/// An IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Blocking read of a shared location into a local.
    GetShared {
        /// Access-site id.
        access: AccessId,
        /// Destination local.
        dst: VarId,
        /// Shared source location.
        src: SharedRef,
    },
    /// Blocking write of a local-pure value to a shared location.
    PutShared {
        /// Access-site id.
        access: AccessId,
        /// Shared destination location.
        dst: SharedRef,
        /// Value written.
        src: Expr,
    },
    /// Split-phase read initiation (`get_ctr` in Split-C).
    GetInit {
        /// Originating access-site id.
        access: AccessId,
        /// Destination local (undefined until the counter syncs).
        dst: VarId,
        /// Shared source location.
        src: SharedRef,
        /// Synchronizing counter.
        ctr: CtrId,
    },
    /// Split-phase write initiation (`put_ctr` in Split-C).
    PutInit {
        /// Originating access-site id.
        access: AccessId,
        /// Shared destination location.
        dst: SharedRef,
        /// Value written (evaluated at initiation).
        src: Expr,
        /// Synchronizing counter (completes on acknowledgement).
        ctr: CtrId,
    },
    /// One-way write (`store` in Split-C): no acknowledgement; completion is
    /// only guaranteed by the next global barrier.
    StoreInit {
        /// Originating access-site id.
        access: AccessId,
        /// Shared destination location.
        dst: SharedRef,
        /// Value written (evaluated at initiation).
        src: Expr,
    },
    /// Block until every split-phase operation issued on `ctr` completes.
    SyncCtr {
        /// The counter to drain.
        ctr: CtrId,
    },
    /// Pure local assignment `dst = value`.
    AssignLocal {
        /// Destination local scalar.
        dst: VarId,
        /// Local-pure value.
        value: Expr,
    },
    /// Local array element assignment `array[index] = value`.
    AssignLocalElem {
        /// Destination local array.
        array: VarId,
        /// Element index.
        index: Expr,
        /// Local-pure value.
        value: Expr,
    },
    /// Abstract local computation costing `cost` cycles.
    Work {
        /// Cycle cost (local-pure, int-valued).
        cost: Expr,
    },
    /// Signal an event variable.
    Post {
        /// Access-site id.
        access: AccessId,
        /// The flag (or flag array).
        flag: VarId,
        /// Index for flag arrays.
        index: Option<Expr>,
    },
    /// Block until an event variable is posted.
    Wait {
        /// Access-site id.
        access: AccessId,
        /// The flag (or flag array).
        flag: VarId,
        /// Index for flag arrays.
        index: Option<Expr>,
    },
    /// Global barrier. Also drains all outstanding one-way stores
    /// machine-wide (the paper's rule for store completion).
    Barrier {
        /// Access-site id.
        access: AccessId,
    },
    /// Acquire a lock.
    LockAcq {
        /// Access-site id.
        access: AccessId,
        /// The lock variable.
        lock: VarId,
    },
    /// Release a lock.
    LockRel {
        /// Access-site id.
        access: AccessId,
        /// The lock variable.
        lock: VarId,
    },
}

impl Instr {
    /// The access-site id carried by this instruction, if any.
    pub fn access_id(&self) -> Option<AccessId> {
        match self {
            Instr::GetShared { access, .. }
            | Instr::PutShared { access, .. }
            | Instr::GetInit { access, .. }
            | Instr::PutInit { access, .. }
            | Instr::StoreInit { access, .. }
            | Instr::Post { access, .. }
            | Instr::Wait { access, .. }
            | Instr::Barrier { access }
            | Instr::LockAcq { access, .. }
            | Instr::LockRel { access, .. } => Some(*access),
            Instr::SyncCtr { .. }
            | Instr::AssignLocal { .. }
            | Instr::AssignLocalElem { .. }
            | Instr::Work { .. } => None,
        }
    }

    /// The local scalar this instruction defines, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Instr::GetShared { dst, .. }
            | Instr::GetInit { dst, .. }
            | Instr::AssignLocal { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Calls `f` on every local variable read by this instruction.
    pub fn for_each_use(&self, f: &mut impl FnMut(VarId)) {
        fn on_ref(r: &SharedRef, f: &mut impl FnMut(VarId)) {
            if let Some(idx) = &r.index {
                idx.for_each_var(f);
            }
        }
        match self {
            Instr::GetShared { src, .. } => on_ref(src, f),
            Instr::GetInit { src, .. } => on_ref(src, f),
            Instr::PutShared { dst, src, .. }
            | Instr::PutInit { dst, src, .. }
            | Instr::StoreInit { dst, src, .. } => {
                on_ref(dst, f);
                src.for_each_var(f);
            }
            Instr::AssignLocal { value, .. } => value.for_each_var(f),
            Instr::AssignLocalElem {
                array,
                index,
                value,
            } => {
                f(*array);
                index.for_each_var(f);
                value.for_each_var(f);
            }
            Instr::Work { cost } => cost.for_each_var(f),
            Instr::Post { index, .. } | Instr::Wait { index, .. } => {
                if let Some(idx) = index {
                    idx.for_each_var(f);
                }
            }
            Instr::SyncCtr { .. }
            | Instr::Barrier { .. }
            | Instr::LockAcq { .. }
            | Instr::LockRel { .. } => {}
        }
    }

    /// The local array this instruction writes, if any (treated as a single
    /// conservative definition).
    pub fn array_def(&self) -> Option<VarId> {
        match self {
            Instr::AssignLocalElem { array, .. } => Some(*array),
            _ => None,
        }
    }
}

/// How a block transfers control.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way conditional branch on a local-pure boolean.
    Branch {
        /// Branch condition.
        cond: Expr,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Program exit (only the exit block carries this).
    Return,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `term`.
    pub fn new(term: Terminator) -> Self {
        Block {
            instrs: Vec::new(),
            term,
        }
    }
}

/// A whole-program control-flow graph (SPMD: one CFG for all processors).
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The unique entry block.
    pub entry: BlockId,
    /// The unique exit block (terminated by `Return`).
    pub exit: BlockId,
    /// Program variables.
    pub vars: VarTable,
    /// Access sites (shared data + synchronization operations).
    pub accesses: AccessTable,
    /// Number of synchronizing counters allocated so far (target IR only).
    pub num_ctrs: u32,
}

impl Cfg {
    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable block lookup.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Successors of `id`.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id).term.successors()
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for id in self.block_ids() {
            for succ in self.successors(id) {
                preds[succ.index()].push(id);
            }
        }
        preds
    }

    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// appended at the end in index order).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS computing postorder.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (block, ref mut next)) = stack.last_mut() {
            let succs = self.successors(block);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(block);
                stack.pop();
            }
        }
        post.reverse();
        for id in self.block_ids() {
            if !visited[id.index()] {
                post.push(id);
            }
        }
        post
    }

    /// Fresh synchronizing counter (target IR).
    pub fn fresh_ctr(&mut self) -> CtrId {
        let id = CtrId(self.num_ctrs);
        self.num_ctrs += 1;
        id
    }

    /// Rewrites every access's recorded [`Position`] by scanning the CFG.
    ///
    /// Must be called after any transformation that moves instructions.
    ///
    /// # Panics
    ///
    /// Panics if some access id appears more than once in the CFG.
    pub fn recompute_access_positions(&mut self) {
        let mut seen = vec![false; self.accesses.len()];
        let mut updates: Vec<(AccessId, Position)> = Vec::new();
        for id in self.block_ids() {
            for (i, instr) in self.block(id).instrs.iter().enumerate() {
                if let Some(acc) = instr.access_id() {
                    assert!(
                        !seen[acc.index()],
                        "access {acc} appears more than once in the CFG"
                    );
                    seen[acc.index()] = true;
                    updates.push((acc, Position::new(id, i)));
                }
            }
        }
        for (acc, pos) in updates {
            self.accesses.info_mut(acc).pos = pos;
        }
    }

    /// The instruction carrying access `id`, if it is still present.
    pub fn instr_for_access(&self, id: AccessId) -> Option<&Instr> {
        let pos = self.accesses.info(id).pos;
        let block = self.blocks.get(pos.block.index())?;
        let instr = block.instrs.get(pos.instr)?;
        (instr.access_id() == Some(id)).then_some(instr)
    }

    /// Structural sanity checks; used by tests and debug assertions.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found: a terminator
    /// target out of range, a non-exit block with `Return`, or an exit block
    /// without `Return`.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry.index() >= self.blocks.len() {
            return Err(format!("entry {} out of range", self.entry));
        }
        if self.exit.index() >= self.blocks.len() {
            return Err(format!("exit {} out of range", self.exit));
        }
        for id in self.block_ids() {
            for succ in self.successors(id) {
                if succ.index() >= self.blocks.len() {
                    return Err(format!("block {id} jumps to out-of-range {succ}"));
                }
            }
            let is_return = matches!(self.block(id).term, Terminator::Return);
            if is_return && id != self.exit {
                return Err(format!("non-exit block {id} has Return terminator"));
            }
        }
        if !matches!(self.block(self.exit).term, Terminator::Return) {
            return Err("exit block does not end in Return".to_string());
        }
        Ok(())
    }

    /// Shortest block path from `from` to `to` in which every block
    /// except the final `to` satisfies `!avoid` (the destination is
    /// exempt so callers can ask "can I *reach* `to` without crossing
    /// a flagged block first?").
    ///
    /// The search is a breadth-first walk expanding successors in
    /// terminator order, so the returned path is deterministic. Both
    /// endpoints are included; `from == to` yields the singleton path.
    /// Returns `None` when every route is blocked.
    pub fn block_path_avoiding(
        &self,
        from: BlockId,
        to: BlockId,
        avoid: &dyn Fn(BlockId) -> bool,
    ) -> Option<Vec<BlockId>> {
        if from == to {
            return Some(vec![from]);
        }
        if avoid(from) {
            return None;
        }
        let mut parent: Vec<Option<BlockId>> = vec![None; self.blocks.len()];
        let mut visited = vec![false; self.blocks.len()];
        visited[from.index()] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(block) = queue.pop_front() {
            for succ in self.successors(block) {
                if visited[succ.index()] {
                    continue;
                }
                visited[succ.index()] = true;
                parent[succ.index()] = Some(block);
                if succ == to {
                    let mut path = vec![to];
                    let mut cur = block;
                    loop {
                        path.push(cur);
                        if cur == from {
                            break;
                        }
                        cur = parent[cur.index()].expect("parent chain reaches `from`");
                    }
                    path.reverse();
                    return Some(path);
                }
                if !avoid(succ) {
                    queue.push_back(succ);
                }
            }
        }
        None
    }

    /// Adds an access record and returns its id (used by lowering).
    pub fn add_access(&mut self, info: AccessInfo) -> AccessId {
        self.accesses.push(info)
    }

    /// Total number of instructions across all blocks.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cfg {
        // bb0 -> bb1, bb2; bb1 -> bb3; bb2 -> bb3; bb3 = exit.
        let blocks = vec![
            Block::new(Terminator::Branch {
                cond: Expr::Bool(true),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            }),
            Block::new(Terminator::Goto(BlockId(3))),
            Block::new(Terminator::Goto(BlockId(3))),
            Block::new(Terminator::Return),
        ];
        Cfg {
            blocks,
            entry: BlockId(0),
            exit: BlockId(3),
            vars: VarTable::new(),
            accesses: AccessTable::new(),
            num_ctrs: 0,
        }
    }

    #[test]
    fn successors_and_predecessors() {
        let cfg = diamond();
        assert_eq!(cfg.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
        let preds = cfg.predecessors();
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn reverse_postorder_starts_at_entry_ends_at_exit() {
        let cfg = diamond();
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(*rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn validate_accepts_diamond() {
        diamond().validate().unwrap();
    }

    #[test]
    fn validate_rejects_misplaced_return() {
        let mut cfg = diamond();
        cfg.block_mut(BlockId(1)).term = Terminator::Return;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut cfg = diamond();
        cfg.block_mut(BlockId(1)).term = Terminator::Goto(BlockId(99));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn block_path_avoiding_picks_unblocked_branch() {
        let cfg = diamond();
        // Both arms open: BFS takes the first (then) arm.
        let none = |_: BlockId| false;
        assert_eq!(
            cfg.block_path_avoiding(BlockId(0), BlockId(3), &none),
            Some(vec![BlockId(0), BlockId(1), BlockId(3)])
        );
        // Blocking bb1 forces the else arm.
        let no_bb1 = |b: BlockId| b == BlockId(1);
        assert_eq!(
            cfg.block_path_avoiding(BlockId(0), BlockId(3), &no_bb1),
            Some(vec![BlockId(0), BlockId(2), BlockId(3)])
        );
        // Blocking both arms leaves no route.
        let no_arms = |b: BlockId| b == BlockId(1) || b == BlockId(2);
        assert_eq!(
            cfg.block_path_avoiding(BlockId(0), BlockId(3), &no_arms),
            None
        );
    }

    #[test]
    fn block_path_avoiding_exempts_endpoints_correctly() {
        let cfg = diamond();
        // The destination is exempt from `avoid`...
        let no_exit = |b: BlockId| b == BlockId(3);
        assert!(cfg
            .block_path_avoiding(BlockId(0), BlockId(3), &no_exit)
            .is_some());
        // ...but the source is not.
        let no_entry = |b: BlockId| b == BlockId(0);
        assert_eq!(
            cfg.block_path_avoiding(BlockId(0), BlockId(3), &no_entry),
            None
        );
        // from == to is the singleton path even when avoided.
        assert_eq!(
            cfg.block_path_avoiding(BlockId(3), BlockId(3), &no_exit),
            Some(vec![BlockId(3)])
        );
        // No route against the edges.
        assert_eq!(
            cfg.block_path_avoiding(BlockId(3), BlockId(0), &|_| false),
            None
        );
    }

    #[test]
    fn fresh_ctrs_are_unique() {
        let mut cfg = diamond();
        let a = cfg.fresh_ctr();
        let b = cfg.fresh_ctr();
        assert_ne!(a, b);
        assert_eq!(cfg.num_ctrs, 2);
    }

    #[test]
    fn instr_accessors() {
        let i = Instr::AssignLocal {
            dst: VarId(4),
            value: Expr::Local(VarId(5)),
        };
        assert_eq!(i.def(), Some(VarId(4)));
        assert_eq!(i.access_id(), None);
        let mut uses = Vec::new();
        i.for_each_use(&mut |v| uses.push(v));
        assert_eq!(uses, vec![VarId(5)]);
    }
}
