//! Dominator and postdominator trees (Cooper–Harvey–Kennedy).
//!
//! The synchronization analysis of §5 consumes dominance at *access*
//! granularity: access `a` dominates access `b` iff every path from entry to
//! `b`'s instruction passes through `a`'s instruction. At block granularity
//! that is block-dominance; within one block it is instruction order.

use crate::cfg::Cfg;
use crate::ids::{BlockId, Position};

/// Block-level dominator information.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator of each block (`None` for the root and for
    /// unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Whether each block is reachable from the root.
    reachable: Vec<bool>,
    root: BlockId,
}

impl Dominators {
    /// Computes dominators with `cfg.entry` as root.
    pub fn compute(cfg: &Cfg) -> Self {
        let succs: Vec<Vec<BlockId>> = cfg.block_ids().map(|b| cfg.successors(b)).collect();
        Self::compute_general(cfg.num_blocks(), cfg.entry, &succs)
    }

    /// Computes **post**dominators with `cfg.exit` as root (edges reversed).
    pub fn compute_post(cfg: &Cfg) -> Self {
        let mut rev: Vec<Vec<BlockId>> = vec![Vec::new(); cfg.num_blocks()];
        for b in cfg.block_ids() {
            for s in cfg.successors(b) {
                rev[s.index()].push(b);
            }
        }
        Self::compute_general(cfg.num_blocks(), cfg.exit, &rev)
    }

    /// Cooper–Harvey–Kennedy over an arbitrary successor relation.
    fn compute_general(n: usize, root: BlockId, succs: &[Vec<BlockId>]) -> Self {
        // Reverse postorder from root over `succs`.
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(root, 0)];
        visited[root.index()] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let ss = &succs[node.index()];
            if *next < ss.len() {
                let s = ss[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }

        // Predecessors restricted to reachable nodes.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in 0..n {
            if !visited[b] {
                continue;
            }
            for &s in &succs[b] {
                preds[s.index()].push(BlockId::from_index(b));
            }
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.index()] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Root's idom is conventionally itself internally; expose None.
        let mut out = idom;
        out[root.index()] = None;
        Dominators {
            idom: out,
            reachable: visited,
            root,
        }
    }

    /// The immediate dominator of `b` (`None` for the root / unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `b` is reachable from the root.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Whether block `a` dominates block `b` (reflexive).
    ///
    /// Returns `false` if either block is unreachable.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.reachable[a.index()] || !self.reachable[b.index()] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.root {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Whether the instruction at `a` dominates the instruction at `b`
    /// (strictly earlier within the same block, or block-dominance).
    ///
    /// Reflexive at the position level: a position dominates itself.
    pub fn pos_dominates(&self, a: Position, b: Position) -> bool {
        if a.block == b.block {
            a.instr <= b.instr
        } else {
            self.dominates(a.block, b.block)
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a.index()] > rpo_num[b.index()] {
            a = idom[a.index()].expect("processed block must have idom");
        }
        while rpo_num[b.index()] > rpo_num[a.index()] {
            b = idom[b.index()].expect("processed block must have idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessTable;
    use crate::cfg::Cfg;
    use crate::cfg::{Block, Terminator};
    use crate::expr::Expr;
    use crate::vars::VarTable;

    fn cfg_from(blocks: Vec<Terminator>, entry: u32, exit: u32) -> Cfg {
        Cfg {
            blocks: blocks.into_iter().map(Block::new).collect(),
            entry: BlockId(entry),
            exit: BlockId(exit),
            vars: VarTable::new(),
            accesses: AccessTable::new(),
            num_ctrs: 0,
        }
    }

    fn branch(t: u32, e: u32) -> Terminator {
        Terminator::Branch {
            cond: Expr::Bool(true),
            then_bb: BlockId(t),
            else_bb: BlockId(e),
        }
    }

    /// Diamond: 0 → {1,2} → 3.
    fn diamond() -> Cfg {
        cfg_from(
            vec![
                branch(1, 2),
                Terminator::Goto(BlockId(3)),
                Terminator::Goto(BlockId(3)),
                Terminator::Return,
            ],
            0,
            3,
        )
    }

    #[test]
    fn diamond_dominators() {
        let cfg = diamond();
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(0)), None);
        assert!(dom.dominates(BlockId(1), BlockId(1)), "reflexive");
    }

    #[test]
    fn diamond_postdominators() {
        let cfg = diamond();
        let pdom = Dominators::compute_post(&cfg);
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
        assert!(!pdom.dominates(BlockId(1), BlockId(0)));
        assert_eq!(pdom.idom(BlockId(0)), Some(BlockId(3)));
    }

    #[test]
    fn loop_dominators() {
        // 0 → 1 (header) → {2 (body), 3 (exit)}; 2 → 1.
        let cfg = cfg_from(
            vec![
                Terminator::Goto(BlockId(1)),
                branch(2, 3),
                Terminator::Goto(BlockId(1)),
                Terminator::Return,
            ],
            0,
            3,
        );
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
    }

    #[test]
    fn unreachable_blocks_dominate_nothing() {
        // Block 2 unreachable.
        let cfg = cfg_from(
            vec![
                Terminator::Goto(BlockId(1)),
                Terminator::Return,
                Terminator::Goto(BlockId(1)),
            ],
            0,
            1,
        );
        let dom = Dominators::compute(&cfg);
        assert!(!dom.is_reachable(BlockId(2)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
        assert!(!dom.dominates(BlockId(0), BlockId(2)));
    }

    #[test]
    fn position_dominance_within_block() {
        let cfg = diamond();
        let dom = Dominators::compute(&cfg);
        let a = Position::new(BlockId(0), 0);
        let b = Position::new(BlockId(0), 3);
        assert!(dom.pos_dominates(a, b));
        assert!(!dom.pos_dominates(b, a));
        assert!(dom.pos_dominates(a, a), "reflexive");
        // Cross-block follows block dominance.
        assert!(dom.pos_dominates(b, Position::new(BlockId(3), 0)));
        assert!(!dom.pos_dominates(Position::new(BlockId(1), 0), Position::new(BlockId(3), 0)));
    }
}
