//! Human-readable CFG dumps (used by examples, tests, and debugging).

use crate::cfg::{Cfg, Instr, Terminator};
use std::fmt::Write;

/// Renders an instruction using source-level variable names.
pub fn instr_to_string(cfg: &Cfg, instr: &Instr) -> String {
    let name = |v: crate::ids::VarId| cfg.vars.info(v).name.clone();
    let sref = |r: &crate::expr::SharedRef| match &r.index {
        Some(idx) => format!("{}[{}]", name(r.var), expr_names(cfg, idx)),
        None => name(r.var),
    };
    match instr {
        Instr::GetShared { access, dst, src } => {
            format!("{} = read {}    ; {access}", name(*dst), sref(src))
        }
        Instr::PutShared { access, dst, src } => {
            format!(
                "write {} = {}    ; {access}",
                sref(dst),
                expr_names(cfg, src)
            )
        }
        Instr::GetInit {
            access,
            dst,
            src,
            ctr,
        } => format!(
            "get_ctr({}, {}, {ctr})    ; {access}",
            name(*dst),
            sref(src)
        ),
        Instr::PutInit {
            access,
            dst,
            src,
            ctr,
        } => format!(
            "put_ctr({}, {}, {ctr})    ; {access}",
            sref(dst),
            expr_names(cfg, src)
        ),
        Instr::StoreInit { access, dst, src } => {
            format!(
                "store({}, {})    ; {access}",
                sref(dst),
                expr_names(cfg, src)
            )
        }
        Instr::SyncCtr { ctr } => format!("sync_ctr({ctr})"),
        Instr::AssignLocal { dst, value } => {
            format!("{} = {}", name(*dst), expr_names(cfg, value))
        }
        Instr::AssignLocalElem {
            array,
            index,
            value,
        } => format!(
            "{}[{}] = {}",
            name(*array),
            expr_names(cfg, index),
            expr_names(cfg, value)
        ),
        Instr::Work { cost } => format!("work({})", expr_names(cfg, cost)),
        Instr::Post {
            access,
            flag,
            index,
        } => match index {
            Some(idx) => format!(
                "post {}[{}]    ; {access}",
                name(*flag),
                expr_names(cfg, idx)
            ),
            None => format!("post {}    ; {access}", name(*flag)),
        },
        Instr::Wait {
            access,
            flag,
            index,
        } => match index {
            Some(idx) => format!(
                "wait {}[{}]    ; {access}",
                name(*flag),
                expr_names(cfg, idx)
            ),
            None => format!("wait {}    ; {access}", name(*flag)),
        },
        Instr::Barrier { access } => format!("barrier    ; {access}"),
        Instr::LockAcq { access, lock } => format!("lock {}    ; {access}", name(*lock)),
        Instr::LockRel { access, lock } => format!("unlock {}    ; {access}", name(*lock)),
    }
}

/// Renders an expression using source-level variable names.
pub fn expr_names(cfg: &Cfg, expr: &crate::expr::Expr) -> String {
    use crate::expr::Expr;
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => v.to_string(),
        Expr::Bool(v) => v.to_string(),
        Expr::Local(v) => cfg.vars.info(*v).name.clone(),
        Expr::LocalElem { array, index } => {
            format!("{}[{}]", cfg.vars.info(*array).name, expr_names(cfg, index))
        }
        Expr::MyProc => "MYPROC".to_string(),
        Expr::Procs => "PROCS".to_string(),
        Expr::Unary { op, expr } => format!("{op}({})", expr_names(cfg, expr)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", expr_names(cfg, lhs), expr_names(cfg, rhs))
        }
    }
}

/// Renders the whole CFG, one block per paragraph.
pub fn cfg_to_string(cfg: &Cfg) -> String {
    let mut out = String::new();
    for b in cfg.block_ids() {
        let tags = [
            (b == cfg.entry).then_some("entry"),
            (b == cfg.exit).then_some("exit"),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        if tags.is_empty() {
            writeln!(out, "{b}:").unwrap();
        } else {
            writeln!(out, "{b}: ({tags})").unwrap();
        }
        for instr in &cfg.block(b).instrs {
            writeln!(out, "    {}", instr_to_string(cfg, instr)).unwrap();
        }
        match &cfg.block(b).term {
            Terminator::Goto(t) => writeln!(out, "    goto {t}").unwrap(),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => writeln!(
                out,
                "    branch {} ? {then_bb} : {else_bb}",
                expr_names(cfg, cond)
            )
            .unwrap(),
            Terminator::Return => writeln!(out, "    return").unwrap(),
        }
        out.push('\n');
    }
    out
}

/// Renders the CFG as a Graphviz `dot` digraph (one record node per block).
pub fn cfg_to_dot(cfg: &Cfg, title: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{title}\" {{").unwrap();
    writeln!(out, "    node [shape=box, fontname=\"monospace\"];").unwrap();
    for b in cfg.block_ids() {
        let mut label = format!("{b}");
        if b == cfg.entry {
            label.push_str(" (entry)");
        }
        if b == cfg.exit {
            label.push_str(" (exit)");
        }
        label.push_str("\\l");
        for instr in &cfg.block(b).instrs {
            let line = instr_to_string(cfg, instr)
                .replace('\\', "\\\\")
                .replace('"', "\\\"");
            label.push_str(&line);
            label.push_str("\\l");
        }
        writeln!(out, "    {b} [label=\"{label}\"];").unwrap();
        match &cfg.block(b).term {
            Terminator::Goto(t) => writeln!(out, "    {b} -> {t};").unwrap(),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = expr_names(cfg, cond).replace('"', "\\\"");
                writeln!(out, "    {b} -> {then_bb} [label=\"{c}\"];").unwrap();
                writeln!(out, "    {b} -> {else_bb} [label=\"!\"];").unwrap();
            }
            Terminator::Return => {}
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use syncopt_frontend::prepare_program;

    #[test]
    fn dot_output_is_well_formed() {
        let cfg = lower_main(
            &prepare_program(
                "shared int X; fn main() { if (MYPROC == 0) { X = 1; } else { X = 2; } }",
            )
            .unwrap(),
        )
        .unwrap();
        let dot = cfg_to_dot(&cfg, "test");
        assert!(dot.starts_with("digraph \"test\" {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'));
        // One node per block and at least the branch edges.
        for b in cfg.block_ids() {
            assert!(dot.contains(&format!("{b} [label=")), "{dot}");
        }
        assert!(dot.contains("->"));
        assert!(dot.contains("(entry)"));
        assert!(dot.contains("(exit)"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn dump_contains_source_names_and_access_ids() {
        let cfg = lower_main(
            &prepare_program(
                "shared int X; shared double A[4]; flag f; fn main() { int v; v = X; A[v] = 1.0; post f; }",
            )
            .unwrap(),
        )
        .unwrap();
        let dump = cfg_to_string(&cfg);
        assert!(dump.contains("read X"), "{dump}");
        assert!(dump.contains("write A["), "{dump}");
        assert!(dump.contains("post f"), "{dump}");
        assert!(dump.contains("; a0"), "{dump}");
        assert!(dump.contains("(entry)"), "{dump}");
        assert!(dump.contains("return"), "{dump}");
    }

    #[test]
    fn dump_shows_branches() {
        let cfg =
            lower_main(&prepare_program("fn main() { if (MYPROC == 0) { work(1); } }").unwrap())
                .unwrap();
        let dump = cfg_to_string(&cfg);
        assert!(dump.contains("branch (MYPROC == 0) ?"), "{dump}");
    }
}
