//! Newtype indices used throughout the IR.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index for table lookups.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a table index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a basic block within a [`crate::cfg::Cfg`].
    BlockId,
    "bb"
);
define_id!(
    /// Identifies a program variable in a [`crate::vars::VarTable`].
    VarId,
    "v"
);
define_id!(
    /// Identifies a shared-memory access or synchronization operation site.
    ///
    /// Access ids are the nodes of the paper's `P ∪ C` graph: every
    /// `GetShared`/`PutShared` and every `post`/`wait`/`barrier`/
    /// `lock`/`unlock` instruction has exactly one.
    AccessId,
    "a"
);

/// A precise instruction position: block plus index within the block.
///
/// The terminator is addressed by `instr == block.instrs.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// Containing block.
    pub block: BlockId,
    /// Index into the block's instruction list.
    pub instr: usize,
}

impl Position {
    /// Creates a position.
    pub fn new(block: BlockId, instr: usize) -> Self {
        Position { block, instr }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_index() {
        let b = BlockId::from_index(7);
        assert_eq!(b.index(), 7);
        assert_eq!(b.to_string(), "bb7");
        assert_eq!(format!("{b:?}"), "bb7");
        assert_eq!(VarId::from_index(3).to_string(), "v3");
        assert_eq!(AccessId::from_index(0).to_string(), "a0");
    }

    #[test]
    fn positions_order_lexicographically() {
        let a = Position::new(BlockId(1), 5);
        let b = Position::new(BlockId(1), 6);
        let c = Position::new(BlockId(2), 0);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "bb1[5]");
    }
}
