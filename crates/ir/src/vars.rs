//! The program variable table.

use crate::ids::VarId;
use syncopt_frontend::ast::Type;

/// How a variable lives in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A scalar in the global address space (one copy, on its home node).
    SharedScalar,
    /// A distributed array with `len` elements, block-distributed.
    SharedArray {
        /// Number of elements.
        len: u64,
    },
    /// An event variable for `post`/`wait`.
    Flag,
    /// An array of `len` event variables.
    FlagArray {
        /// Number of flags.
        len: u64,
    },
    /// A mutual-exclusion variable.
    Lock,
    /// A per-processor local scalar (includes compiler temporaries).
    Local,
    /// A per-processor local array with `len` elements.
    LocalArray {
        /// Number of elements.
        len: u64,
    },
}

impl VarKind {
    /// Whether accesses to this variable go through the global address space.
    pub fn is_shared_data(self) -> bool {
        matches!(self, VarKind::SharedScalar | VarKind::SharedArray { .. })
    }

    /// Whether this is a synchronization object.
    pub fn is_sync(self) -> bool {
        matches!(
            self,
            VarKind::Flag | VarKind::FlagArray { .. } | VarKind::Lock
        )
    }

    /// Whether this is processor-private storage.
    pub fn is_local(self) -> bool {
        matches!(self, VarKind::Local | VarKind::LocalArray { .. })
    }
}

/// Everything known about one variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source-level name (compiler temporaries start with `%`).
    pub name: String,
    /// Storage classification.
    pub kind: VarKind,
    /// Element type.
    pub ty: Type,
}

/// An append-only table of variables, indexed by [`VarId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarTable {
    vars: Vec<VarInfo>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Adds a variable, returning its id.
    pub fn push(&mut self, info: VarInfo) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(info);
        id
    }

    /// Looks up a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by `push`).
    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Finds a variable by name.
    pub fn by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(VarId::from_index)
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId::from_index(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> VarTable {
        let mut t = VarTable::new();
        t.push(VarInfo {
            name: "X".into(),
            kind: VarKind::SharedScalar,
            ty: Type::Int,
        });
        t.push(VarInfo {
            name: "A".into(),
            kind: VarKind::SharedArray { len: 16 },
            ty: Type::Double,
        });
        t.push(VarInfo {
            name: "i".into(),
            kind: VarKind::Local,
            ty: Type::Int,
        });
        t
    }

    #[test]
    fn push_and_lookup() {
        let t = table();
        assert_eq!(t.len(), 3);
        let a = t.by_name("A").unwrap();
        assert_eq!(t.info(a).kind, VarKind::SharedArray { len: 16 });
        assert!(t.by_name("missing").is_none());
    }

    #[test]
    fn kind_predicates() {
        assert!(VarKind::SharedScalar.is_shared_data());
        assert!(VarKind::SharedArray { len: 4 }.is_shared_data());
        assert!(VarKind::Flag.is_sync());
        assert!(VarKind::Lock.is_sync());
        assert!(VarKind::Local.is_local());
        assert!(!VarKind::Local.is_shared_data());
        assert!(!VarKind::SharedScalar.is_sync());
    }

    #[test]
    fn iter_yields_in_order() {
        let t = table();
        let names: Vec<&str> = t.iter().map(|(_, v)| v.name.as_str()).collect();
        assert_eq!(names, ["X", "A", "i"]);
    }
}
