//! Live-variable analysis for locals (backward may-analysis).
//!
//! Used by `syncopt-codegen`'s cleanup pass to delete dead local
//! assignments and — more interestingly — *dead communication*: a split
//! `get` whose destination is never read is a remote message with no
//! observer, so it (and its syncs) can be dropped entirely.

use crate::cfg::{Cfg, Instr};
use crate::dataflow::{instr_defs, instr_uses, term_uses};
use crate::ids::{BlockId, VarId};
use std::collections::HashSet;

/// Block-level liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<VarId>>,
    live_out: Vec<HashSet<VarId>>,
}

impl Liveness {
    /// Runs the classic backward fixpoint.
    pub fn compute(cfg: &Cfg) -> Self {
        let nb = cfg.num_blocks();
        let mut live_in: Vec<HashSet<VarId>> = vec![HashSet::new(); nb];
        let mut live_out: Vec<HashSet<VarId>> = vec![HashSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in cfg.block_ids() {
                let bi = b.index();
                let mut out: HashSet<VarId> = HashSet::new();
                for s in cfg.successors(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = out.clone();
                // Walk the block backward: terminator first.
                for v in term_uses(&cfg.block(b).term) {
                    inn.insert(v);
                }
                for instr in cfg.block(b).instrs.iter().rev() {
                    // Local arrays are conservative: element writes both
                    // use and define the array, so they never kill it.
                    if let Some(d) = instr.def() {
                        inn.remove(&d);
                    }
                    for u in instr_uses(instr) {
                        inn.insert(u);
                    }
                    if let Some(a) = instr.array_def() {
                        inn.insert(a);
                    }
                }
                if inn != live_in[bi] || out != live_out[bi] {
                    live_in[bi] = inn;
                    live_out[bi] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Variables live at entry of `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<VarId> {
        &self.live_in[b.index()]
    }

    /// Variables live at exit of `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<VarId> {
        &self.live_out[b.index()]
    }

    /// Whether `var` is live immediately *after* the instruction at
    /// (`b`, `idx`) — i.e. whether some later use may read the value the
    /// instruction just wrote.
    pub fn live_after(&self, cfg: &Cfg, b: BlockId, idx: usize, var: VarId) -> bool {
        let instrs = &cfg.block(b).instrs;
        // Scan the block suffix after idx.
        for instr in &instrs[idx + 1..] {
            if instr_uses(instr).contains(&var) || instr.array_def() == Some(var) {
                return true;
            }
            if instr_defs(instr).contains(&var) && instr.array_def() != Some(var) {
                // Redefinition kills it before any use.
                return false;
            }
        }
        if term_uses(&cfg.block(b).term).contains(&var) {
            return true;
        }
        self.live_out[b.index()].contains(&var)
    }
}

/// A pure local assignment with a dead destination (safe to delete). The
/// value expression must not be able to trap (no division/modulo), so
/// deletion cannot suppress a runtime fault.
pub fn is_dead_assignment(cfg: &Cfg, live: &Liveness, b: BlockId, idx: usize) -> bool {
    let Instr::AssignLocal { dst, value } = &cfg.block(b).instrs[idx] else {
        return false;
    };
    if expr_may_trap(value) {
        return false;
    }
    !live.live_after(cfg, b, idx, *dst)
}

fn expr_may_trap(e: &crate::expr::Expr) -> bool {
    use crate::expr::Expr;
    use syncopt_frontend::ast::BinOp;
    match e {
        Expr::Int(_)
        | Expr::Float(_)
        | Expr::Bool(_)
        | Expr::MyProc
        | Expr::Procs
        | Expr::Local(_) => false,
        // Local array reads bounds-check at runtime.
        Expr::LocalElem { .. } => true,
        Expr::Unary { expr, .. } => expr_may_trap(expr),
        Expr::Binary { op, lhs, rhs } => {
            matches!(op, BinOp::Div | BinOp::Rem) || expr_may_trap(lhs) || expr_may_trap(rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_main;
    use syncopt_frontend::prepare_program;

    fn analyzed(src: &str) -> (Cfg, Liveness) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let l = Liveness::compute(&cfg);
        (cfg, l)
    }

    fn var(cfg: &Cfg, name: &str) -> VarId {
        cfg.vars.by_name(name).unwrap()
    }

    #[test]
    fn straight_line_liveness() {
        let (cfg, l) =
            analyzed("shared int X; fn main() { int a; int b; a = 1; b = a + 1; X = b; }");
        let a = var(&cfg, "a");
        let b = var(&cfg, "b");
        // After `a = 1` (idx 0), a is live (used by the next assign).
        assert!(l.live_after(&cfg, cfg.entry, 0, a));
        // After `b = a + 1` (idx 1), a is dead, b live.
        assert!(!l.live_after(&cfg, cfg.entry, 1, a));
        assert!(l.live_after(&cfg, cfg.entry, 1, b));
    }

    #[test]
    fn loop_keeps_variables_alive() {
        let (cfg, l) = analyzed(
            r#"
            shared int X;
            fn main() {
                int i; int acc;
                acc = 0;
                for (i = 0; i < 4; i = i + 1) { acc = acc + i; }
                X = acc;
            }
            "#,
        );
        let acc = var(&cfg, "acc");
        // acc is live out of the loop body (used next iteration + after).
        let body = cfg
            .block_ids()
            .find(|&b| {
                cfg.block(b)
                    .instrs
                    .iter()
                    .any(|i| i.def() == Some(acc) && !cfg.block(b).instrs.is_empty())
                    && b != cfg.entry
            })
            .unwrap();
        assert!(l.live_out(body).contains(&acc));
    }

    #[test]
    fn branch_condition_uses_count() {
        let (cfg, l) = analyzed("fn main() { int a; a = 1; if (a > 0) { work(1); } }");
        let a = var(&cfg, "a");
        assert!(l.live_after(&cfg, cfg.entry, 0, a), "terminator reads a");
    }

    #[test]
    fn dead_assignment_detection() {
        let (cfg, l) = analyzed("fn main() { int a; int b; a = 1; b = 2; work(b); }");
        assert!(is_dead_assignment(&cfg, &l, cfg.entry, 0), "a unused");
        assert!(!is_dead_assignment(&cfg, &l, cfg.entry, 1), "b used");
    }

    #[test]
    fn trapping_assignments_are_kept() {
        let (cfg, l) = analyzed("fn main() { int a; int z; z = 0; a = 1 / z; work(z); }");
        // `a = 1 / z` is dead but may trap: not removable.
        let idx = cfg
            .block(cfg.entry)
            .instrs
            .iter()
            .position(|i| i.def() == Some(var(&cfg, "a")))
            .unwrap();
        assert!(!is_dead_assignment(&cfg, &l, cfg.entry, idx));
    }

    #[test]
    fn local_arrays_never_die() {
        let (cfg, l) = analyzed("fn main() { int buf[4]; buf[0] = 1; work(1); }");
        let buf = var(&cfg, "buf");
        // The element write keeps the array alive conservatively.
        let idx = 0;
        let _ = idx;
        assert!(!is_dead_assignment(&cfg, &l, cfg.entry, 0));
        let _ = buf;
    }
}
