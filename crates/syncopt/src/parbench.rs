//! The parallel-simulation benchmark (`syncoptc bench --suite
//! sim_parallel`).
//!
//! Where [`crate::simbench`] measures the *sequential* calendar engine at
//! small machine sizes, this suite scales the five evaluation kernels to
//! large simulated machines — 64, 256, and 1024 processors — and runs
//! each through the sharded conservative engine
//! ([`simulate_sharded_with`]) at 1, 2, 4,
//! and 8 shards (Block partition), with a Profiled-partition rider at 4
//! shards tracking the traffic-aware strategy's per-shard load balance.
//! Every sharded run is compared against the calendar
//! engine on the same compiled program: the two must agree on every
//! simulation observable (execution time, per-processor cycle accounts,
//! network traffic, stall breakdown) or the bench errors out, so a full
//! run doubles as a large-machine differential test.
//!
//! Each (kernel, procs) pair compiles **once** — at the paper's
//! optimized setting, one-way communication under the
//! synchronization-refined delay set — and the shard counts reuse that
//! artifact, so the suite isolates simulator cost from compile cost.
//!
//! The report serializes to the all-integer [`BENCH_SCHEMA`]
//! (`syncopt.bench_report.v1`, suite tag `sim_parallel`). Wall times use
//! the processor-count-aware buckets of [`wall_bucket_for`] (powers of
//! four at ≥ 256 procs) and are excluded from the regression gate;
//! [`GATED_PAR_COUNTERS`] are exact deterministic work counts and are
//! gated at the usual tolerance. Independent (kernel, procs) groups fan
//! out across worker threads with a fixed-order merge, so the report is
//! bit-identical at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use syncopt_codegen::{DelayChoice, OptLevel};
use syncopt_core::diag::json::Value;
use syncopt_core::Counters;
use syncopt_kernels::{kernels_with, KernelParams};
use syncopt_machine::{
    simulate_configured, simulate_sharded_with, EngineKind, MachineConfig, ShardPartition,
    SimError, SimOutputs,
};

use crate::bench::{gate_counters_against, BENCH_SCHEMA};
use crate::simbench::wall_bucket_for;
use crate::{Syncopt, SyncoptError};

/// Counter keys the parallel-simulation regression gate watches. All are
/// exact "work performed" measures of the sharded engine and
/// deterministic for a given (program, machine, shard count).
/// `sim.shard_idle_windows` is deliberately absent: an idle window is
/// work *not* performed — it is recorded for observability, but gating
/// it would flag load-balance shifts that cost nothing.
pub const GATED_PAR_COUNTERS: [&str; 5] = [
    "sim.events_scheduled",
    "sim.events_dequeued",
    "sim.shard_horizon_advances",
    "sim.shard_cross_messages",
    "sim.shard_mailbox_drains",
];

/// One (kernel, simulated-processor-count) group of the sweep. The
/// group compiles once and is simulated at each entry of `shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParSweepGroup {
    /// Kernel name as in Figure 12 (`Ocean`, `EM3D`, ...).
    pub kernel: &'static str,
    /// Simulated processor count.
    pub procs: u32,
    /// Shard counts the compiled program is simulated at, in order.
    pub shards: &'static [usize],
}

impl ParSweepGroup {
    /// Stable config id for one shard count of this group
    /// (`ocean_p64_s4`) — the baseline join key.
    pub fn id(&self, shards: usize) -> String {
        format!("{}_p{}_s{}", self.kernel.to_lowercase(), self.procs, shards)
    }

    /// Config id for a non-default partition strategy
    /// (`ocean_p64_s4_profiled`); the default Block strategy keeps the
    /// bare [`ParSweepGroup::id`] so old baselines keep joining.
    pub fn partition_id(&self, shards: usize, partition: ShardPartition) -> String {
        match partition {
            ShardPartition::Block => self.id(shards),
            other => format!("{}_{}", self.id(shards), other.label()),
        }
    }
}

const PAR_PROCS: [u32; 3] = [64, 256, 1024];

const PAR_SHARDS: [usize; 4] = [1, 2, 4, 8];

const KERNEL_NAMES: [&str; 5] = ["Ocean", "EM3D", "Epithel", "Cholesky", "Health"];

/// The full sweep: five kernels × three machine sizes, each simulated at
/// four shard counts — 60 configurations in deterministic order.
pub fn sweep() -> Vec<ParSweepGroup> {
    let mut groups = Vec::new();
    for kernel in KERNEL_NAMES {
        for procs in PAR_PROCS {
            groups.push(ParSweepGroup {
                kernel,
                procs,
                shards: &PAR_SHARDS,
            });
        }
    }
    groups
}

/// The CI smoke subset: one barrier kernel at the smallest large-machine
/// size, unsharded vs four shards. Both config ids are members of the
/// full sweep, so a smoke run can be gated against a committed
/// full-sweep baseline.
pub fn smoke_sweep() -> Vec<ParSweepGroup> {
    vec![ParSweepGroup {
        kernel: "Ocean",
        procs: 64,
        shards: &[1, 4],
    }]
}

/// One simulated configuration.
#[derive(Debug, Clone)]
pub struct ParBenchConfigResult {
    /// Stable config id (`ocean_p64_s4`) — the baseline join key.
    pub id: String,
    /// Kernel name.
    pub kernel: &'static str,
    /// Simulated processor count.
    pub procs: u32,
    /// Shard count the run was partitioned across.
    pub shards: usize,
    /// Processor-to-shard assignment strategy.
    pub partition: ShardPartition,
    /// Simulated execution time in machine cycles (identical across
    /// engines, shard counts, and partition strategies by construction).
    pub exec_cycles: u64,
    /// Sharded-engine simulation wall time, rounded up per
    /// [`wall_bucket_for`] (nondeterministic; excluded from the gate).
    pub wall_bucket_us: u64,
    /// Raw sharded-engine wall time in microseconds (nondeterministic;
    /// excluded from the gate, reported for speedup math).
    pub wall_us: u64,
    /// Self-relative wall-clock speedup over this group's single-shard
    /// run, times 1000 (1000 = parity; nondeterministic; excluded from
    /// the gate but sanity-checked on multi-core hosts).
    pub speedup_milli: u64,
    /// Per-shard event-load imbalance, max/mean × 1000 (1000 = perfectly
    /// balanced; deterministic for a given partition strategy).
    pub imbalance_permille: u64,
    /// `sim.*` counters from the sharded engine plus the calendar
    /// engine's event count (`cal.events_dequeued`) as the sequential
    /// reference column.
    pub counters: Counters,
}

/// A full parallel-simulation run.
#[derive(Debug, Clone)]
pub struct ParBenchReport {
    /// Worker threads the (kernel, procs) groups fanned out across.
    pub threads: usize,
    /// Whether this was the CI smoke subset.
    pub smoke: bool,
    /// Host hardware parallelism at measurement time. Wall-clock speedup
    /// claims are only meaningful when this is ≥ 2 — shard workers are
    /// real OS threads, and a single core serializes them.
    pub host_cpus: usize,
    /// Per-configuration results, in sweep order (independent of
    /// `threads`).
    pub configs: Vec<ParBenchConfigResult>,
}

/// Host hardware parallelism, as reported by the OS (1 when unknown).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs the parallel-simulation sweep (or the CI smoke subset), fanning
/// the independent (kernel, procs) groups across `threads` workers and
/// merging in sweep order.
///
/// # Errors
///
/// Propagates compile/simulation errors, and errors if the sharded
/// engine disagrees with the calendar engine on any observable at any
/// shard count (which would be an engine bug, not an input problem).
pub fn run_par_bench(smoke: bool, threads: usize) -> Result<ParBenchReport, SyncoptError> {
    let groups = if smoke { smoke_sweep() } else { sweep() };
    let workers = threads.max(1).min(groups.len().max(1));
    type GroupSlot = Option<Result<Vec<ParBenchConfigResult>, SyncoptError>>;
    let mut results: Vec<GroupSlot> = Vec::new();
    if workers <= 1 {
        for group in &groups {
            results.push(Some(run_group(group)));
        }
    } else {
        let slots: Vec<Mutex<GroupSlot>> = (0..groups.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(i) else { break };
                    let result = run_group(group);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(result);
                });
            }
        });
        for slot in slots {
            results.push(slot.into_inner().expect("sweep slot poisoned"));
        }
    }
    let mut configs = Vec::new();
    for result in results {
        configs.extend(result.expect("every sweep slot is filled")?);
    }
    Ok(ParBenchReport {
        threads: workers,
        smoke,
        host_cpus: host_cpus(),
        configs,
    })
}

fn run_group(group: &ParSweepGroup) -> Result<Vec<ParBenchConfigResult>, SyncoptError> {
    let params = KernelParams::bench(group.procs);
    let kernel = kernels_with(&params)
        .into_iter()
        .find(|k| k.name == group.kernel)
        .unwrap_or_else(|| panic!("unknown kernel {}", group.kernel));
    let compiled = Syncopt::new(&kernel.source)
        .procs(group.procs)
        .level(OptLevel::OneWay)
        .delay(DelayChoice::SyncRefined)
        .compile()?;
    let config = MachineConfig::cm5(group.procs);
    let calendar = simulate_configured(
        &compiled.optimized.cfg,
        &config,
        EngineKind::Calendar,
        SimOutputs::lean(),
    )?;

    // Block partition at every shard count of the group, plus a Profiled
    // rider at 4 shards (when the group includes it) to track how the
    // traffic-aware strategy shifts per-shard load.
    let mut runs: Vec<(usize, ShardPartition)> = group
        .shards
        .iter()
        .map(|&s| (s, ShardPartition::Block))
        .collect();
    if group.shards.contains(&4) {
        runs.push((4, ShardPartition::Profiled));
    }

    let mut out = Vec::with_capacity(runs.len());
    let mut wall_s1 = None;
    for (shards, partition) in runs {
        let id = group.partition_id(shards, partition);
        let start = std::time::Instant::now();
        let sharded = simulate_sharded_with(
            &compiled.optimized.cfg,
            &config,
            shards,
            partition,
            SimOutputs::lean(),
        )?;
        let wall_us = u64::try_from(start.elapsed().as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        if sharded.exec_cycles != calendar.exec_cycles
            || sharded.proc_cycles != calendar.proc_cycles
            || sharded.net != calendar.net
            || sharded.stalls != calendar.stalls
        {
            return Err(SyncoptError::Sim(SimError::new(format!(
                "sharded engine diverged on {id}: {} cycles at {shards} \
                 shard(s) vs calendar {}",
                sharded.exec_cycles, calendar.exec_cycles
            ))));
        }
        if shards == 1 && partition == ShardPartition::Block {
            wall_s1 = Some(wall_us);
        }

        let mut counters = Counters::default();
        let w = sharded.metrics.work;
        counters.set("sim.events_scheduled", w.events_scheduled);
        counters.set("sim.events_dequeued", w.events_dequeued);
        counters.set("sim.shard_horizon_advances", w.shard_horizon_advances);
        counters.set("sim.shard_cross_messages", w.shard_cross_messages);
        counters.set("sim.shard_mailbox_drains", w.shard_mailbox_drains);
        counters.set("sim.shard_idle_windows", w.shard_idle_windows);
        counters.set("sim.shard_leader_merge_steps", w.shard_leader_merge_steps);
        counters.set("sim.shard_parallel_drains", w.shard_parallel_drains);
        counters.set("sim.shard_parallel_flattens", w.shard_parallel_flattens);
        counters.set(
            "sim.events_per_1k_cycles",
            w.events_per_1k_cycles(sharded.exec_cycles),
        );
        counters.set("cal.events_dequeued", calendar.metrics.work.events_dequeued);

        out.push(ParBenchConfigResult {
            id,
            kernel: group.kernel,
            procs: group.procs,
            shards,
            partition,
            exec_cycles: sharded.exec_cycles,
            wall_bucket_us: wall_bucket_for(group.procs, wall_us),
            wall_us,
            speedup_milli: wall_s1.map_or(0, |s1: u64| s1.saturating_mul(1000) / wall_us),
            imbalance_permille: sharded.metrics.shard_imbalance_permille().unwrap_or(1000),
            counters,
        });
    }
    Ok(out)
}

impl ParBenchReport {
    /// The report as a JSON object (schema [`BENCH_SCHEMA`], suite
    /// `sim_parallel`); all values are integers or strings.
    pub fn to_json(&self) -> Value {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("id".to_string(), Value::Str(c.id.clone())),
                    ("kernel".to_string(), Value::Str(c.kernel.to_string())),
                    ("procs".to_string(), Value::Int(i64::from(c.procs))),
                    ("shards".to_string(), Value::Int(c.shards as i64)),
                    (
                        "partition".to_string(),
                        Value::Str(c.partition.label().to_string()),
                    ),
                    ("exec_cycles".to_string(), Value::Int(c.exec_cycles as i64)),
                    (
                        "wall_bucket_us".to_string(),
                        Value::Int(c.wall_bucket_us as i64),
                    ),
                    ("wall_us".to_string(), Value::Int(c.wall_us as i64)),
                    (
                        "speedup_milli".to_string(),
                        Value::Int(c.speedup_milli as i64),
                    ),
                    (
                        "imbalance_permille".to_string(),
                        Value::Int(c.imbalance_permille as i64),
                    ),
                    ("counters".to_string(), c.counters.to_json()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(BENCH_SCHEMA.to_string())),
            ("suite".to_string(), Value::Str("sim_parallel".to_string())),
            ("threads".to_string(), Value::Int(self.threads as i64)),
            ("smoke".to_string(), Value::Bool(self.smoke)),
            ("host_cpus".to_string(), Value::Int(self.host_cpus as i64)),
            ("configs".to_string(), Value::Arr(configs)),
        ])
    }

    /// A human-readable sweep table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "parallel simulation sweep ({} configs, {} thread(s), {} host \
             cpu(s){})\n",
            self.configs.len(),
            self.threads.max(1),
            self.host_cpus,
            if self.smoke { ", smoke subset" } else { "" },
        ));
        out.push_str(&format!(
            "{:<29} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>7} {:>9}\n",
            "config",
            "cycles",
            "events",
            "x-shard",
            "drains",
            "windows",
            "idle",
            "imbal",
            "spdup",
            "wall(us)"
        ));
        for c in &self.configs {
            out.push_str(&format!(
                "{:<29} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>2}.{:03} {:>3}.{:03} {:>8}≤\n",
                c.id,
                c.exec_cycles,
                c.counters.get("sim.events_dequeued"),
                c.counters.get("sim.shard_cross_messages"),
                c.counters.get("sim.shard_mailbox_drains"),
                c.counters.get("sim.shard_horizon_advances"),
                c.counters.get("sim.shard_idle_windows"),
                c.imbalance_permille / 1000,
                c.imbalance_permille % 1000,
                c.speedup_milli / 1000,
                c.speedup_milli % 1000,
                c.wall_bucket_us,
            ));
        }
        out
    }

    /// Compares this run against a committed baseline report, enforcing
    /// the >[`TOLERANCE_PCT`](crate::bench::TOLERANCE_PCT)% regression
    /// gate on [`GATED_PAR_COUNTERS`] for every config id the two
    /// reports share.
    ///
    /// # Errors
    ///
    /// Returns a message naming every regressed `(config, counter)`
    /// pair, or a schema error if `baseline` is not a bench report.
    pub fn check_against(&self, baseline: &Value) -> Result<(), String> {
        let pairs: Vec<(&str, &Counters)> = self
            .configs
            .iter()
            .map(|c| (c.id.as_str(), &c.counters))
            .collect();
        gate_counters_against(&pairs, baseline, &GATED_PAR_COUNTERS)?;
        self.check_speedup()
    }

    /// Sanity-checks this run's own wall-clock numbers: on a multi-core
    /// host, the sharded engine must not be *slower* than its one-shard
    /// self at the largest machine sizes (Block partition, 4 shards,
    /// ≥ 256 simulated processors — the configurations with enough work
    /// per window to amortize round overheads). On a single-core host the
    /// check is skipped: shard workers are real OS threads and one core
    /// serializes them, so wall parity is not expected there.
    fn check_speedup(&self) -> Result<(), String> {
        if self.host_cpus < 2 {
            return Ok(());
        }
        let mut failures = Vec::new();
        for c in &self.configs {
            if c.partition == ShardPartition::Block
                && c.shards == 4
                && c.procs >= 256
                && c.speedup_milli < 1000
            {
                failures.push(format!(
                    "{}: wall speedup {}.{:03}x < 1.0x vs its one-shard run \
                     (wall {} us)",
                    c.id,
                    c.speedup_milli / 1000,
                    c.speedup_milli % 1000,
                    c.wall_us
                ));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "sharded engine shows no wall-clock speedup on a {}-cpu host:\n  {}",
                self.host_cpus,
                failures.join("\n  ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_report() -> ParBenchReport {
        run_par_bench(true, 1).expect("smoke parallel bench must run")
    }

    #[test]
    fn smoke_run_is_bit_identical_across_shard_counts() {
        let r = smoke_report();
        assert_eq!(r.configs.len(), 3);
        assert_eq!(r.configs[0].id, "ocean_p64_s1");
        assert_eq!(r.configs[1].id, "ocean_p64_s4");
        assert_eq!(r.configs[2].id, "ocean_p64_s4_profiled");
        assert!(r.host_cpus >= 1);
        // run_group already errored if any observable diverged from the
        // calendar engine; cycles must also agree across shard counts
        // and partition strategies.
        assert!(r.configs[0].exec_cycles > 0);
        assert_eq!(r.configs[0].exec_cycles, r.configs[1].exec_cycles);
        assert_eq!(r.configs[0].exec_cycles, r.configs[2].exec_cycles);
        let single = &r.configs[0].counters;
        let sharded = &r.configs[1].counters;
        assert_eq!(single.get("sim.shard_cross_messages"), 0);
        assert_eq!(single.get("sim.shard_mailbox_drains"), 0);
        assert!(single.get("sim.shard_horizon_advances") > 0);
        assert!(sharded.get("sim.shard_cross_messages") > 0);
        assert!(sharded.get("sim.shard_mailbox_drains") > 0);
        assert!(sharded.get("sim.shard_leader_merge_steps") > 0);
        assert!(sharded.get("cal.events_dequeued") > 0);
        // The speedup baseline is the one-shard run: parity by definition.
        assert_eq!(r.configs[0].speedup_milli, 1000);
        assert_eq!(r.configs[0].imbalance_permille, 1000);
        assert!(r.configs[1].imbalance_permille >= 1000);
        assert!(r.configs[2].imbalance_permille >= 1000);
    }

    #[test]
    fn full_sweep_is_five_kernels_by_procs_by_shards() {
        let groups = sweep();
        assert_eq!(groups.len(), 15);
        let ids: Vec<String> = groups
            .iter()
            .flat_map(|g| g.shards.iter().map(|&s| g.id(s)))
            .collect();
        assert_eq!(ids.len(), 60);
        assert!(ids.contains(&"ocean_p64_s1".to_string()));
        assert!(ids.contains(&"health_p1024_s8".to_string()));
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate sweep ids");
    }

    #[test]
    fn smoke_ids_are_members_of_the_full_sweep() {
        let full: Vec<String> = sweep()
            .iter()
            .flat_map(|g| g.shards.iter().map(|&s| g.id(s)))
            .collect();
        for g in smoke_sweep() {
            for &s in g.shards {
                assert!(
                    full.contains(&g.id(s)),
                    "{} has no full-sweep twin; the CI smoke gate would not join it",
                    g.id(s)
                );
            }
        }
    }

    #[test]
    fn json_is_schema_tagged_and_reparses() {
        let r = smoke_report();
        let j = r.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        assert_eq!(j.get("suite").unwrap().as_str(), Some("sim_parallel"));
        let text = j.to_string();
        let back = Value::parse(&text).expect("parallel bench JSON must reparse");
        assert_eq!(back, j);
    }

    #[test]
    fn gate_accepts_self_and_rejects_regression() {
        let r = smoke_report();
        let baseline = r.to_json();
        r.check_against(&baseline).expect("self-compare passes");

        // Inflating cross-shard traffic beyond tolerance must trip.
        let mut worse = r.clone();
        let bumped = worse.configs[1].counters.get("sim.shard_cross_messages") * 2;
        worse.configs[1]
            .counters
            .set("sim.shard_cross_messages", bumped);
        let err = worse.check_against(&baseline).unwrap_err();
        assert!(err.contains("sim.shard_cross_messages"), "{err}");

        // Idle windows are observability, not gated work.
        let mut idle = r.clone();
        let bumped = idle.configs[1].counters.get("sim.shard_idle_windows") * 10 + 100;
        idle.configs[1]
            .counters
            .set("sim.shard_idle_windows", bumped);
        idle.check_against(&baseline)
            .expect("idle windows are not gated");
    }

    #[test]
    fn counters_are_identical_across_thread_counts() {
        let serial = run_par_bench(true, 1).unwrap();
        let threaded = run_par_bench(true, 2).unwrap();
        assert_eq!(serial.configs.len(), threaded.configs.len());
        for (a, b) in serial.configs.iter().zip(threaded.configs.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.exec_cycles, b.exec_cycles);
            assert_eq!(a.counters, b.counters, "id={}", a.id);
        }
    }

    #[test]
    fn render_table_shows_every_config() {
        let r = smoke_report();
        let t = r.render_table();
        for c in &r.configs {
            assert!(t.contains(&c.id), "{t}");
        }
    }
}
