#![warn(missing_docs)]

//! `syncopt` — a sequential-consistency-preserving optimizer for
//! explicitly parallel SPMD programs.
//!
//! This workspace reproduces *Optimizing Parallel Programs with Explicit
//! Synchronization* (Krishnamurthy & Yelick, PLDI 1995): cycle detection à
//! la Shasha & Snir, refined with post-wait / barrier / lock
//! synchronization analysis, driving message pipelining, one-way
//! communication conversion, and remote-access elimination — evaluated on
//! a deterministic distributed-memory machine simulator.
//!
//! This crate is the facade: the [`Syncopt`] builder configures and drives
//! the whole pipeline, and every run produces a [`PipelineReport`]
//! describing what each stage did.
//!
//! ```
//! use syncopt::{Syncopt, OptLevel};
//! use syncopt::machine::MachineConfig;
//!
//! let src = r#"
//!     shared int A[32];
//!     fn main() {
//!         A[MYPROC] = MYPROC;
//!         barrier;
//!         int v; v = A[(MYPROC + 1) % PROCS];
//!         work(v);
//!     }
//! "#;
//! let config = MachineConfig::cm5(8);
//! let blocking = Syncopt::new(src).level(OptLevel::Blocking).run(&config)?;
//! let optimized = Syncopt::new(src).level(OptLevel::OneWay).run(&config)?;
//! assert!(optimized.sim.exec_cycles <= blocking.sim.exec_cycles);
//! // Optimization never changes the final memory image.
//! assert_eq!(optimized.sim.memory, blocking.sim.memory);
//! // Every run carries a structured report of what the pipeline did.
//! assert!(optimized.report().to_json().to_string().contains("exec_cycles"));
//! # Ok::<(), syncopt::SyncoptError>(())
//! ```

pub mod bench;
#[cfg(unix)]
pub mod client;
pub mod commands;
#[cfg(unix)]
pub mod daemon;
pub mod lint;
pub mod parbench;
pub mod report;
pub mod rpc;
pub mod session;
pub mod simbench;
pub mod telemetry;
pub mod trace_export;

pub use report::{PipelineReport, ProfileReport, ReportMeta, SimReport};
pub use session::{AnalysisSession, SessionOptions};
pub use syncopt_codegen::{DelayChoice, OptLevel, OptStats, Optimized};
pub use syncopt_core::{Analysis, AnalysisStats, CacheStats, DelaySet};
pub use syncopt_machine::{MachineConfig, ShardPartition, SimResult};
pub use telemetry::{ServiceTelemetry, TelemetryConfig, METRICS_SCHEMA, REQLOG_SCHEMA};
pub use trace_export::{chrome_trace, verify_span_accounting, TRACE_SCHEMA};

/// Optimization stage (split-phase codegen and communication passes).
pub use syncopt_codegen as codegen;
/// Analysis stage (conflicts, cycle detection, synchronization analysis).
pub use syncopt_core as core;
/// Frontend stage (lexer, parser, type checker, inlining).
pub use syncopt_frontend as frontend;
/// IR stage (CFG, dominators, dataflow).
pub use syncopt_ir as ir;
/// The five evaluation kernels.
pub use syncopt_kernels as kernels;
/// Execution substrate (machine simulator, litmus explorer).
pub use syncopt_machine as machine;

use std::error::Error;
use std::fmt;
use syncopt_ir::cfg::Cfg;
use syncopt_machine::{SimError, Trace};

/// Any error from the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncoptError {
    /// Lexing, parsing, type checking, or inlining failed.
    Frontend(syncopt_frontend::FrontendError),
    /// AST → CFG lowering failed.
    Lower(syncopt_ir::lower::LowerError),
    /// Simulation failed (runtime fault, deadlock, step limit).
    Sim(syncopt_machine::SimError),
}

impl SyncoptError {
    /// Converts the error to a [`core::Diagnostic`] carrying the source
    /// span, for rustc-style rendering (`E001`–`E005` for frontend and
    /// lowering errors; simulation errors have no source span and map to
    /// a dummy-span diagnostic with code `E006`).
    pub fn to_diagnostic(&self) -> syncopt_core::Diagnostic {
        match self {
            SyncoptError::Frontend(e) => syncopt_core::diag::frontend_diagnostic(e),
            SyncoptError::Lower(e) => syncopt_core::diag::lower_diagnostic(e),
            SyncoptError::Sim(e) => syncopt_core::Diagnostic::new(
                "E006",
                syncopt_core::Severity::Error,
                format!("simulation error: {}", e.message()),
                syncopt_frontend::Span::dummy(),
            ),
        }
    }
}

impl fmt::Display for SyncoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncoptError::Frontend(e) => write!(f, "{e}"),
            SyncoptError::Lower(e) => write!(f, "{e}"),
            SyncoptError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SyncoptError {}

impl From<syncopt_frontend::FrontendError> for SyncoptError {
    fn from(e: syncopt_frontend::FrontendError) -> Self {
        SyncoptError::Frontend(e)
    }
}

impl From<syncopt_ir::lower::LowerError> for SyncoptError {
    fn from(e: syncopt_ir::lower::LowerError) -> Self {
        SyncoptError::Lower(e)
    }
}

impl From<syncopt_machine::SimError> for SyncoptError {
    fn from(e: syncopt_machine::SimError) -> Self {
        SyncoptError::Sim(e)
    }
}

/// How much the pipeline should observe about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No wall-clock timing, no event trace. Reports still carry all
    /// deterministic counters (with zeroed `_us` timings).
    #[default]
    Off,
    /// Measure wall-clock phase timings (parse → simulate).
    Phases,
    /// Phase timings plus a bounded simulator event trace and structured
    /// timeline (state/flow/lock/barrier spans) on [`RunResult::trace`].
    Events,
}

/// Default upper bound on captured simulator events and timeline spans at
/// [`TraceLevel::Events`]; override with
/// [`Syncopt::trace_limit`](Syncopt::trace_limit).
pub const DEFAULT_TRACE_LIMIT: usize = 100_000;

/// The pipeline builder: configure once, then [`compile`](Syncopt::compile),
/// [`run`](Syncopt::run), [`run_two_version`](Syncopt::run_two_version), or
/// [`profile`](Syncopt::profile).
///
/// Defaults: [`OptLevel::Full`], [`DelayChoice::SyncRefined`],
/// [`TraceLevel::Off`], and the processor count taken from the
/// [`MachineConfig`] handed to `run` (or analysis unbounded in processor
/// count for a bare `compile`).
///
/// ```
/// use syncopt::{Syncopt, OptLevel, DelayChoice, TraceLevel};
/// use syncopt::machine::MachineConfig;
///
/// let src = "shared int A[8]; fn main() { A[MYPROC] = 1; barrier; }";
/// let result = Syncopt::new(src)
///     .procs(8)
///     .level(OptLevel::Full)
///     .delay(DelayChoice::SyncRefined)
///     .trace(TraceLevel::Phases)
///     .run(&MachineConfig::cm5(8))?;
/// assert!(result.sim.barriers_aligned);
/// # Ok::<(), syncopt::SyncoptError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Syncopt<'a> {
    src: &'a str,
    procs: Option<u32>,
    level: OptLevel,
    delay: DelayChoice,
    trace: TraceLevel,
    trace_limit: usize,
    threads: usize,
    sim_shards: usize,
    sim_partition: ShardPartition,
}

impl<'a> Syncopt<'a> {
    /// Starts a pipeline over `src` with default settings.
    pub fn new(src: &'a str) -> Self {
        Syncopt {
            src,
            procs: None,
            level: OptLevel::Full,
            delay: DelayChoice::SyncRefined,
            trace: TraceLevel::Off,
            trace_limit: DEFAULT_TRACE_LIMIT,
            threads: 1,
            sim_shards: 1,
            sim_partition: ShardPartition::Block,
        }
    }

    /// Analyzes for a fixed machine size (enables modular subscript
    /// disambiguation). `run` defaults this to the machine's processor
    /// count when unset.
    #[must_use]
    pub fn procs(mut self, procs: u32) -> Self {
        self.procs = Some(procs);
        self
    }

    /// Sets the optimization level (default [`OptLevel::Full`]).
    #[must_use]
    pub fn level(mut self, level: OptLevel) -> Self {
        self.level = level;
        self
    }

    /// Sets the delay set constraining code motion (default
    /// [`DelayChoice::SyncRefined`]).
    #[must_use]
    pub fn delay(mut self, delay: DelayChoice) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the observability level (default [`TraceLevel::Off`]).
    #[must_use]
    pub fn trace(mut self, trace: TraceLevel) -> Self {
        self.trace = trace;
        self
    }

    /// Caps captured simulator events and timeline spans at
    /// [`TraceLevel::Events`] (default [`DEFAULT_TRACE_LIMIT`]). When the
    /// cap is hit the trace and report carry `truncated: true` rather
    /// than silently looking like a short run.
    #[must_use]
    pub fn trace_limit(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }

    /// Sets the worker-thread count for the delay-set candidate loops
    /// (default 1 = serial; results are bit-identical for every value).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the simulation shard count for [`run`](Syncopt::run) (default
    /// 1 = sequential calendar engine). Values above 1 execute the
    /// simulation on the conservative parallel engine
    /// ([`machine::simulate_sharded`]), which is bit-identical to the
    /// sequential reference at every shard count. Incompatible with
    /// [`TraceLevel::Events`].
    #[must_use]
    pub fn sim_shards(mut self, shards: usize) -> Self {
        self.sim_shards = shards;
        self
    }

    /// Sets the processor-to-shard assignment strategy for sharded runs
    /// (default [`ShardPartition::Block`]; inert at one shard). Results
    /// are bit-identical under every strategy — only the per-shard load
    /// balance changes. Incompatible with [`TraceLevel::Events`].
    #[must_use]
    pub fn sim_partition(mut self, partition: ShardPartition) -> Self {
        self.sim_partition = partition;
        self
    }

    /// Parses, checks, lowers, analyzes, and optimizes the program.
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering errors.
    pub fn compile(&self) -> Result<Compiled, SyncoptError> {
        AnalysisSession::new().compile(self.src, &self.session_options())
    }

    /// The builder's knobs as per-request session options (a one-shot
    /// builder run is exactly one request against a fresh
    /// [`AnalysisSession`]).
    fn session_options(&self) -> SessionOptions {
        SessionOptions {
            procs: self.procs,
            level: self.level,
            delay: self.delay,
            trace: self.trace,
            trace_limit: self.trace_limit,
            threads: self.threads,
            sim_shards: self.sim_shards,
            sim_partition: self.sim_partition,
        }
    }

    /// Compiles (analyzing for the machine's processor count unless
    /// [`procs`](Syncopt::procs) overrode it) and simulates the optimized
    /// program on `config`.
    ///
    /// # Errors
    ///
    /// Returns frontend, lowering, or simulation errors.
    pub fn run(&self, config: &MachineConfig) -> Result<RunResult, SyncoptError> {
        AnalysisSession::new().run(self.src, &self.session_options(), config)
    }

    /// The paper's §5.2 **two-version compilation**: barrier alignment is
    /// undecidable in general, so the compiler emits an *optimistic*
    /// version (barriers assumed aligned, full optimization) guarded by a
    /// runtime check, plus a *conservative* version (no barrier
    /// information). The optimistic version runs; if the dynamic
    /// barrier-sequence check fails (or the optimistic run faults), the
    /// conservative version's result is used and
    /// [`TwoVersionResult::fallback`] says why.
    ///
    /// # Errors
    ///
    /// Returns frontend/lowering errors, or simulation errors from the
    /// conservative version (the optimistic version's runtime faults
    /// trigger the fallback instead of failing).
    pub fn run_two_version(
        &self,
        config: &MachineConfig,
    ) -> Result<TwoVersionResult, SyncoptError> {
        let program = syncopt_frontend::prepare_program(self.src)?;
        let source_cfg = syncopt_ir::lower::lower_main(&program)?;
        let procs = self.procs.unwrap_or(config.procs);

        // Optimistic: assume barriers align; the simulator double-checks.
        let optimistic = syncopt_core::analyze_with(
            &source_cfg,
            &syncopt_core::SyncOptions {
                barrier_policy: syncopt_core::BarrierPolicy::AssumeAligned,
                procs: Some(procs),
                threads: self.threads,
            },
        );
        let opt_cfg = syncopt_codegen::optimize(&source_cfg, &optimistic, self.level, self.delay);
        let fallback = match syncopt_machine::simulate(&opt_cfg.cfg, config) {
            Ok(sim) if sim.barriers_aligned => {
                return Ok(TwoVersionResult {
                    sim,
                    used: VersionUsed::Optimized,
                    fallback: None,
                });
            }
            Ok(sim) => FallbackReason::MisalignedBarriers {
                divergent_proc: divergent_proc(&sim.barrier_seqs),
            },
            Err(e) => FallbackReason::SimFailed(e),
        };

        // Conservative: no barrier information at all.
        let conservative = syncopt_core::analyze_with(
            &source_cfg,
            &syncopt_core::SyncOptions {
                barrier_policy: syncopt_core::BarrierPolicy::Disabled,
                procs: Some(procs),
                threads: self.threads,
            },
        );
        let cons_cfg =
            syncopt_codegen::optimize(&source_cfg, &conservative, self.level, self.delay);
        let sim = syncopt_machine::simulate(&cons_cfg.cfg, config)?;
        Ok(TwoVersionResult {
            sim,
            used: VersionUsed::Conservative,
            fallback: Some(fallback),
        })
    }

    /// Runs the program twice on `config` — once at [`OptLevel::Blocking`]
    /// and once at the builder's configured level — and pairs the two
    /// [`PipelineReport`]s, the shape of the paper's Figure 12 bars.
    ///
    /// # Errors
    ///
    /// Returns frontend, lowering, or simulation errors from either run.
    pub fn profile(&self, config: &MachineConfig) -> Result<ProfileReport, SyncoptError> {
        AnalysisSession::new().profile(self.src, &self.session_options(), config)
    }
}

/// The first processor whose barrier-site sequence diverges from
/// processor 0's (0 when they all agree — callers only ask after a
/// misalignment was detected).
fn divergent_proc(seqs: &[Vec<syncopt_ir::ids::AccessId>]) -> u32 {
    seqs.iter()
        .position(|s| s != &seqs[0])
        .map_or(0, |p| p as u32)
}

/// The output of [`Syncopt::compile`]: the source CFG, the analysis, the
/// optimized target CFG, and the compile-side pipeline report.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The lowered (blocking-access) source CFG.
    pub source_cfg: Cfg,
    /// Conflict/delay analysis results.
    pub analysis: Analysis,
    /// The optimized program.
    pub optimized: Optimized,
    /// What every stage did (no simulation section yet).
    pub report: PipelineReport,
}

/// The output of [`Syncopt::run`]: compilation artifacts plus the
/// simulation result.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Compilation artifacts; `compiled.report` includes the simulation
    /// section.
    pub compiled: Compiled,
    /// The simulated execution.
    pub sim: SimResult,
    /// The simulator event trace, when the builder asked for
    /// [`TraceLevel::Events`].
    pub trace: Option<Trace>,
}

impl RunResult {
    /// The full pipeline report (compile stages + simulation).
    pub fn report(&self) -> &PipelineReport {
        &self.compiled.report
    }
}

/// Which code version a two-version execution ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionUsed {
    /// The barrier-optimistic optimized version ran to completion and the
    /// runtime check confirmed barrier alignment.
    Optimized,
    /// The runtime check failed (or the optimistic run faulted) and the
    /// conservative version was used instead.
    Conservative,
}

/// Why a two-version execution fell back to the conservative version.
#[derive(Debug, Clone, PartialEq)]
pub enum FallbackReason {
    /// The optimistic simulation aborted with a runtime fault (typically
    /// a barrier deadlock from the misalignment itself).
    SimFailed(SimError),
    /// The optimistic run completed, but the dynamic barrier-sequence
    /// check found processors disagreeing on which barriers they passed.
    MisalignedBarriers {
        /// The first processor whose barrier sequence diverges from
        /// processor 0's.
        divergent_proc: u32,
    },
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::SimFailed(e) => write!(f, "optimistic run failed: {}", e.message()),
            FallbackReason::MisalignedBarriers { divergent_proc } => write!(
                f,
                "barrier sequences misaligned (processor {divergent_proc} diverges from processor 0)"
            ),
        }
    }
}

/// The result of a two-version execution.
#[derive(Debug, Clone)]
pub struct TwoVersionResult {
    /// The simulation that "counts".
    pub sim: SimResult,
    /// Which version produced it.
    pub used: VersionUsed,
    /// Why the fallback fired (`None` when the optimized version was
    /// used).
    pub fallback: Option<FallbackReason>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        shared int A[16]; flag F;
        fn main() {
            A[MYPROC] = MYPROC * 2;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            work(v);
        }
    "#;

    #[test]
    fn compile_produces_valid_cfg_at_every_level() {
        for level in [
            OptLevel::Blocking,
            OptLevel::Pipelined,
            OptLevel::OneWay,
            OptLevel::Full,
        ] {
            let c = Syncopt::new(SRC).procs(4).level(level).compile().unwrap();
            c.optimized.cfg.validate().unwrap();
            assert_eq!(c.optimized.level, level);
            assert!(c.report.sim.is_none());
            assert_eq!(c.report.meta.level, level);
        }
    }

    #[test]
    fn run_executes_and_optimization_preserves_memory() {
        let config = MachineConfig::cm5(4);
        let base = Syncopt::new(SRC)
            .level(OptLevel::Blocking)
            .run(&config)
            .unwrap();
        let opt = Syncopt::new(SRC).run(&config).unwrap();
        assert_eq!(base.sim.memory, opt.sim.memory);
        assert!(opt.sim.exec_cycles <= base.sim.exec_cycles);
        // The default level is Full.
        assert_eq!(opt.compiled.optimized.level, OptLevel::Full);
    }

    #[test]
    fn run_report_covers_all_four_stages() {
        let config = MachineConfig::cm5(4);
        let r = Syncopt::new(SRC).run(&config).unwrap();
        let report = r.report();
        assert_eq!(report.meta.procs, 4);
        assert_eq!(report.meta.machine.as_deref(), Some("CM-5"));
        // Frontend: all phases recorded (zeros with tracing off).
        let phases: Vec<&str> = report.timings.iter().map(|(k, _)| k).collect();
        assert_eq!(
            phases,
            vec!["parse", "typeck", "inline", "lower", "analyze", "optimize", "simulate"]
        );
        // Analysis counters present.
        assert!(report.counters.get("conflict.pairs") > 0);
        // Codegen did something at Full.
        assert!(report.codegen.gets_split > 0);
        // Simulation section with conserved per-proc accounting.
        let sim = report.sim.as_ref().unwrap();
        assert_eq!(sim.exec_cycles, r.sim.exec_cycles);
        for p in &sim.metrics.per_proc {
            assert_eq!(p.accounted(), sim.exec_cycles);
        }
    }

    #[test]
    fn trace_levels_gate_timings_and_events() {
        let config = MachineConfig::cm5(2);
        let off = Syncopt::new(SRC).run(&config).unwrap();
        assert!(!off.report().timings.enabled());
        assert!(off.trace.is_none());
        let phases = Syncopt::new(SRC)
            .trace(TraceLevel::Phases)
            .run(&config)
            .unwrap();
        assert!(phases.report().timings.enabled());
        assert!(phases.trace.is_none());
        let events = Syncopt::new(SRC)
            .trace(TraceLevel::Events)
            .run(&config)
            .unwrap();
        assert!(events.trace.is_some());
        assert!(!events.trace.unwrap().events().is_empty());
    }

    #[test]
    fn profile_pairs_blocking_with_optimized() {
        let config = MachineConfig::cm5(4);
        let p = Syncopt::new(SRC)
            .level(OptLevel::OneWay)
            .profile(&config)
            .unwrap();
        assert_eq!(p.blocking.meta.level, OptLevel::Blocking);
        assert_eq!(p.optimized.meta.level, OptLevel::OneWay);
        assert!(p.speedup_x100() >= 100, "optimization never slows: {p:?}");
        let json = p.to_json();
        assert!(json.get("comparison").is_some());
    }

    #[test]
    fn builder_sim_shards_matches_sequential_run() {
        let config = MachineConfig::cm5(4);
        let seq = Syncopt::new(SRC).run(&config).unwrap();
        let par = Syncopt::new(SRC).sim_shards(4).run(&config).unwrap();
        assert_eq!(seq.sim.exec_cycles, par.sim.exec_cycles);
        assert_eq!(seq.sim.memory, par.sim.memory);
        assert_eq!(seq.sim.metrics.per_proc, par.sim.metrics.per_proc);
    }

    #[test]
    fn frontend_errors_propagate_with_spans() {
        let err = Syncopt::new("fn main() { x = 1; }")
            .procs(2)
            .compile()
            .unwrap_err();
        assert!(matches!(err, SyncoptError::Frontend(_)), "{err}");
        assert!(err.to_string().contains("unknown variable"));
        let d = err.to_diagnostic();
        assert_eq!(d.code, "E003");
        assert!(d.span.end > d.span.start);
    }

    #[test]
    fn two_version_uses_optimized_when_barriers_align() {
        let r = Syncopt::new(SRC)
            .level(OptLevel::OneWay)
            .run_two_version(&MachineConfig::cm5(4))
            .unwrap();
        assert_eq!(r.used, VersionUsed::Optimized);
        assert!(r.sim.barriers_aligned);
        assert!(r.fallback.is_none());
    }

    #[test]
    fn two_version_falls_back_on_misaligned_barriers() {
        // Same barrier COUNT everywhere but different sites per branch:
        // the optimistic run completes yet the sequence check fails.
        let src = r#"
            shared int X;
            fn main() {
                int v;
                if (MYPROC == 0) {
                    X = 1;
                    barrier;
                    work(10);
                    barrier;
                } else {
                    barrier;
                    barrier;
                    v = X;
                    work(v);
                }
            }
        "#;
        let r = Syncopt::new(src)
            .level(OptLevel::OneWay)
            .run_two_version(&MachineConfig::cm5(2))
            .unwrap();
        assert_eq!(r.used, VersionUsed::Conservative);
        match r.fallback {
            Some(FallbackReason::MisalignedBarriers { divergent_proc }) => {
                assert_eq!(divergent_proc, 1);
            }
            other => panic!("expected misaligned-barriers reason, got {other:?}"),
        }
    }

    #[test]
    fn two_version_propagates_when_both_versions_fail() {
        // Unequal barrier COUNTS deadlock every version — the conservative
        // run's error surfaces (its failure is not maskable by fallback).
        let src = r#"
            shared int X;
            fn main() {
                if (MYPROC == 0) { X = 1; barrier; }
                int v; v = X; work(v);
            }
        "#;
        let err = Syncopt::new(src)
            .level(OptLevel::OneWay)
            .run_two_version(&MachineConfig::cm5(2))
            .unwrap_err();
        assert!(matches!(err, SyncoptError::Sim(_)), "{err}");
    }

    #[test]
    fn fallback_reasons_render() {
        let f = FallbackReason::SimFailed(SimError::new("deadlock"));
        assert!(f.to_string().contains("optimistic run failed"), "{f}");
        let m = FallbackReason::MisalignedBarriers { divergent_proc: 3 };
        assert!(m.to_string().contains("processor 3"), "{m}");
    }

    #[test]
    fn sim_errors_propagate() {
        let err = Syncopt::new("shared int A[2]; fn main() { A[5] = 1; }")
            .level(OptLevel::Blocking)
            .run(&MachineConfig::cm5(2))
            .unwrap_err();
        assert!(matches!(err, SyncoptError::Sim(_)), "{err}");
        assert_eq!(err.to_diagnostic().code, "E006");
    }
}
