#![warn(missing_docs)]

//! `syncopt` — a sequential-consistency-preserving optimizer for
//! explicitly parallel SPMD programs.
//!
//! This workspace reproduces *Optimizing Parallel Programs with Explicit
//! Synchronization* (Krishnamurthy & Yelick, PLDI 1995): cycle detection à
//! la Shasha & Snir, refined with post-wait / barrier / lock
//! synchronization analysis, driving message pipelining, one-way
//! communication conversion, and remote-access elimination — evaluated on
//! a deterministic distributed-memory machine simulator.
//!
//! This crate is the facade: it re-exports the pipeline stages and offers
//! the one-call entry points [`compile`] and [`run`].
//!
//! ```
//! use syncopt::{run, OptLevel, DelayChoice};
//! use syncopt::machine::MachineConfig;
//!
//! let src = r#"
//!     shared int A[32];
//!     fn main() {
//!         A[MYPROC] = MYPROC;
//!         barrier;
//!         int v; v = A[(MYPROC + 1) % PROCS];
//!         work(v);
//!     }
//! "#;
//! let config = MachineConfig::cm5(8);
//! let blocking = run(src, &config, OptLevel::Blocking, DelayChoice::SyncRefined)?;
//! let optimized = run(src, &config, OptLevel::OneWay, DelayChoice::SyncRefined)?;
//! assert!(optimized.sim.exec_cycles <= blocking.sim.exec_cycles);
//! // Optimization never changes the final memory image.
//! assert_eq!(optimized.sim.memory, blocking.sim.memory);
//! # Ok::<(), syncopt::SyncoptError>(())
//! ```

pub use syncopt_codegen::{DelayChoice, OptLevel, OptStats, Optimized};
pub use syncopt_core::{Analysis, AnalysisStats, DelaySet};
pub use syncopt_machine::{MachineConfig, SimResult};

/// Optimization stage (split-phase codegen and communication passes).
pub use syncopt_codegen as codegen;
/// Analysis stage (conflicts, cycle detection, synchronization analysis).
pub use syncopt_core as core;
/// Frontend stage (lexer, parser, type checker, inlining).
pub use syncopt_frontend as frontend;
/// IR stage (CFG, dominators, dataflow).
pub use syncopt_ir as ir;
/// The five evaluation kernels.
pub use syncopt_kernels as kernels;
/// Execution substrate (machine simulator, litmus explorer).
pub use syncopt_machine as machine;

use std::error::Error;
use std::fmt;
use syncopt_ir::cfg::Cfg;

/// Any error from the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncoptError {
    /// Lexing, parsing, type checking, or inlining failed.
    Frontend(syncopt_frontend::FrontendError),
    /// AST → CFG lowering failed.
    Lower(syncopt_ir::lower::LowerError),
    /// Simulation failed (runtime fault, deadlock, step limit).
    Sim(syncopt_machine::SimError),
}

impl fmt::Display for SyncoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncoptError::Frontend(e) => write!(f, "{e}"),
            SyncoptError::Lower(e) => write!(f, "{e}"),
            SyncoptError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SyncoptError {}

impl From<syncopt_frontend::FrontendError> for SyncoptError {
    fn from(e: syncopt_frontend::FrontendError) -> Self {
        SyncoptError::Frontend(e)
    }
}

impl From<syncopt_ir::lower::LowerError> for SyncoptError {
    fn from(e: syncopt_ir::lower::LowerError) -> Self {
        SyncoptError::Lower(e)
    }
}

impl From<syncopt_machine::SimError> for SyncoptError {
    fn from(e: syncopt_machine::SimError) -> Self {
        SyncoptError::Sim(e)
    }
}

/// The output of [`compile`]: the source CFG, the analysis, and the
/// optimized target CFG.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The lowered (blocking-access) source CFG.
    pub source_cfg: Cfg,
    /// Conflict/delay analysis results.
    pub analysis: Analysis,
    /// The optimized program.
    pub optimized: Optimized,
}

/// Parses, checks, lowers, analyzes (for `procs` processors), and
/// optimizes a `minisplit` program.
///
/// # Errors
///
/// Returns frontend or lowering errors.
pub fn compile(
    src: &str,
    procs: u32,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<Compiled, SyncoptError> {
    let program = syncopt_frontend::prepare_program(src)?;
    let source_cfg = syncopt_ir::lower::lower_main(&program)?;
    let analysis = syncopt_core::analyze_for(&source_cfg, procs);
    let optimized = syncopt_codegen::optimize(&source_cfg, &analysis, level, choice);
    Ok(Compiled {
        source_cfg,
        analysis,
        optimized,
    })
}

/// The output of [`run`]: compilation artifacts plus the simulation result.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Compilation artifacts.
    pub compiled: Compiled,
    /// The simulated execution.
    pub sim: SimResult,
}

/// [`compile`]s for `config.procs` processors and simulates the optimized
/// program on `config`.
///
/// # Errors
///
/// Returns frontend, lowering, or simulation errors.
pub fn run(
    src: &str,
    config: &MachineConfig,
    level: OptLevel,
    choice: DelayChoice,
) -> Result<RunResult, SyncoptError> {
    let compiled = compile(src, config.procs, level, choice)?;
    let sim = syncopt_machine::simulate(&compiled.optimized.cfg, config)?;
    Ok(RunResult { compiled, sim })
}

/// Which code version a two-version execution ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionUsed {
    /// The barrier-optimistic optimized version ran to completion and the
    /// runtime check confirmed barrier alignment.
    Optimized,
    /// The runtime check failed (or the optimistic run deadlocked on a
    /// barrier) and the conservative version was used instead.
    Conservative,
}

/// The result of a two-version execution.
#[derive(Debug, Clone)]
pub struct TwoVersionResult {
    /// The simulation that "counts".
    pub sim: SimResult,
    /// Which version produced it.
    pub used: VersionUsed,
}

/// The paper's §5.2 **two-version compilation**: barrier alignment is
/// undecidable in general, so the compiler emits an *optimistic* version
/// (barriers assumed aligned, full optimization) guarded by a runtime
/// check, plus a *conservative* version (no barrier information). The
/// optimistic version runs; if the dynamic barrier-sequence check fails,
/// the conservative version's result is used.
///
/// # Errors
///
/// Returns frontend/lowering errors, or simulation errors from the
/// conservative version (the optimistic version's runtime faults trigger
/// the fallback instead of failing).
pub fn run_two_version(
    src: &str,
    config: &MachineConfig,
    level: OptLevel,
) -> Result<TwoVersionResult, SyncoptError> {
    let program = syncopt_frontend::prepare_program(src)?;
    let source_cfg = syncopt_ir::lower::lower_main(&program)?;

    // Optimistic: assume barriers align; the simulator double-checks.
    let optimistic = syncopt_core::analyze_with(
        &source_cfg,
        &syncopt_core::SyncOptions {
            barrier_policy: syncopt_core::BarrierPolicy::AssumeAligned,
            procs: Some(config.procs),
        },
    );
    let opt_cfg =
        syncopt_codegen::optimize(&source_cfg, &optimistic, level, DelayChoice::SyncRefined);
    if let Ok(sim) = syncopt_machine::simulate(&opt_cfg.cfg, config) {
        if sim.barriers_aligned {
            return Ok(TwoVersionResult {
                sim,
                used: VersionUsed::Optimized,
            });
        }
    }

    // Conservative: no barrier information at all.
    let conservative = syncopt_core::analyze_with(
        &source_cfg,
        &syncopt_core::SyncOptions {
            barrier_policy: syncopt_core::BarrierPolicy::Disabled,
            procs: Some(config.procs),
        },
    );
    let cons_cfg =
        syncopt_codegen::optimize(&source_cfg, &conservative, level, DelayChoice::SyncRefined);
    let sim = syncopt_machine::simulate(&cons_cfg.cfg, config)?;
    Ok(TwoVersionResult {
        sim,
        used: VersionUsed::Conservative,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        shared int A[16]; flag F;
        fn main() {
            A[MYPROC] = MYPROC * 2;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            work(v);
        }
    "#;

    #[test]
    fn compile_produces_valid_cfg_at_every_level() {
        for level in [
            OptLevel::Blocking,
            OptLevel::Pipelined,
            OptLevel::OneWay,
            OptLevel::Full,
        ] {
            let c = compile(SRC, 4, level, DelayChoice::SyncRefined).unwrap();
            c.optimized.cfg.validate().unwrap();
            assert_eq!(c.optimized.level, level);
        }
    }

    #[test]
    fn run_executes_and_optimization_preserves_memory() {
        let config = MachineConfig::cm5(4);
        let base = run(SRC, &config, OptLevel::Blocking, DelayChoice::SyncRefined).unwrap();
        let opt = run(SRC, &config, OptLevel::Full, DelayChoice::SyncRefined).unwrap();
        assert_eq!(base.sim.memory, opt.sim.memory);
        assert!(opt.sim.exec_cycles <= base.sim.exec_cycles);
    }

    #[test]
    fn frontend_errors_propagate() {
        let err = compile(
            "fn main() { x = 1; }",
            2,
            OptLevel::Full,
            DelayChoice::SyncRefined,
        )
        .unwrap_err();
        assert!(matches!(err, SyncoptError::Frontend(_)), "{err}");
        assert!(err.to_string().contains("unknown variable"));
    }

    #[test]
    fn two_version_uses_optimized_when_barriers_align() {
        let r = run_two_version(SRC, &MachineConfig::cm5(4), OptLevel::OneWay).unwrap();
        assert_eq!(r.used, VersionUsed::Optimized);
        assert!(r.sim.barriers_aligned);
    }

    #[test]
    fn two_version_falls_back_on_misaligned_barriers() {
        // Same barrier COUNT everywhere but different sites per branch:
        // the optimistic run completes yet the sequence check fails.
        let src = r#"
            shared int X;
            fn main() {
                int v;
                if (MYPROC == 0) {
                    X = 1;
                    barrier;
                    work(10);
                    barrier;
                } else {
                    barrier;
                    barrier;
                    v = X;
                    work(v);
                }
            }
        "#;
        let r = run_two_version(src, &MachineConfig::cm5(2), OptLevel::OneWay).unwrap();
        assert_eq!(r.used, VersionUsed::Conservative);
    }

    #[test]
    fn sim_errors_propagate() {
        let err = run(
            "shared int A[2]; fn main() { A[5] = 1; }",
            &MachineConfig::cm5(2),
            OptLevel::Blocking,
            DelayChoice::SyncRefined,
        )
        .unwrap_err();
        assert!(matches!(err, SyncoptError::Sim(_)), "{err}");
    }
}
