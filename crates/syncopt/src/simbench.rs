//! The simulator-throughput benchmark (`syncoptc bench --suite sim`, the
//! `sim_throughput` bench binary).
//!
//! Runs the full compile-and-simulate pipeline over the five evaluation
//! kernels at bench problem sizes ([`KernelParams::bench`]) and records,
//! per configuration, the deterministic **simulator work counters**
//! ([`SimWork`](syncopt_machine::SimWork)) of the calendar-queue engine —
//! plus, as the comparison column, the legacy-probe counters of the
//! [`ReferenceHeap`](EngineKind::ReferenceHeap) engine running the *same*
//! program. Every run therefore doubles as a differential test: the two
//! engines must agree on execution time and network traffic or the bench
//! errors out.
//!
//! Like the delay-scaling suite ([`crate::bench`]), the report serializes
//! to the all-integer [`BENCH_SCHEMA`] (`syncopt.bench_report.v1`, suite
//! tag `sim_throughput`); wall-time buckets are power-of-two-coarse and
//! excluded from the regression gate. Independent configurations fan out
//! across worker threads with a fixed-order merge, so the report is
//! bit-identical at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use syncopt_codegen::{DelayChoice, OptLevel};
use syncopt_core::diag::json::Value;
use syncopt_core::Counters;
use syncopt_kernels::{kernels_with, KernelParams};
use syncopt_machine::{simulate_configured, EngineKind, MachineConfig, SimError, SimOutputs};

use crate::bench::{gate_counters_against, BENCH_SCHEMA};
use crate::{Syncopt, SyncoptError};

/// Counter keys the simulator regression gate watches. All are exact
/// "work performed" measures of the calendar-queue engine; `arena_reuses`
/// is deliberately absent (more reuse is better, not worse), and
/// `sim.hash_lookups` is gated at its baseline value of **zero** — any
/// hashing reintroduced into the cycle loop trips the gate immediately.
pub const GATED_SIM_COUNTERS: [&str; 6] = [
    "sim.events_scheduled",
    "sim.events_dequeued",
    "sim.bucket_rotations",
    "sim.overflow_promotions",
    "sim.waiter_scans",
    "sim.hash_lookups",
];

/// Rounds a measured simulation wall time up to its report bucket.
///
/// Buckets deliberately coarsen the one nondeterministic column of the
/// bench reports so that committed baselines stay byte-stable across
/// machines and runs. The rung width scales with the simulated machine:
///
/// * **procs < 256** — next power of **two** of microseconds, the
///   original `sim_throughput` granularity.
/// * **procs ≥ 256** — next power of **four**. Large simulated machines
///   run long enough that scheduler jitter alone can straddle a
///   power-of-two boundary between runs; the wider rung keeps a
///   1024-processor baseline reproducible while still resolving the ≥2×
///   differences the `sim_parallel` suite exists to show.
///
/// See `docs/PERFORMANCE.md` for the bucket policy.
pub fn wall_bucket_for(procs: u32, wall_us: u64) -> u64 {
    if wall_us > 1 << 62 {
        return u64::MAX; // off the scale of any real measurement
    }
    let p2 = wall_us.max(1).next_power_of_two();
    if procs < 256 || p2.trailing_zeros().is_multiple_of(2) {
        p2
    } else {
        // Odd exponent: promote to the enclosing power of four.
        p2 << 1
    }
}

/// One point of the simulator sweep: a kernel, an optimization setting,
/// and a processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSweepSpec {
    /// Kernel name as in Figure 12 (`Ocean`, `EM3D`, ...).
    pub kernel: &'static str,
    /// Optimization label (`unopt` / `opt`).
    pub label: &'static str,
    /// Optimization level compiled at.
    pub level: OptLevel,
    /// Delay-set choice compiled with.
    pub delay: DelayChoice,
    /// Simulated processor count.
    pub procs: u32,
}

impl SimSweepSpec {
    /// Stable config id (`ocean_unopt_p4`) — the baseline join key.
    pub fn id(&self) -> String {
        format!(
            "{}_{}_p{}",
            self.kernel.to_lowercase(),
            self.label,
            self.procs
        )
    }
}

/// The two optimization settings each kernel is swept at: the pipelined
/// baseline under the Shasha–Snir delay set, and one-way communication
/// under the paper's synchronization-refined delay set.
const SETTINGS: [(&str, OptLevel, DelayChoice); 2] = [
    ("unopt", OptLevel::Pipelined, DelayChoice::ShashaSnir),
    ("opt", OptLevel::OneWay, DelayChoice::SyncRefined),
];

const SWEEP_PROCS: [u32; 2] = [4, 16];

const KERNEL_NAMES: [&str; 5] = ["Ocean", "EM3D", "Epithel", "Cholesky", "Health"];

/// The full sweep: five kernels × two optimization settings × two
/// processor counts, in deterministic order.
pub fn sweep() -> Vec<SimSweepSpec> {
    let mut specs = Vec::new();
    for kernel in KERNEL_NAMES {
        for (label, level, delay) in SETTINGS {
            for procs in SWEEP_PROCS {
                specs.push(SimSweepSpec {
                    kernel,
                    label,
                    level,
                    delay,
                    procs,
                });
            }
        }
    }
    specs
}

/// The two-point CI smoke subset: one barrier kernel unoptimized, one
/// post/wait kernel optimized.
pub fn smoke_sweep() -> Vec<SimSweepSpec> {
    let (unopt_label, unopt_level, unopt_delay) = SETTINGS[0];
    let (opt_label, opt_level, opt_delay) = SETTINGS[1];
    vec![
        SimSweepSpec {
            kernel: "Ocean",
            label: unopt_label,
            level: unopt_level,
            delay: unopt_delay,
            procs: 4,
        },
        SimSweepSpec {
            kernel: "Cholesky",
            label: opt_label,
            level: opt_level,
            delay: opt_delay,
            procs: 4,
        },
    ]
}

/// One simulated configuration.
#[derive(Debug, Clone)]
pub struct SimBenchConfigResult {
    /// Stable config id (`ocean_unopt_p4`) — the baseline join key.
    pub id: String,
    /// Kernel name.
    pub kernel: &'static str,
    /// Optimization label (`unopt` / `opt`).
    pub label: &'static str,
    /// Simulated processor count.
    pub procs: u32,
    /// Simulated execution time in machine cycles (identical across
    /// engines by construction).
    pub exec_cycles: u64,
    /// Calendar-engine simulation wall time, rounded up to the next power
    /// of two of microseconds (nondeterministic; excluded from the gate).
    pub wall_bucket_us: u64,
    /// `sim.*` counters from the calendar engine and `ref.*` counters
    /// from the reference-heap engine on the same program.
    pub counters: Counters,
}

impl SimBenchConfigResult {
    /// Reference-engine hash lookups per calendar-engine hash lookup,
    /// times 100 — the headline "hashing eliminated" evidence. Since the
    /// calendar engine performs zero cycle-loop hash lookups, this is the
    /// reference count × 100.
    pub fn hash_reduction_x100(&self) -> u64 {
        let reference = self.counters.get("ref.hash_lookups");
        let dense = self.counters.get("sim.hash_lookups");
        reference * 100 / (dense + 1)
    }
}

/// A full simulator-throughput run.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Worker threads the sweep fanned out across.
    pub threads: usize,
    /// Whether this was the two-point smoke subset.
    pub smoke: bool,
    /// Per-configuration results, in sweep order (independent of
    /// `threads`).
    pub configs: Vec<SimBenchConfigResult>,
}

/// Runs the simulator sweep (or the CI smoke subset), fanning the
/// independent configurations across `threads` workers and merging in
/// sweep order.
///
/// # Errors
///
/// Propagates compile/simulation errors, and errors if the calendar and
/// reference-heap engines disagree on any observable output (which would
/// be an engine bug, not an input problem).
pub fn run_sim_bench(smoke: bool, threads: usize) -> Result<SimBenchReport, SyncoptError> {
    let specs = if smoke { smoke_sweep() } else { sweep() };
    let workers = threads.max(1).min(specs.len().max(1));
    let mut results: Vec<Option<Result<SimBenchConfigResult, SyncoptError>>> = Vec::new();
    if workers <= 1 {
        for spec in &specs {
            results.push(Some(run_config(spec)));
        }
    } else {
        let slots: Vec<Mutex<Option<Result<SimBenchConfigResult, SyncoptError>>>> =
            (0..specs.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let result = run_config(spec);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(result);
                });
            }
        });
        for slot in slots {
            results.push(slot.into_inner().expect("sweep slot poisoned"));
        }
    }
    let mut configs = Vec::with_capacity(specs.len());
    for result in results {
        configs.push(result.expect("every sweep slot is filled")?);
    }
    Ok(SimBenchReport {
        threads: workers,
        smoke,
        configs,
    })
}

fn run_config(spec: &SimSweepSpec) -> Result<SimBenchConfigResult, SyncoptError> {
    let params = KernelParams::bench(spec.procs);
    let kernel = kernels_with(&params)
        .into_iter()
        .find(|k| k.name == spec.kernel)
        .unwrap_or_else(|| panic!("unknown kernel {}", spec.kernel));
    let compiled = Syncopt::new(&kernel.source)
        .procs(spec.procs)
        .level(spec.level)
        .delay(spec.delay)
        .compile()?;
    let config = MachineConfig::cm5(spec.procs);

    let start = std::time::Instant::now();
    let calendar = simulate_configured(
        &compiled.optimized.cfg,
        &config,
        EngineKind::Calendar,
        SimOutputs::lean(),
    )?;
    let wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let reference = simulate_configured(
        &compiled.optimized.cfg,
        &config,
        EngineKind::ReferenceHeap,
        SimOutputs::lean(),
    )?;
    if calendar.exec_cycles != reference.exec_cycles
        || calendar.proc_cycles != reference.proc_cycles
        || calendar.net != reference.net
    {
        return Err(SyncoptError::Sim(SimError::new(format!(
            "engine divergence on {}: calendar {} cycles vs reference {} cycles",
            spec.id(),
            calendar.exec_cycles,
            reference.exec_cycles
        ))));
    }

    let mut counters = Counters::default();
    let w = calendar.metrics.work;
    counters.set("sim.events_scheduled", w.events_scheduled);
    counters.set("sim.events_dequeued", w.events_dequeued);
    counters.set("sim.bucket_rotations", w.bucket_rotations);
    counters.set("sim.overflow_promotions", w.overflow_promotions);
    counters.set("sim.arena_reuses", w.arena_reuses);
    counters.set("sim.waiter_scans", w.waiter_scans);
    counters.set("sim.hash_lookups", w.hash_lookups);
    counters.set(
        "sim.events_per_1k_cycles",
        w.events_per_1k_cycles(calendar.exec_cycles),
    );
    counters.set("ref.hash_lookups", reference.metrics.work.hash_lookups);
    counters.set(
        "ref.events_dequeued",
        reference.metrics.work.events_dequeued,
    );

    Ok(SimBenchConfigResult {
        id: spec.id(),
        kernel: spec.kernel,
        label: spec.label,
        procs: spec.procs,
        exec_cycles: calendar.exec_cycles,
        wall_bucket_us: wall_bucket_for(spec.procs, wall_us),
        counters,
    })
}

impl SimBenchReport {
    /// The report as a JSON object (schema [`BENCH_SCHEMA`], suite
    /// `sim_throughput`); all values are integers or strings.
    pub fn to_json(&self) -> Value {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("id".to_string(), Value::Str(c.id.clone())),
                    ("kernel".to_string(), Value::Str(c.kernel.to_string())),
                    ("label".to_string(), Value::Str(c.label.to_string())),
                    ("procs".to_string(), Value::Int(i64::from(c.procs))),
                    ("exec_cycles".to_string(), Value::Int(c.exec_cycles as i64)),
                    (
                        "wall_bucket_us".to_string(),
                        Value::Int(c.wall_bucket_us as i64),
                    ),
                    (
                        "hash_reduction_x100".to_string(),
                        Value::Int(c.hash_reduction_x100() as i64),
                    ),
                    ("counters".to_string(), c.counters.to_json()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(BENCH_SCHEMA.to_string())),
            (
                "suite".to_string(),
                Value::Str("sim_throughput".to_string()),
            ),
            ("threads".to_string(), Value::Int(self.threads as i64)),
            ("smoke".to_string(), Value::Bool(self.smoke)),
            ("configs".to_string(), Value::Arr(configs)),
        ])
    }

    /// A human-readable sweep table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simulator throughput sweep ({} configs, {} thread(s){})\n",
            self.configs.len(),
            self.threads.max(1),
            if self.smoke { ", smoke subset" } else { "" },
        ));
        out.push_str(&format!(
            "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}\n",
            "config",
            "cycles",
            "events",
            "rotations",
            "overflow",
            "reuses",
            "hash-elim",
            "wall(us)"
        ));
        for c in &self.configs {
            let red = c.hash_reduction_x100();
            out.push_str(&format!(
                "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8}.{:02}x {:>8}≤\n",
                c.id,
                c.exec_cycles,
                c.counters.get("sim.events_dequeued"),
                c.counters.get("sim.bucket_rotations"),
                c.counters.get("sim.overflow_promotions"),
                c.counters.get("sim.arena_reuses"),
                red / 100,
                red % 100,
                c.wall_bucket_us,
            ));
        }
        out
    }

    /// Compares this run against a committed baseline report, enforcing
    /// the >[`TOLERANCE_PCT`](crate::bench::TOLERANCE_PCT)% regression
    /// gate on [`GATED_SIM_COUNTERS`] for every config id the two reports
    /// share.
    ///
    /// # Errors
    ///
    /// Returns a message naming every regressed `(config, counter)` pair,
    /// or a schema error if `baseline` is not a bench report.
    pub fn check_against(&self, baseline: &Value) -> Result<(), String> {
        let pairs: Vec<(&str, &Counters)> = self
            .configs
            .iter()
            .map(|c| (c.id.as_str(), &c.counters))
            .collect();
        gate_counters_against(&pairs, baseline, &GATED_SIM_COUNTERS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_report() -> SimBenchReport {
        run_sim_bench(true, 1).expect("smoke sim bench must run")
    }

    #[test]
    fn smoke_run_covers_both_settings_and_engines_agree() {
        let r = smoke_report();
        assert_eq!(r.configs.len(), 2);
        assert_eq!(r.configs[0].id, "ocean_unopt_p4");
        assert_eq!(r.configs[1].id, "cholesky_opt_p4");
        for c in &r.configs {
            assert!(c.exec_cycles > 0);
            assert!(c.counters.get("sim.events_dequeued") > 0);
            assert!(c.wall_bucket_us.is_power_of_two());
        }
    }

    #[test]
    fn calendar_engine_eliminates_cycle_loop_hashing() {
        let r = smoke_report();
        for c in &r.configs {
            assert_eq!(c.counters.get("sim.hash_lookups"), 0, "{}", c.id);
            assert!(c.counters.get("ref.hash_lookups") > 0, "{}", c.id);
            assert!(
                c.hash_reduction_x100() >= 500,
                "{}: hash-work reduction below 5x ({})",
                c.id,
                c.hash_reduction_x100()
            );
        }
    }

    #[test]
    fn wall_buckets_widen_at_256_procs() {
        // Below 256 simulated processors: plain powers of two.
        assert_eq!(wall_bucket_for(4, 0), 1);
        assert_eq!(wall_bucket_for(4, 3), 4);
        assert_eq!(wall_bucket_for(64, 100), 128);
        // At and above 256: powers of four.
        assert_eq!(wall_bucket_for(256, 100), 256); // 128 has an odd exponent
        assert_eq!(wall_bucket_for(256, 200), 256);
        assert_eq!(wall_bucket_for(1024, 5), 16);
        assert_eq!(wall_bucket_for(1024, 16), 16);
        assert_eq!(wall_bucket_for(1024, 17), 64);
        for procs in [256, 1024] {
            for us in [1u64, 7, 900, 123_456] {
                let b = wall_bucket_for(procs, us);
                assert!(b >= us);
                assert_eq!(b.trailing_zeros() % 2, 0, "{b} is not a power of four");
            }
        }
        // No overflow panic at the top of the range.
        assert_eq!(wall_bucket_for(1024, u64::MAX), u64::MAX);
    }

    #[test]
    fn full_sweep_is_five_kernels_by_settings_by_procs() {
        let specs = sweep();
        assert_eq!(specs.len(), 20);
        let ids: Vec<String> = specs.iter().map(SimSweepSpec::id).collect();
        assert!(ids.contains(&"ocean_unopt_p4".to_string()));
        assert!(ids.contains(&"health_opt_p16".to_string()));
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate sweep ids");
    }

    #[test]
    fn json_is_schema_tagged_and_reparses() {
        let r = smoke_report();
        let j = r.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        assert_eq!(j.get("suite").unwrap().as_str(), Some("sim_throughput"));
        let text = j.to_string();
        let back = Value::parse(&text).expect("sim bench JSON must reparse");
        assert_eq!(back, j);
    }

    #[test]
    fn counters_are_identical_across_thread_counts() {
        let serial = run_sim_bench(true, 1).unwrap();
        for threads in 2..=4 {
            let threaded = run_sim_bench(true, threads).unwrap();
            for (a, b) in serial.configs.iter().zip(threaded.configs.iter()) {
                assert_eq!(a.id, b.id, "threads={threads}");
                assert_eq!(a.exec_cycles, b.exec_cycles, "threads={threads}");
                assert_eq!(a.counters, b.counters, "threads={threads} id={}", a.id);
            }
        }
    }

    #[test]
    fn gate_accepts_self_and_rejects_regression() {
        let r = smoke_report();
        let baseline = r.to_json();
        r.check_against(&baseline).expect("self-compare passes");

        // Reintroducing hashing must trip the zero-baseline gate.
        let mut worse = r.clone();
        worse.configs[0].counters.set("sim.hash_lookups", 1);
        let err = worse.check_against(&baseline).unwrap_err();
        assert!(err.contains("sim.hash_lookups"), "{err}");

        // So must inflating event work beyond tolerance.
        let mut slower = r.clone();
        let bumped = slower.configs[1].counters.get("sim.events_dequeued") * 2;
        slower.configs[1]
            .counters
            .set("sim.events_dequeued", bumped);
        let err = slower.check_against(&baseline).unwrap_err();
        assert!(err.contains("sim.events_dequeued"), "{err}");
    }

    #[test]
    fn render_table_shows_every_config() {
        let r = smoke_report();
        let t = r.render_table();
        for c in &r.configs {
            assert!(t.contains(&c.id), "{t}");
        }
    }
}
