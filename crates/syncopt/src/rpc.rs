//! The `syncopt.rpc.v1` wire protocol.
//!
//! `syncoptd` and `syncoptc --daemon` speak newline-delimited JSON over a
//! Unix domain socket: each request is one JSON object on one line, and
//! each response is one JSON object on one line, in request order per
//! connection. The `syncopt_core::diag::json` emitter escapes every control character, so a
//! document never spans lines and the framing is unambiguous.
//!
//! Every envelope carries `"schema": "syncopt.rpc.v1"` and the client's
//! `id`, which the server echoes back. Five operations exist:
//!
//! * `ping` — liveness probe; the response carries `"pong": true`.
//! * `stats` — cumulative cache statistics of the server's
//!   [`AnalysisSession`](crate::AnalysisSession): totals, artifact count,
//!   capacity, and the per-kind `cache.<kind>.*` counters — plus service
//!   fields (`uptime_ms`, `requests_total`, `version`) and, when
//!   telemetry is enabled, a full `syncopt.metrics.v1` document under
//!   `metrics`.
//! * `metrics` — Prometheus text exposition format of the service
//!   metrics registry, carried as one JSON string (`metrics_text`);
//!   `unsupported` when the daemon runs with `--no-telemetry`.
//! * `query` — run one [`Query`] through the shared command engine
//!   ([`crate::commands::execute`]); the response carries the exact
//!   stdout bytes, the optional failure message, the optional file
//!   artifact (which the *client* writes — the daemon never touches the
//!   filesystem), and the per-request cache delta.
//! * `shutdown` — ask the server to stop accepting connections and exit.
//!
//! A malformed or unsupported request yields `"ok": false` with an
//! `error` object (`code` ∈ `bad-request` | `unsupported`); a query that
//! *ran* but failed (lint errors, bad source, …) is still `"ok": true`
//! with a non-null `failure`, mirroring the CLI's stdout/stderr/exit-code
//! split. The full schema is documented in `docs/API.md`.

use crate::commands::{
    delay_cli_label, parse_delay, parse_level, CmdOut, FileOutput, Format, Query,
};
use crate::report::level_label;
use syncopt_core::cache::CacheStats;
use syncopt_core::diag::json::Value;
use syncopt_core::obs::Counters;
use syncopt_machine::ShardPartition;

/// Protocol identifier carried by every request and response.
pub const RPC_SCHEMA: &str = "syncopt.rpc.v1";

/// A protocol-level failure (never a *command* failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcError {
    /// `bad-request` (malformed envelope) or `unsupported` (wrong
    /// schema / unknown op).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl RpcError {
    /// A malformed-envelope error.
    pub fn bad_request(message: impl Into<String>) -> RpcError {
        RpcError {
            code: "bad-request",
            message: message.into(),
        }
    }

    /// A wrong-schema / unknown-op error.
    pub fn unsupported(message: impl Into<String>) -> RpcError {
        RpcError {
            code: "unsupported",
            message: message.into(),
        }
    }
}

/// What a request asks the server to do.
///
/// `Query` dominates the size of this enum; a request is decoded once and
/// consumed immediately, so the indirection of boxing it buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// Cumulative session cache statistics.
    Stats,
    /// Prometheus text exposition of the service metrics registry.
    Metrics,
    /// Run one command query.
    Query(Query),
    /// Stop the server.
    Shutdown,
}

/// One decoded request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: i64,
    /// The operation.
    pub body: RequestBody,
}

fn field(fields: &mut Vec<(String, Value)>, key: &str, value: Value) {
    fields.push((key.to_string(), value));
}

fn envelope(id: i64) -> Vec<(String, Value)> {
    vec![
        ("schema".to_string(), Value::Str(RPC_SCHEMA.to_string())),
        ("id".to_string(), Value::Int(id)),
    ]
}

/// Encodes a query for the wire.
pub fn encode_query(q: &Query) -> Value {
    let mut f = Vec::new();
    field(&mut f, "command", Value::Str(q.command.clone()));
    field(&mut f, "file", Value::Str(q.file.clone()));
    if let Some(source) = &q.source {
        field(&mut f, "source", Value::Str(source.clone()));
    }
    field(&mut f, "procs", Value::Int(i64::from(q.procs)));
    field(
        &mut f,
        "level",
        Value::Str(level_label(q.level).to_string()),
    );
    field(
        &mut f,
        "delay",
        Value::Str(delay_cli_label(q.delay).to_string()),
    );
    field(&mut f, "machine", Value::Str(q.machine.clone()));
    field(&mut f, "dump", Value::Bool(q.dump));
    field(&mut f, "dot", Value::Bool(q.dot));
    field(&mut f, "trace", Value::Bool(q.trace));
    field(&mut f, "strict", Value::Bool(q.strict));
    field(&mut f, "kernels", Value::Bool(q.kernels));
    field(&mut f, "format", Value::Str(q.format.label().to_string()));
    if let Some(path) = &q.emit_report {
        field(&mut f, "emit_report", Value::Str(path.clone()));
    }
    field(&mut f, "threads", Value::Int(q.threads as i64));
    field(&mut f, "sim_shards", Value::Int(q.sim_shards as i64));
    field(
        &mut f,
        "sim_partition",
        Value::Str(q.sim_partition.label().to_string()),
    );
    if let Some(path) = &q.out {
        field(&mut f, "out", Value::Str(path.clone()));
    }
    if let Some(limit) = q.trace_limit {
        field(&mut f, "trace_limit", Value::Int(limit as i64));
    }
    if let Some((a, b)) = q.pair {
        field(
            &mut f,
            "pair",
            Value::Arr(vec![Value::Int(i64::from(a)), Value::Int(i64::from(b))]),
        );
    }
    if !q.deny.is_empty() {
        field(
            &mut f,
            "deny",
            Value::Arr(q.deny.iter().map(|c| Value::Str(c.clone())).collect()),
        );
    }
    if !q.allow.is_empty() {
        field(
            &mut f,
            "allow",
            Value::Arr(q.allow.iter().map(|c| Value::Str(c.clone())).collect()),
        );
    }
    if let Some(name) = &q.seeded {
        field(&mut f, "seeded", Value::Str(name.clone()));
    }
    Value::Obj(f)
}

fn expect_str(v: &Value, key: &str) -> Result<String, RpcError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| RpcError::bad_request(format!("`{key}` must be a string")))
}

fn expect_bool(v: &Value, key: &str) -> Result<bool, RpcError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(RpcError::bad_request(format!("`{key}` must be a boolean"))),
    }
}

fn expect_int(v: &Value, key: &str) -> Result<i64, RpcError> {
    v.as_int()
        .ok_or_else(|| RpcError::bad_request(format!("`{key}` must be an integer")))
}

fn expect_codes(v: &Value, key: &str) -> Result<Vec<String>, RpcError> {
    let items = v
        .as_arr()
        .ok_or_else(|| RpcError::bad_request(format!("`{key}` must be an array")))?;
    items.iter().map(|i| expect_str(i, key)).collect()
}

/// Decodes a query object. Missing fields take the [`Query::default`]
/// values; unknown fields are rejected so typos surface instead of being
/// silently ignored.
pub fn decode_query(v: &Value) -> Result<Query, RpcError> {
    let fields = match v {
        Value::Obj(fields) => fields,
        _ => return Err(RpcError::bad_request("`query` must be an object")),
    };
    let mut q = Query::default();
    for (key, value) in fields {
        match key.as_str() {
            "command" => q.command = expect_str(value, key)?,
            "file" => q.file = expect_str(value, key)?,
            "source" => q.source = Some(expect_str(value, key)?),
            "procs" => {
                q.procs = u32::try_from(expect_int(value, key)?)
                    .map_err(|_| RpcError::bad_request("`procs` out of range"))?;
            }
            "level" => {
                let label = expect_str(value, key)?;
                q.level = parse_level(&label)
                    .ok_or_else(|| RpcError::bad_request(format!("unknown level `{label}`")))?;
            }
            "delay" => {
                let label = expect_str(value, key)?;
                q.delay = parse_delay(&label).ok_or_else(|| {
                    RpcError::bad_request(format!("unknown delay choice `{label}`"))
                })?;
            }
            "machine" => q.machine = expect_str(value, key)?,
            "dump" => q.dump = expect_bool(value, key)?,
            "dot" => q.dot = expect_bool(value, key)?,
            "trace" => q.trace = expect_bool(value, key)?,
            "strict" => q.strict = expect_bool(value, key)?,
            "kernels" => q.kernels = expect_bool(value, key)?,
            "format" => {
                let label = expect_str(value, key)?;
                q.format = Format::parse(&label)
                    .ok_or_else(|| RpcError::bad_request(format!("unknown format `{label}`")))?;
            }
            "emit_report" => q.emit_report = Some(expect_str(value, key)?),
            "threads" => {
                q.threads = usize::try_from(expect_int(value, key)?)
                    .map_err(|_| RpcError::bad_request("`threads` out of range"))?;
            }
            "sim_shards" => {
                q.sim_shards = usize::try_from(expect_int(value, key)?)
                    .map_err(|_| RpcError::bad_request("`sim_shards` out of range"))?;
            }
            "sim_partition" => {
                let label = expect_str(value, key)?;
                q.sim_partition = ShardPartition::from_label(&label).ok_or_else(|| {
                    RpcError::bad_request(format!("unknown partition strategy `{label}`"))
                })?;
            }
            "out" => q.out = Some(expect_str(value, key)?),
            "trace_limit" => {
                q.trace_limit = Some(
                    usize::try_from(expect_int(value, key)?)
                        .map_err(|_| RpcError::bad_request("`trace_limit` out of range"))?,
                );
            }
            "pair" => {
                let items = value
                    .as_arr()
                    .ok_or_else(|| RpcError::bad_request("`pair` must be an array of two ids"))?;
                match items {
                    [a, b] => {
                        let id = |v: &Value| {
                            expect_int(v, "pair").and_then(|n| {
                                u32::try_from(n)
                                    .map_err(|_| RpcError::bad_request("`pair` id out of range"))
                            })
                        };
                        q.pair = Some((id(a)?, id(b)?));
                    }
                    _ => return Err(RpcError::bad_request("`pair` must be an array of two ids")),
                }
            }
            "deny" => q.deny = expect_codes(value, key)?,
            "allow" => q.allow = expect_codes(value, key)?,
            "seeded" => q.seeded = Some(expect_str(value, key)?),
            other => {
                return Err(RpcError::bad_request(format!(
                    "unknown query field `{other}`"
                )))
            }
        }
    }
    if q.command.is_empty() {
        return Err(RpcError::bad_request("`command` is required"));
    }
    Ok(q)
}

/// Encodes a request envelope (one line, no trailing newline).
pub fn encode_request(req: &Request) -> Value {
    let mut f = envelope(req.id);
    match &req.body {
        RequestBody::Ping => field(&mut f, "op", Value::Str("ping".to_string())),
        RequestBody::Stats => field(&mut f, "op", Value::Str("stats".to_string())),
        RequestBody::Metrics => field(&mut f, "op", Value::Str("metrics".to_string())),
        RequestBody::Shutdown => field(&mut f, "op", Value::Str("shutdown".to_string())),
        RequestBody::Query(q) => {
            field(&mut f, "op", Value::Str("query".to_string()));
            field(&mut f, "query", encode_query(q));
        }
    }
    Value::Obj(f)
}

/// Best-effort extraction of the correlation id from a request line, for
/// error responses to requests that failed to decode. Returns 0 when the
/// line is too broken to carry one.
pub fn request_id(line: &str) -> i64 {
    Value::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_int))
        .unwrap_or(0)
}

/// Decodes one request line.
///
/// # Errors
///
/// [`RpcError`] with code `bad-request` for malformed JSON or envelopes,
/// `unsupported` for a wrong schema or unknown op.
pub fn decode_request(line: &str) -> Result<Request, RpcError> {
    let v = Value::parse(line).map_err(|e| RpcError::bad_request(format!("invalid JSON: {e}")))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| RpcError::bad_request("missing `schema`"))?;
    if schema != RPC_SCHEMA {
        return Err(RpcError::unsupported(format!(
            "unsupported schema `{schema}` (this server speaks {RPC_SCHEMA})"
        )));
    }
    let id = v
        .get("id")
        .and_then(Value::as_int)
        .ok_or_else(|| RpcError::bad_request("missing integer `id`"))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| RpcError::bad_request("missing `op`"))?;
    let body = match op {
        "ping" => RequestBody::Ping,
        "stats" => RequestBody::Stats,
        "metrics" => RequestBody::Metrics,
        "shutdown" => RequestBody::Shutdown,
        "query" => {
            let q = v
                .get("query")
                .ok_or_else(|| RpcError::bad_request("`query` op needs a `query` object"))?;
            RequestBody::Query(decode_query(q)?)
        }
        other => return Err(RpcError::unsupported(format!("unknown op `{other}`"))),
    };
    Ok(Request { id, body })
}

fn cache_stats_json(stats: CacheStats) -> Value {
    Value::Obj(vec![
        ("hits".to_string(), Value::Int(stats.hits as i64)),
        ("misses".to_string(), Value::Int(stats.misses as i64)),
        ("evictions".to_string(), Value::Int(stats.evictions as i64)),
    ])
}

/// Encodes a successful `ping` response.
pub fn ping_response(id: i64) -> Value {
    let mut f = envelope(id);
    field(&mut f, "ok", Value::Bool(true));
    field(&mut f, "pong", Value::Bool(true));
    Value::Obj(f)
}

/// Service-level fields of a `stats` response, always present since
/// `syncopt.metrics.v1` (PR 10) regardless of whether telemetry is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Total requests handled (all ops, all connections).
    pub requests_total: u64,
    /// Daemon build version (`CARGO_PKG_VERSION`).
    pub version: String,
}

/// Encodes a successful `stats` response. `metrics` is the full
/// `syncopt.metrics.v1` document, present only when telemetry is on.
pub fn stats_response(
    id: i64,
    stats: CacheStats,
    artifacts: usize,
    capacity: usize,
    kinds: &Counters,
    service: &ServiceStats,
    metrics: Option<Value>,
) -> Value {
    let mut f = envelope(id);
    field(&mut f, "ok", Value::Bool(true));
    field(&mut f, "cache", cache_stats_json(stats));
    field(&mut f, "artifacts", Value::Int(artifacts as i64));
    field(&mut f, "capacity", Value::Int(capacity as i64));
    field(&mut f, "kinds", kinds.to_json());
    field(&mut f, "uptime_ms", Value::Int(service.uptime_ms as i64));
    field(
        &mut f,
        "requests_total",
        Value::Int(service.requests_total as i64),
    );
    field(&mut f, "version", Value::Str(service.version.clone()));
    if let Some(doc) = metrics {
        field(&mut f, "metrics", doc);
    }
    Value::Obj(f)
}

/// Encodes a successful `metrics` response: the Prometheus text
/// exposition is carried as one JSON string so the one-line framing
/// holds (the emitter escapes every `\n`).
pub fn metrics_response(id: i64, text: &str) -> Value {
    let mut f = envelope(id);
    field(&mut f, "ok", Value::Bool(true));
    field(&mut f, "metrics_text", Value::Str(text.to_string()));
    Value::Obj(f)
}

/// Encodes a successful `shutdown` acknowledgement.
pub fn shutdown_response(id: i64) -> Value {
    let mut f = envelope(id);
    field(&mut f, "ok", Value::Bool(true));
    field(&mut f, "shutdown", Value::Bool(true));
    Value::Obj(f)
}

/// Encodes a completed query: the command ran, and this is its result
/// (which may be a command *failure* — that is not a protocol error).
pub fn query_response(id: i64, out: &CmdOut, cache: CacheStats) -> Value {
    let mut f = envelope(id);
    field(&mut f, "ok", Value::Bool(true));
    field(&mut f, "stdout", Value::Str(out.stdout.clone()));
    match &out.failure {
        Some(msg) => field(&mut f, "failure", Value::Str(msg.clone())),
        None => field(&mut f, "failure", Value::Null),
    }
    if let Some(file) = &out.file {
        field(
            &mut f,
            "file",
            Value::Obj(vec![
                ("path".to_string(), Value::Str(file.path.clone())),
                ("content".to_string(), Value::Str(file.content.clone())),
                ("note".to_string(), Value::Str(file.note.clone())),
            ]),
        );
    }
    field(&mut f, "cache", cache_stats_json(cache));
    Value::Obj(f)
}

/// Encodes a protocol error.
pub fn error_response(id: i64, err: &RpcError) -> Value {
    let mut f = envelope(id);
    field(&mut f, "ok", Value::Bool(false));
    field(
        &mut f,
        "error",
        Value::Obj(vec![
            ("code".to_string(), Value::Str(err.code.to_string())),
            ("message".to_string(), Value::Str(err.message.clone())),
        ]),
    );
    Value::Obj(f)
}

/// A decoded response envelope, as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoed correlation id.
    pub id: i64,
    /// The payload.
    pub body: ReplyBody,
}

/// Client-side view of a response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// `ping` acknowledgement.
    Pong,
    /// `stats` payload (the raw object, for display).
    Stats(Value),
    /// `metrics` payload: Prometheus text exposition.
    Metrics(String),
    /// `shutdown` acknowledgement.
    Shutdown,
    /// A completed query with its per-request cache delta.
    Query(CmdOut, CacheStats),
    /// A protocol error.
    Error(RpcError),
}

fn decode_cache_stats(v: &Value) -> Result<CacheStats, RpcError> {
    let count = |key: &str| {
        v.get(key)
            .and_then(Value::as_int)
            .and_then(|n| u64::try_from(n).ok())
            .ok_or_else(|| RpcError::bad_request(format!("cache stats missing `{key}`")))
    };
    Ok(CacheStats {
        hits: count("hits")?,
        misses: count("misses")?,
        evictions: count("evictions")?,
    })
}

/// Decodes one response line.
///
/// # Errors
///
/// [`RpcError`] (code `bad-request`) if the line is not a well-formed
/// `syncopt.rpc.v1` response. A server-reported error decodes
/// successfully as [`ReplyBody::Error`].
pub fn decode_response(line: &str) -> Result<Reply, RpcError> {
    let v = Value::parse(line).map_err(|e| RpcError::bad_request(format!("invalid JSON: {e}")))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(RPC_SCHEMA) => {}
        Some(other) => {
            return Err(RpcError::bad_request(format!(
                "unsupported response schema `{other}`"
            )))
        }
        None => return Err(RpcError::bad_request("missing `schema`")),
    }
    let id = v
        .get("id")
        .and_then(Value::as_int)
        .ok_or_else(|| RpcError::bad_request("missing integer `id`"))?;
    let ok = match v.get("ok") {
        Some(Value::Bool(b)) => *b,
        _ => return Err(RpcError::bad_request("missing boolean `ok`")),
    };
    if !ok {
        let err = v
            .get("error")
            .ok_or_else(|| RpcError::bad_request("error response missing `error`"))?;
        let code = match err.get("code").and_then(Value::as_str) {
            Some("unsupported") => "unsupported",
            _ => "bad-request",
        };
        let message = err
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("unknown error")
            .to_string();
        return Ok(Reply {
            id,
            body: ReplyBody::Error(RpcError { code, message }),
        });
    }
    let body = if v.get("pong").is_some() {
        ReplyBody::Pong
    } else if v.get("shutdown").is_some() {
        ReplyBody::Shutdown
    } else if let Some(text) = v.get("metrics_text") {
        ReplyBody::Metrics(expect_str(text, "metrics_text")?)
    } else if let Some(stdout) = v.get("stdout") {
        let stdout = expect_str(stdout, "stdout")?;
        let failure = match v.get("failure") {
            None | Some(Value::Null) => None,
            Some(other) => Some(expect_str(other, "failure")?),
        };
        let file = match v.get("file") {
            None => None,
            Some(file) => Some(FileOutput {
                path: file
                    .get("path")
                    .map(|p| expect_str(p, "file.path"))
                    .transpose()?
                    .ok_or_else(|| RpcError::bad_request("file artifact missing `path`"))?,
                content: file
                    .get("content")
                    .map(|c| expect_str(c, "file.content"))
                    .transpose()?
                    .ok_or_else(|| RpcError::bad_request("file artifact missing `content`"))?,
                note: file
                    .get("note")
                    .map(|n| expect_str(n, "file.note"))
                    .transpose()?
                    .ok_or_else(|| RpcError::bad_request("file artifact missing `note`"))?,
            }),
        };
        let cache = v
            .get("cache")
            .map(decode_cache_stats)
            .transpose()?
            .unwrap_or_default();
        ReplyBody::Query(
            CmdOut {
                stdout,
                file,
                failure,
            },
            cache,
        )
    } else if let Some(stats) = v.get("cache") {
        let mut fields = vec![
            ("cache".to_string(), stats.clone()),
            (
                "artifacts".to_string(),
                v.get("artifacts").cloned().unwrap_or(Value::Int(0)),
            ),
            (
                "capacity".to_string(),
                v.get("capacity").cloned().unwrap_or(Value::Int(0)),
            ),
            (
                "kinds".to_string(),
                v.get("kinds").cloned().unwrap_or(Value::Obj(Vec::new())),
            ),
            (
                "uptime_ms".to_string(),
                v.get("uptime_ms").cloned().unwrap_or(Value::Int(0)),
            ),
            (
                "requests_total".to_string(),
                v.get("requests_total").cloned().unwrap_or(Value::Int(0)),
            ),
            (
                "version".to_string(),
                v.get("version")
                    .cloned()
                    .unwrap_or_else(|| Value::Str(String::new())),
            ),
        ];
        if let Some(doc) = v.get("metrics") {
            fields.push(("metrics".to_string(), doc.clone()));
        }
        ReplyBody::Stats(Value::Obj(fields))
    } else {
        return Err(RpcError::bad_request("unrecognized response payload"));
    };
    Ok(Reply { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        Query {
            command: "check".to_string(),
            file: "prog.ms".to_string(),
            source: Some("shared int X; fn main() { X = 1; }".to_string()),
            procs: 8,
            strict: true,
            format: Format::Json,
            pair: Some((3, 7)),
            deny: vec!["W001".to_string()],
            trace_limit: Some(512),
            sim_shards: 4,
            sim_partition: ShardPartition::Profiled,
            ..Query::default()
        }
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 42,
            body: RequestBody::Query(sample_query()),
        };
        let line = encode_request(&req).to_string();
        assert!(!line.contains('\n'), "framing requires one line");
        let back = decode_request(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn control_ops_round_trip() {
        for body in [
            RequestBody::Ping,
            RequestBody::Stats,
            RequestBody::Metrics,
            RequestBody::Shutdown,
        ] {
            let req = Request { id: 7, body };
            let back = decode_request(&encode_request(&req).to_string()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn query_response_round_trips_with_failure_and_file() {
        let out = CmdOut {
            stdout: "line one\nline two\n".to_string(),
            file: Some(FileOutput {
                path: "report.json".to_string(),
                content: "{}\n".to_string(),
                note: "written".to_string(),
            }),
            failure: Some("check failed: 2 error(s)".to_string()),
        };
        let cache = CacheStats {
            hits: 5,
            misses: 1,
            evictions: 0,
        };
        let line = query_response(9, &out, cache).to_string();
        assert!(!line.contains('\n'));
        let reply = decode_response(&line).unwrap();
        assert_eq!(reply.id, 9);
        assert_eq!(reply.body, ReplyBody::Query(out, cache));
    }

    #[test]
    fn metrics_response_round_trips_multiline_text() {
        let text = "# TYPE syncopt_rpc_requests_total counter\nsyncopt_rpc_requests_total 5\n";
        let line = metrics_response(4, text).to_string();
        assert!(!line.contains('\n'), "framing requires one line");
        let reply = decode_response(&line).unwrap();
        assert_eq!(reply.id, 4);
        assert_eq!(reply.body, ReplyBody::Metrics(text.to_string()));
    }

    #[test]
    fn stats_response_carries_service_fields() {
        let service = ServiceStats {
            uptime_ms: 1234,
            requests_total: 17,
            version: "0.1.0".to_string(),
        };
        let doc = Value::Obj(vec![(
            "schema".to_string(),
            Value::Str("syncopt.metrics.v1".to_string()),
        )]);
        let line = stats_response(
            2,
            CacheStats::default(),
            3,
            64,
            &Counters::new(),
            &service,
            Some(doc),
        )
        .to_string();
        let reply = decode_response(&line).unwrap();
        let ReplyBody::Stats(obj) = reply.body else {
            panic!("expected stats body");
        };
        assert_eq!(obj.get("uptime_ms").and_then(Value::as_int), Some(1234));
        assert_eq!(obj.get("requests_total").and_then(Value::as_int), Some(17));
        assert_eq!(obj.get("version").and_then(Value::as_str), Some("0.1.0"));
        assert_eq!(
            obj.get("metrics")
                .and_then(|m| m.get("schema"))
                .and_then(Value::as_str),
            Some("syncopt.metrics.v1")
        );
    }

    #[test]
    fn wrong_schema_is_unsupported() {
        let line = r#"{"schema":"syncopt.rpc.v999","id":1,"op":"ping"}"#;
        let err = decode_request(line).unwrap_err();
        assert_eq!(err.code, "unsupported");
    }

    #[test]
    fn unknown_query_field_is_rejected() {
        let line = r#"{"schema":"syncopt.rpc.v1","id":1,"op":"query","query":{"command":"check","sourcefile":"x"}}"#;
        let err = decode_request(line).unwrap_err();
        assert_eq!(err.code, "bad-request");
        assert!(err.message.contains("sourcefile"));
    }

    #[test]
    fn error_response_round_trips() {
        let err = RpcError::unsupported("unknown op `frobnicate`");
        let reply = decode_response(&error_response(3, &err).to_string()).unwrap();
        assert_eq!(reply.body, ReplyBody::Error(err));
    }
}
