//! The delay-set scaling benchmark (`syncoptc bench`, the `delay_scaling`
//! bench binary).
//!
//! Runs the full analysis pipeline over the synthetic scaling trajectory
//! ([`syncopt_kernels::scaling`]) and records, per configuration:
//!
//! * the deterministic analysis **work counters** (`cycle.*`, `sync.*`) —
//!   the signal the CI regression gate compares, because they are exact
//!   integers independent of machine load;
//! * a **wall-time bucket** — the analysis wall time rounded up to the
//!   next power of two of microseconds. Buckets are coarse on purpose:
//!   they show the trajectory's shape on any machine without making the
//!   committed JSON churn on noise (and they are excluded from the
//!   regression gate).
//!
//! The report serializes to the stable all-integer schema
//! [`BENCH_SCHEMA`] (`syncopt.bench_report.v1`); see docs/PERFORMANCE.md
//! for the field-by-field description and the gate semantics.

use syncopt_core::diag::json::Value;
use syncopt_core::{Counters, SyncOptions};
use syncopt_kernels::scaling::{self, ScalingParams};

use crate::SyncoptError;

/// The stable schema identifier embedded in every benchmark report.
pub const BENCH_SCHEMA: &str = "syncopt.bench_report.v1";

/// Counter keys the regression gate watches. All are "work performed"
/// measures: an increase beyond the tolerance means the analysis got
/// slower in a machine-independent way.
pub const GATED_COUNTERS: [&str; 5] = [
    "cycle.backpath_queries",
    "cycle.closure_word_ors",
    "sync.d1_backpath_queries",
    "sync.backpath_queries",
    "sync.closure_word_ors",
];

/// Regression tolerance: fail when `new > old * (1 + TOLERANCE_PCT/100)`.
pub const TOLERANCE_PCT: u64 = 20;

/// One analyzed trajectory point.
#[derive(Debug, Clone)]
pub struct BenchConfigResult {
    /// Stable config id (`stencil_u32_p16`) — the baseline join key.
    pub id: String,
    /// Program shape label (`stencil` / `flag`).
    pub idiom: &'static str,
    /// Unroll factor.
    pub unroll: u32,
    /// Processor count analyzed for.
    pub procs: u32,
    /// Access sites in the lowered program.
    pub accesses: usize,
    /// Analysis wall time, rounded up to the next power of two of
    /// microseconds (nondeterministic; excluded from the gate).
    pub wall_bucket_us: u64,
    /// The full deterministic counter set from [`syncopt_core::analyze`].
    pub counters: Counters,
}

impl BenchConfigResult {
    /// Candidate pairs per back-path query, times 100 (integer-only
    /// pruning evidence; 100 = every candidate queried).
    pub fn work_reduction_x100(&self) -> u64 {
        let candidates = self.counters.get("cycle.candidate_pairs");
        let queries = self.counters.get("cycle.backpath_queries").max(1);
        candidates * 100 / queries
    }
}

/// A full benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads the analysis ran with.
    pub threads: usize,
    /// Whether this was the two-point smoke subset.
    pub smoke: bool,
    /// Per-configuration results, in trajectory order.
    pub configs: Vec<BenchConfigResult>,
}

/// Runs the scaling trajectory (or the CI smoke subset) with `threads`
/// analysis workers.
///
/// # Errors
///
/// Propagates frontend/lowering errors from the generated programs —
/// which would be a bug in the generator, not in the input.
pub fn run_bench(smoke: bool, threads: usize) -> Result<BenchReport, SyncoptError> {
    let points = if smoke {
        scaling::smoke_trajectory()
    } else {
        scaling::trajectory()
    };
    let mut configs = Vec::with_capacity(points.len());
    for p in &points {
        configs.push(run_config(p, threads)?);
    }
    Ok(BenchReport {
        threads,
        smoke,
        configs,
    })
}

fn run_config(p: &ScalingParams, threads: usize) -> Result<BenchConfigResult, SyncoptError> {
    let kernel = scaling::generate(p);
    let program = syncopt_frontend::prepare_program(&kernel.source)?;
    let cfg = syncopt_ir::lower::lower_main(&program)?;
    let start = std::time::Instant::now();
    let analysis = syncopt_core::analyze_with(
        &cfg,
        &SyncOptions {
            procs: Some(p.procs),
            threads,
            ..SyncOptions::default()
        },
    );
    let wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    Ok(BenchConfigResult {
        id: p.id(),
        idiom: p.idiom.label(),
        unroll: p.unroll,
        procs: p.procs,
        accesses: cfg.accesses.len(),
        wall_bucket_us: wall_us.max(1).next_power_of_two(),
        counters: analysis.metrics,
    })
}

impl BenchReport {
    /// The report as a JSON object (schema [`BENCH_SCHEMA`]); all values
    /// are integers or strings.
    pub fn to_json(&self) -> Value {
        let configs = self
            .configs
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("id".to_string(), Value::Str(c.id.clone())),
                    ("idiom".to_string(), Value::Str(c.idiom.to_string())),
                    ("unroll".to_string(), Value::Int(i64::from(c.unroll))),
                    ("procs".to_string(), Value::Int(i64::from(c.procs))),
                    ("accesses".to_string(), Value::Int(c.accesses as i64)),
                    (
                        "wall_bucket_us".to_string(),
                        Value::Int(c.wall_bucket_us as i64),
                    ),
                    (
                        "work_reduction_x100".to_string(),
                        Value::Int(c.work_reduction_x100() as i64),
                    ),
                    ("counters".to_string(), c.counters.to_json()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(BENCH_SCHEMA.to_string())),
            ("suite".to_string(), Value::Str("delay_scaling".to_string())),
            ("threads".to_string(), Value::Int(self.threads as i64)),
            ("smoke".to_string(), Value::Bool(self.smoke)),
            ("configs".to_string(), Value::Arr(configs)),
        ])
    }

    /// A human-readable trajectory table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "delay-set scaling trajectory ({} configs, {} thread(s){})\n",
            self.configs.len(),
            self.threads.max(1),
            if self.smoke { ", smoke subset" } else { "" },
        ));
        out.push_str(&format!(
            "{:<18} {:>9} {:>11} {:>9} {:>10} {:>12} {:>9}\n",
            "config", "accesses", "candidates", "queries", "pruned", "reduction", "wall(us)"
        ));
        for c in &self.configs {
            let red = c.work_reduction_x100();
            out.push_str(&format!(
                "{:<18} {:>9} {:>11} {:>9} {:>10} {:>9}.{:02}x {:>8}≤\n",
                c.id,
                c.accesses,
                c.counters.get("cycle.candidate_pairs"),
                c.counters.get("cycle.backpath_queries"),
                c.counters.get("cycle.pruned_candidates"),
                red / 100,
                red % 100,
                c.wall_bucket_us,
            ));
        }
        out
    }

    /// Compares this run against a committed baseline report (parsed
    /// JSON), enforcing the >[`TOLERANCE_PCT`]% work-counter regression
    /// gate on every config id the two reports share. Configs present on
    /// only one side are skipped (the trajectory may legitimately grow).
    ///
    /// # Errors
    ///
    /// Returns a message naming every regressed `(config, counter)` pair,
    /// or a schema error if `baseline` is not a bench report.
    pub fn check_against(&self, baseline: &Value) -> Result<(), String> {
        let pairs: Vec<(&str, &Counters)> = self
            .configs
            .iter()
            .map(|c| (c.id.as_str(), &c.counters))
            .collect();
        gate_counters_against(&pairs, baseline, &GATED_COUNTERS)
    }
}

/// The counter-regression gate shared by every bench suite: joins the
/// current configs with a baseline report by config id and fails when any
/// gated counter grew by more than [`TOLERANCE_PCT`]%. Wall-clock buckets
/// never appear in `gated`, so host noise cannot trip the gate.
///
/// # Errors
///
/// Returns a message naming every regressed `(config, counter)` pair, a
/// schema error if `baseline` is not a [`BENCH_SCHEMA`] report, or an
/// error when the baseline shares no config ids with the current run.
pub fn gate_counters_against(
    current: &[(&str, &Counters)],
    baseline: &Value,
    gated: &[&str],
) -> Result<(), String> {
    if baseline.get("schema").and_then(Value::as_str) != Some(BENCH_SCHEMA) {
        return Err(format!("baseline is not a {BENCH_SCHEMA} report"));
    }
    let empty = Vec::new();
    let base_configs = match baseline.get("configs") {
        Some(Value::Arr(items)) => items,
        _ => &empty,
    };
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for (id, counters) in current {
        let Some(base) = base_configs
            .iter()
            .find(|b| b.get("id").and_then(Value::as_str) == Some(id))
        else {
            continue;
        };
        let Some(base_counters) = base.get("counters") else {
            continue;
        };
        compared += 1;
        for key in gated {
            let old = base_counters.get(key).and_then(Value::as_int).unwrap_or(0);
            let old = u64::try_from(old).unwrap_or(0);
            let new = counters.get(key);
            // new > old * 1.2, in integer math.
            if new * 100 > old * (100 + TOLERANCE_PCT) {
                failures.push(format!(
                    "{id}: {key} regressed {old} -> {new} (>{TOLERANCE_PCT}%)"
                ));
            }
        }
    }
    if compared == 0 {
        return Err("baseline shares no config ids with this run".to_string());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "work-counter regression against baseline:\n  {}",
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_report() -> BenchReport {
        run_bench(true, 1).expect("smoke bench must run")
    }

    #[test]
    fn smoke_run_produces_both_idioms() {
        let r = smoke_report();
        assert_eq!(r.configs.len(), 2);
        assert_eq!(r.configs[0].idiom, "stencil");
        assert_eq!(r.configs[1].idiom, "flag");
        for c in &r.configs {
            assert!(c.accesses > 0);
            assert!(c.counters.get("cycle.candidate_pairs") > 0);
            assert!(c.wall_bucket_us.is_power_of_two());
        }
    }

    #[test]
    fn json_is_schema_tagged_and_reparses() {
        let r = smoke_report();
        let j = r.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(BENCH_SCHEMA));
        let text = j.to_string();
        let back = Value::parse(&text).expect("bench JSON must reparse");
        assert_eq!(back, j);
    }

    #[test]
    fn counters_are_identical_across_thread_counts() {
        let serial = run_bench(true, 1).unwrap();
        for threads in 2..=4 {
            let threaded = run_bench(true, threads).unwrap();
            for (a, b) in serial.configs.iter().zip(threaded.configs.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.counters, b.counters, "threads={threads} id={}", a.id);
            }
        }
    }

    #[test]
    fn gate_accepts_self_and_rejects_regression() {
        let r = smoke_report();
        let baseline = r.to_json();
        r.check_against(&baseline).expect("self-compare passes");

        // Inflate the current counters: must trip the gate.
        let mut worse = r.clone();
        let bumped = worse.configs[0].counters.get("cycle.backpath_queries") * 2 + 10;
        worse.configs[0]
            .counters
            .set("cycle.backpath_queries", bumped);
        let err = worse.check_against(&baseline).unwrap_err();
        assert!(err.contains("cycle.backpath_queries"), "{err}");

        // Unrelated baselines are rejected loudly.
        let bogus = Value::parse(r#"{"schema":"other.v1"}"#).unwrap();
        assert!(r.check_against(&bogus).is_err());
    }

    #[test]
    fn render_table_shows_every_config() {
        let r = smoke_report();
        let t = r.render_table();
        for c in &r.configs {
            assert!(t.contains(&c.id), "{t}");
        }
    }
}
