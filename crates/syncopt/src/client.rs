//! Client side of the `syncopt.rpc.v1` protocol.
//!
//! [`DaemonClient`] wraps one Unix-socket connection to a running
//! `syncoptd` and exposes typed calls for the protocol operations.
//! `syncoptc --daemon` is a thin shell around this: it builds the same
//! [`Query`] it would execute directly, sends it
//! here instead, and prints the returned [`CmdOut`] — which is why the
//! two modes are byte-identical.

use crate::commands::{CmdOut, Query};
use crate::rpc::{
    decode_response, encode_request, Reply, ReplyBody, Request, RequestBody, RpcError,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use syncopt_core::cache::CacheStats;
use syncopt_core::diag::json::Value;

/// One connection to a running `syncoptd`.
pub struct DaemonClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: i64,
}

impl DaemonClient {
    /// Connects to the daemon socket at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure (most commonly: no daemon is
    /// running there).
    pub fn connect(path: &Path) -> std::io::Result<DaemonClient> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(DaemonClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn call(&mut self, body: RequestBody) -> Result<Reply, String> {
        let id = self.next_id;
        self.next_id += 1;
        let request = encode_request(&Request { id, body });
        writeln!(self.writer, "{request}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        let reply = decode_response(line.trim_end()).map_err(|RpcError { code, message }| {
            format!("malformed response ({code}): {message}")
        })?;
        if reply.id != id {
            return Err(format!(
                "response id {} does not match request id {id}",
                reply.id
            ));
        }
        if let ReplyBody::Error(RpcError { code, message }) = &reply.body {
            return Err(format!("daemon rejected request ({code}): {message}"));
        }
        Ok(reply)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, as a displayable message.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.call(RequestBody::Ping)?.body {
            ReplyBody::Pong => Ok(()),
            other => Err(format!("unexpected reply to ping: {other:?}")),
        }
    }

    /// Fetches the server's cumulative cache statistics.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, as a displayable message.
    pub fn stats(&mut self) -> Result<Value, String> {
        match self.call(RequestBody::Stats)?.body {
            ReplyBody::Stats(v) => Ok(v),
            other => Err(format!("unexpected reply to stats: {other:?}")),
        }
    }

    /// Fetches the service metrics in Prometheus text exposition format.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, as a displayable message — including the
    /// daemon rejecting the op because it runs with `--no-telemetry`.
    pub fn metrics(&mut self) -> Result<String, String> {
        match self.call(RequestBody::Metrics)?.body {
            ReplyBody::Metrics(text) => Ok(text),
            other => Err(format!("unexpected reply to metrics: {other:?}")),
        }
    }

    /// Runs one query on the daemon, returning its result and the
    /// per-request cache delta.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, as a displayable message. A *command*
    /// failure is not an error here — it comes back inside [`CmdOut`].
    pub fn query(&mut self, q: &Query) -> Result<(CmdOut, CacheStats), String> {
        match self.call(RequestBody::Query(q.clone()))?.body {
            ReplyBody::Query(out, cache) => Ok((out, cache)),
            other => Err(format!("unexpected reply to query: {other:?}")),
        }
    }

    /// Asks the daemon to exit.
    ///
    /// # Errors
    ///
    /// I/O or protocol failure, as a displayable message.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.call(RequestBody::Shutdown)?.body {
            ReplyBody::Shutdown => Ok(()),
            other => Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }
}
