//! Service-level telemetry for `syncoptd`: request ids, per-request
//! spans, the concurrent metrics registry, the structured request log,
//! and the `daemon-trace` exporter.
//!
//! Every request the daemon serves gets a **monotonic request id** and a
//! three-phase span measured with one clock:
//!
//! ```text
//! decode (parse the envelope) → execute (cache lookup + session work,
//! under the session lock) → encode (serialize the response)
//! ```
//!
//! The phases tile the request exactly — `total_us` is *defined* as
//! their sum, so span accounting holds by construction and is verified
//! end to end by [`verify_reqlog_accounting`]. Each finished request is
//! recorded into the [`MetricsRegistry`]:
//!
//! * `rpc.requests_total{op="..."}` / `rpc.request_latency_us{op="..."}`
//!   — per-operation counts and fixed-bucket latency histograms. The
//!   `op` label is the RPC op for control requests (`ping`, `stats`,
//!   `metrics`, `shutdown`) and the query *command* for queries
//!   (`check`, `profile`, ...).
//! * `rpc.errors_total` — protocol errors (`ok: false` responses);
//!   `rpc.failures_total` — queries that ran but failed (exit-1 results).
//! * `rpc.bytes_in` / `rpc.bytes_out` — wire traffic including framing
//!   newlines.
//! * `rpc.cache_hits_total` / `rpc.cache_misses_total` — the summed
//!   per-request cache deltas (the live hit ratio of the artifact
//!   cache).
//! * `rpc.slow_requests_total` — requests over the slow threshold.
//! * `rpc.in_flight` (gauge), `rpc.connections_open` (gauge),
//!   `rpc.connections_opened` / `rpc.connections_closed` — request and
//!   connection lifecycle.
//!
//! With `--log FILE` the daemon also appends one JSON line per request
//! (schema [`REQLOG_SCHEMA`], first line is a header), which
//! `syncoptc daemon-trace` converts into a `syncopt.trace.v1` Chrome
//! Trace Event file: one track per connection, one slice per request,
//! nested phase slices — a serving timeline that opens in Perfetto.
//!
//! Telemetry is optional: a daemon started with `--no-telemetry` carries
//! no registry, takes no timestamps, and allocates nothing on the
//! request path — responses are byte-identical either way.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use syncopt_core::cache::CacheStats;
use syncopt_core::diag::json::Value;
use syncopt_core::metrics::{labeled, Counter, Gauge, MetricsRegistry};

/// Schema identifier of the `stats` metrics document.
pub const METRICS_SCHEMA: &str = "syncopt.metrics.v1";
/// Schema identifier of the structured request log.
pub const REQLOG_SCHEMA: &str = "syncopt.reqlog.v1";
/// The daemon build version reported by `stats`.
pub const SERVICE_VERSION: &str = env!("CARGO_PKG_VERSION");
/// Default slow-request threshold (microseconds) when `--slow-ms` is not
/// given: 500 ms.
pub const DEFAULT_SLOW_US: u64 = 500_000;

/// Base names of every metric the daemon emits. The glossary drift test
/// pins this list against `docs/OBSERVABILITY.md`, so adding a metric
/// here (or emitting an undeclared one) without documenting it fails CI.
pub const SERVICE_METRIC_NAMES: &[&str] = &[
    "rpc.requests_total",
    "rpc.request_latency_us",
    "rpc.errors_total",
    "rpc.failures_total",
    "rpc.bytes_in",
    "rpc.bytes_out",
    "rpc.cache_hits_total",
    "rpc.cache_misses_total",
    "rpc.slow_requests_total",
    "rpc.in_flight",
    "rpc.connections_open",
    "rpc.connections_opened",
    "rpc.connections_closed",
];

/// Telemetry configuration, as parsed from the `syncoptd` command line.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Append one JSON line per request to this file.
    pub log: Option<std::path::PathBuf>,
    /// Slow-request threshold in microseconds (`None` =
    /// [`DEFAULT_SLOW_US`]).
    pub slow_us: Option<u64>,
    /// Emit deterministically scrubbed metrics documents (timing fields
    /// zeroed, counts exact) — for golden tests and byte-stable smoke
    /// checks.
    pub scrub: bool,
}

/// The state of one in-flight request: its id and phase clocks.
///
/// Phases are measured against `begun` with a single monotonic clock;
/// each `*_done` call closes one phase. The span is finished by
/// [`ServiceTelemetry::finish_request`], which records metrics and the
/// log line.
pub struct RequestSpan {
    /// The monotonic request id.
    pub id: u64,
    conn: u64,
    start_us: u64,
    begun: Instant,
    decode_us: u64,
    execute_us: u64,
    bytes_in: u64,
}

impl RequestSpan {
    /// Closes the decode phase.
    pub fn decode_done(&mut self) {
        self.decode_us = self.elapsed_since_phase_start();
    }

    /// Closes the execute phase.
    pub fn execute_done(&mut self) {
        self.execute_us = self.elapsed_since_phase_start();
    }

    fn elapsed_since_phase_start(&self) -> u64 {
        let total = u64::try_from(self.begun.elapsed().as_micros()).unwrap_or(u64::MAX);
        total.saturating_sub(self.decode_us + self.execute_us)
    }
}

/// What one finished request looked like, for metrics and the log.
pub struct RequestOutcome<'a> {
    /// Operation label (`ping` / `stats` / `metrics` / `shutdown`, or
    /// the query command).
    pub op: &'a str,
    /// Whether the response was `ok: true` (protocol level).
    pub ok: bool,
    /// Whether a query ran but reported a command failure.
    pub failed: bool,
    /// Response bytes including the framing newline.
    pub bytes_out: u64,
    /// Per-request artifact-cache delta (zero for control ops).
    pub cache: CacheStats,
}

/// Shared telemetry state of one daemon process.
pub struct ServiceTelemetry {
    registry: MetricsRegistry,
    started: Instant,
    next_request: AtomicU64,
    next_conn: AtomicU64,
    requests_total: Arc<Counter>,
    errors_total: Arc<Counter>,
    failures_total: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    slow_total: Arc<Counter>,
    in_flight: Arc<Gauge>,
    connections_open: Arc<Gauge>,
    connections_opened: Arc<Counter>,
    connections_closed: Arc<Counter>,
    log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    slow_us: u64,
    scrub: bool,
}

impl ServiceTelemetry {
    /// Creates the telemetry state, opening (and truncating) the request
    /// log if configured and writing its header line.
    ///
    /// # Errors
    ///
    /// Propagates request-log creation failures.
    pub fn new(config: &TelemetryConfig) -> std::io::Result<ServiceTelemetry> {
        let registry = MetricsRegistry::new();
        let log = match &config.log {
            Some(path) => {
                let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
                writeln!(
                    w,
                    r#"{{"schema":"{REQLOG_SCHEMA}","version":"{SERVICE_VERSION}"}}"#
                )?;
                w.flush()?;
                Some(Mutex::new(w))
            }
            None => None,
        };
        Ok(ServiceTelemetry {
            requests_total: registry.counter("rpc.requests_total"),
            errors_total: registry.counter("rpc.errors_total"),
            failures_total: registry.counter("rpc.failures_total"),
            bytes_in: registry.counter("rpc.bytes_in"),
            bytes_out: registry.counter("rpc.bytes_out"),
            cache_hits: registry.counter("rpc.cache_hits_total"),
            cache_misses: registry.counter("rpc.cache_misses_total"),
            slow_total: registry.counter("rpc.slow_requests_total"),
            in_flight: registry.gauge("rpc.in_flight"),
            connections_open: registry.gauge("rpc.connections_open"),
            connections_opened: registry.counter("rpc.connections_opened"),
            connections_closed: registry.counter("rpc.connections_closed"),
            registry,
            started: Instant::now(),
            next_request: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            log,
            slow_us: config.slow_us.unwrap_or(DEFAULT_SLOW_US),
            scrub: config.scrub,
        })
    }

    /// Microseconds since the daemon started.
    pub fn uptime_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Milliseconds since the daemon started, honoring scrub mode (the
    /// `uptime_ms` value reported by the `stats` op).
    pub fn uptime_ms(&self) -> u64 {
        if self.scrub {
            0
        } else {
            self.uptime_us() / 1000
        }
    }

    /// Total requests observed so far.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.get()
    }

    /// Registers a new connection and returns its id.
    pub fn open_connection(&self) -> u64 {
        self.connections_opened.inc();
        self.connections_open.inc();
        self.next_conn.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a connection teardown.
    pub fn close_connection(&self) {
        self.connections_closed.inc();
        self.connections_open.dec();
    }

    /// Starts a request span: allocates the monotonic id, stamps the
    /// arrival time, and raises the in-flight gauge.
    pub fn begin_request(&self, conn: u64, bytes_in: u64) -> RequestSpan {
        self.in_flight.inc();
        RequestSpan {
            id: self.next_request.fetch_add(1, Ordering::Relaxed),
            conn,
            start_us: self.uptime_us(),
            begun: Instant::now(),
            decode_us: 0,
            execute_us: 0,
            bytes_in,
        }
    }

    /// Finishes a request span: closes the encode phase, lowers the
    /// in-flight gauge, records every metric, and appends the log line.
    pub fn finish_request(&self, span: RequestSpan, outcome: &RequestOutcome<'_>) {
        let encode_us = span.elapsed_since_phase_start();
        let total_us = span.decode_us + span.execute_us + encode_us;
        self.in_flight.dec();
        self.requests_total.inc();
        self.registry
            .counter(&labeled("rpc.requests_total", "op", outcome.op))
            .inc();
        self.registry
            .histogram(&labeled("rpc.request_latency_us", "op", outcome.op))
            .observe(total_us);
        if !outcome.ok {
            self.errors_total.inc();
        }
        if outcome.failed {
            self.failures_total.inc();
        }
        self.bytes_in.add(span.bytes_in);
        self.bytes_out.add(outcome.bytes_out);
        self.cache_hits.add(outcome.cache.hits);
        self.cache_misses.add(outcome.cache.misses);
        let slow = total_us >= self.slow_us;
        if slow {
            self.slow_total.inc();
        }
        if let Some(log) = &self.log {
            let mut w = log.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(
                w,
                r#"{{"id":{},"conn":{},"op":"{}","start_us":{},"decode_us":{},"execute_us":{},"encode_us":{},"total_us":{},"bytes_in":{},"bytes_out":{},"cache_hits":{},"cache_misses":{},"ok":{},"failed":{},"slow":{}}}"#,
                span.id,
                span.conn,
                outcome.op,
                span.start_us,
                span.decode_us,
                span.execute_us,
                encode_us,
                total_us,
                span.bytes_in,
                outcome.bytes_out,
                outcome.cache.hits,
                outcome.cache.misses,
                outcome.ok,
                outcome.failed,
                slow
            );
            let _ = w.flush();
        }
    }

    /// The `syncopt.metrics.v1` document: uptime, totals, the daemon
    /// version, and the full registry snapshot (per-op counters and
    /// latency histograms). In scrub mode every timing-derived value is
    /// zeroed while counts stay exact.
    pub fn metrics_json(&self) -> Value {
        let scrub = self.scrub;
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(METRICS_SCHEMA.to_string())),
            (
                "version".to_string(),
                Value::Str(SERVICE_VERSION.to_string()),
            ),
            (
                "uptime_ms".to_string(),
                Value::Int(if scrub {
                    0
                } else {
                    (self.uptime_us() / 1000) as i64
                }),
            ),
            (
                "requests_total".to_string(),
                Value::Int(self.requests_total() as i64),
            ),
            ("metrics".to_string(), self.registry.to_json(scrub)),
        ])
    }

    /// The registry in Prometheus text exposition format, prefixed
    /// `syncopt_`, plus the uptime as `syncopt_uptime_seconds`.
    pub fn prometheus_text(&self) -> String {
        let uptime = if self.scrub {
            0
        } else {
            self.uptime_us() / 1_000_000
        };
        format!(
            "# TYPE syncopt_uptime_seconds gauge\nsyncopt_uptime_seconds {uptime}\n{}",
            self.registry.prometheus_text("syncopt")
        )
    }
}

// ---- request-log parsing and the daemon-trace exporter ------------------

/// One parsed request-log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqLogEntry {
    /// Monotonic request id.
    pub id: u64,
    /// Connection the request arrived on.
    pub conn: u64,
    /// Operation label.
    pub op: String,
    /// Arrival time, microseconds since daemon start.
    pub start_us: u64,
    /// Envelope-decode phase duration.
    pub decode_us: u64,
    /// Execute phase duration (cache lookup + session work).
    pub execute_us: u64,
    /// Response-encode phase duration.
    pub encode_us: u64,
    /// Recorded wall time of the whole request.
    pub total_us: u64,
    /// Request bytes (with framing newline).
    pub bytes_in: u64,
    /// Response bytes (with framing newline).
    pub bytes_out: u64,
    /// Per-request cache delta: artifacts served from cache.
    pub cache_hits: u64,
    /// Per-request cache delta: artifacts built.
    pub cache_misses: u64,
    /// Protocol-level success.
    pub ok: bool,
    /// Command-level failure (query ran, exit code 1).
    pub failed: bool,
    /// Over the slow threshold.
    pub slow: bool,
}

/// Parses a request log: validates the header line's schema and decodes
/// every entry.
///
/// # Errors
///
/// A displayable message naming the offending line.
pub fn parse_reqlog(text: &str) -> Result<Vec<ReqLogEntry>, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| "request log is empty".to_string())?;
    let header = Value::parse(header).map_err(|e| format!("log header is not JSON: {e}"))?;
    match header.get("schema").and_then(Value::as_str) {
        Some(REQLOG_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported request-log schema `{other}`")),
        None => return Err("request log has no schema header line".to_string()),
    }
    let mut entries = Vec::new();
    for (i, line) in lines {
        let v = Value::parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        let int = |key: &str| {
            v.get(key)
                .and_then(Value::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| format!("line {}: missing `{key}`", i + 1))
        };
        let boolean = |key: &str| match v.get(key) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(format!("line {}: missing boolean `{key}`", i + 1)),
        };
        entries.push(ReqLogEntry {
            id: int("id")?,
            conn: int("conn")?,
            op: v
                .get("op")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing `op`", i + 1))?
                .to_string(),
            start_us: int("start_us")?,
            decode_us: int("decode_us")?,
            execute_us: int("execute_us")?,
            encode_us: int("encode_us")?,
            total_us: int("total_us")?,
            bytes_in: int("bytes_in")?,
            bytes_out: int("bytes_out")?,
            cache_hits: int("cache_hits")?,
            cache_misses: int("cache_misses")?,
            ok: boolean("ok")?,
            failed: boolean("failed")?,
            slow: boolean("slow")?,
        });
    }
    Ok(entries)
}

/// The serving-timeline analogue of
/// [`verify_span_accounting`](crate::verify_span_accounting): every
/// request's phase spans must sum exactly to its recorded wall time,
/// request ids must be unique across the log, and monotonic **per
/// connection** (log lines are appended in completion order, so ids from
/// different connections interleave — but one connection serves its
/// requests strictly in order).
///
/// # Errors
///
/// A displayable message naming the first violating request.
pub fn verify_reqlog_accounting(entries: &[ReqLogEntry]) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut last_per_conn: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for e in entries {
        let parts = e.decode_us + e.execute_us + e.encode_us;
        if parts != e.total_us {
            return Err(format!(
                "request #{}: phases sum to {parts}us but recorded wall time is {}us",
                e.id, e.total_us
            ));
        }
        if !seen.insert(e.id) {
            return Err(format!("request id #{} appears twice", e.id));
        }
        if let Some(prev) = last_per_conn.insert(e.conn, e.id) {
            if e.id <= prev {
                return Err(format!(
                    "connection {}: request ids are not monotonic: #{} follows #{prev}",
                    e.conn, e.id
                ));
            }
        }
    }
    Ok(())
}

/// Converts a parsed request log into Chrome Trace Event Format
/// (`syncopt.trace.v1`, the same schema as `syncoptc trace`): one thread
/// track per connection, one `ph:"X"` slice per request, and nested
/// `decode` / `execute` / `encode` phase slices that tile the request
/// exactly. Timestamps are microseconds since daemon start, so Perfetto
/// renders real service time.
pub fn daemon_chrome_trace(entries: &[ReqLogEntry]) -> Value {
    let obj = |fields: Vec<(&str, Value)>| {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let s = |text: &str| Value::Str(text.to_string());
    let mut events = Vec::new();
    let mut conns: Vec<u64> = entries.iter().map(|e| e.conn).collect();
    conns.sort_unstable();
    conns.dedup();
    for &conn in &conns {
        events.push(obj(vec![
            ("ph", s("M")),
            ("pid", Value::Int(0)),
            ("tid", Value::Int(conn as i64)),
            ("name", s("thread_name")),
            (
                "args",
                obj(vec![("name", Value::Str(format!("conn {conn}")))]),
            ),
        ]));
    }
    for e in entries {
        events.push(obj(vec![
            ("ph", s("X")),
            ("pid", Value::Int(0)),
            ("tid", Value::Int(e.conn as i64)),
            ("ts", Value::Int(e.start_us as i64)),
            ("dur", Value::Int(e.total_us as i64)),
            ("name", Value::Str(format!("#{} {}", e.id, e.op))),
            ("cat", s("request")),
            (
                "args",
                obj(vec![
                    ("bytes_in", Value::Int(e.bytes_in as i64)),
                    ("bytes_out", Value::Int(e.bytes_out as i64)),
                    ("cache_hits", Value::Int(e.cache_hits as i64)),
                    ("cache_misses", Value::Int(e.cache_misses as i64)),
                    ("ok", Value::Bool(e.ok)),
                    ("failed", Value::Bool(e.failed)),
                    ("slow", Value::Bool(e.slow)),
                ]),
            ),
        ]));
        let phases = [
            ("decode", e.start_us, e.decode_us),
            ("execute", e.start_us + e.decode_us, e.execute_us),
            (
                "encode",
                e.start_us + e.decode_us + e.execute_us,
                e.encode_us,
            ),
        ];
        for (name, ts, dur) in phases {
            events.push(obj(vec![
                ("ph", s("X")),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(e.conn as i64)),
                ("ts", Value::Int(ts as i64)),
                ("dur", Value::Int(dur as i64)),
                ("name", s(name)),
                ("cat", s("phase")),
            ]));
        }
    }
    let wall_us = entries
        .iter()
        .map(|e| e.start_us + e.total_us)
        .max()
        .unwrap_or(0)
        .saturating_sub(entries.iter().map(|e| e.start_us).min().unwrap_or(0));
    Value::Obj(vec![
        (
            "schema".to_string(),
            Value::Str(crate::TRACE_SCHEMA.to_string()),
        ),
        ("source".to_string(), Value::Str("daemon-trace".to_string())),
        ("requests".to_string(), Value::Int(entries.len() as i64)),
        ("connections".to_string(), Value::Int(conns.len() as i64)),
        ("wall_us".to_string(), Value::Int(wall_us as i64)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Arr(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> String {
        let mut log = format!(r#"{{"schema":"{REQLOG_SCHEMA}","version":"0.1.0"}}"#);
        log.push('\n');
        for (id, conn, op, start, d, x, e) in [
            (1u64, 1u64, "check", 100u64, 3u64, 40u64, 2u64),
            (2, 2, "ping", 150, 1, 0, 1),
            (3, 1, "profile", 200, 2, 900, 3),
        ] {
            log.push_str(&format!(
                r#"{{"id":{id},"conn":{conn},"op":"{op}","start_us":{start},"decode_us":{d},"execute_us":{x},"encode_us":{e},"total_us":{},"bytes_in":10,"bytes_out":20,"cache_hits":1,"cache_misses":2,"ok":true,"failed":false,"slow":false}}"#,
                d + x + e
            ));
            log.push('\n');
        }
        log
    }

    #[test]
    fn reqlog_round_trips_and_accounts() {
        let entries = parse_reqlog(&sample_log()).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].op, "check");
        assert_eq!(entries[2].total_us, 905);
        verify_reqlog_accounting(&entries).unwrap();
    }

    #[test]
    fn accounting_rejects_phase_mismatch() {
        let mut entries = parse_reqlog(&sample_log()).unwrap();
        entries[1].encode_us += 7;
        let err = verify_reqlog_accounting(&entries).unwrap_err();
        assert!(err.contains("request #2"), "{err}");
    }

    #[test]
    fn accounting_rejects_duplicate_ids() {
        let mut entries = parse_reqlog(&sample_log()).unwrap();
        entries[2].id = 1;
        let err = verify_reqlog_accounting(&entries).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn accounting_rejects_non_monotonic_ids_within_a_connection() {
        let mut entries = parse_reqlog(&sample_log()).unwrap();
        // Requests #1 and #3 share connection 1; reversing their order
        // in the log is impossible for a serial connection.
        entries[2].id = 1;
        entries[0].id = 3;
        let err = verify_reqlog_accounting(&entries).unwrap_err();
        assert!(err.contains("monotonic"), "{err}");
    }

    #[test]
    fn reqlog_requires_schema_header() {
        let err = parse_reqlog("{\"id\":1}\n").unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn daemon_trace_tiles_requests_with_phases() {
        let entries = parse_reqlog(&sample_log()).unwrap();
        let trace = daemon_chrome_trace(&entries);
        assert_eq!(
            trace.get("schema").and_then(Value::as_str),
            Some(crate::TRACE_SCHEMA)
        );
        assert_eq!(trace.get("requests").and_then(Value::as_int), Some(3));
        assert_eq!(trace.get("connections").and_then(Value::as_int), Some(2));
        let events = trace.get("traceEvents").and_then(Value::as_arr).unwrap();
        // 2 thread-name metas + 3 requests × (1 request slice + 3 phases).
        assert_eq!(events.len(), 2 + 3 * 4);
        // Phase slices of request #3 tile [200, 1105) exactly.
        let slices: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(Value::as_str) == Some("phase")
                    && e.get("ts").and_then(Value::as_int).unwrap_or(0) >= 200
            })
            .collect();
        let dur_sum: i64 = slices
            .iter()
            .map(|e| e.get("dur").and_then(Value::as_int).unwrap())
            .sum();
        assert_eq!(dur_sum, 905);
    }

    #[test]
    fn telemetry_records_requests_and_connections() {
        let t = ServiceTelemetry::new(&TelemetryConfig::default()).unwrap();
        let conn = t.open_connection();
        let mut span = t.begin_request(conn, 42);
        span.decode_done();
        span.execute_done();
        t.finish_request(
            span,
            &RequestOutcome {
                op: "check",
                ok: true,
                failed: false,
                bytes_out: 100,
                cache: CacheStats {
                    hits: 3,
                    misses: 2,
                    evictions: 0,
                },
            },
        );
        t.close_connection();
        assert_eq!(t.requests_total(), 1);
        let doc = t.metrics_json();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(doc.get("requests_total").and_then(Value::as_int), Some(1));
        let counters = doc.get("metrics").and_then(|m| m.get("counters")).unwrap();
        assert_eq!(
            counters
                .get("rpc.requests_total{op=\"check\"}")
                .and_then(Value::as_int),
            Some(1)
        );
        assert_eq!(
            counters.get("rpc.bytes_in").and_then(Value::as_int),
            Some(42)
        );
        assert_eq!(
            counters.get("rpc.cache_hits_total").and_then(Value::as_int),
            Some(3)
        );
        let hist = doc
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("rpc.request_latency_us{op=\"check\"}"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_int), Some(1));
        let text = t.prometheus_text();
        assert!(text.contains("syncopt_uptime_seconds"));
        assert!(text.contains("syncopt_rpc_requests_total{op=\"check\"} 1"));
    }
}
