//! `syncoptd` — a long-running analysis service over a Unix socket.
//!
//! The daemon owns one [`AnalysisSession`] and serves `syncopt.rpc.v1`
//! requests (see [`crate::rpc`]) from any number of concurrent clients:
//! each accepted connection gets its own thread, reads newline-delimited
//! requests, and writes one response line per request, in order. All
//! queries share the session's content-addressed artifact cache, so a
//! client re-checking a program another client already analyzed is served
//! from cache — the per-request `cache` delta in each response shows
//! exactly how much work was reused.
//!
//! The daemon never touches the client's filesystem: file-producing
//! queries (`run --emit-report`, `trace --out`) return the artifact in
//! the response and the client writes it locally.

use crate::commands::execute;
use crate::rpc::{
    decode_request, error_response, ping_response, query_response, shutdown_response,
    stats_response, Request, RequestBody, RpcError,
};
use crate::session::AnalysisSession;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The default socket path: `syncoptd.sock` in the system temp directory.
pub fn default_socket_path() -> PathBuf {
    std::env::temp_dir().join("syncoptd.sock")
}

struct State {
    session: Mutex<AnalysisSession>,
    shutdown: AtomicBool,
    socket_path: PathBuf,
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: UnixListener,
    state: Arc<State>,
}

impl Daemon {
    /// Binds the service socket at `path` with a fresh session.
    ///
    /// A leftover socket file from a dead daemon is detected (nothing
    /// accepts connections on it) and replaced; a *live* daemon on the
    /// same path is reported as an error.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures, and refuses the path if
    /// another daemon is already serving it.
    pub fn bind(path: &Path) -> std::io::Result<Daemon> {
        Daemon::bind_with_session(path, AnalysisSession::new())
    }

    /// [`bind`](Daemon::bind) with a caller-configured session (e.g. a
    /// custom cache capacity).
    ///
    /// # Errors
    ///
    /// See [`bind`](Daemon::bind).
    pub fn bind_with_session(path: &Path, session: AnalysisSession) -> std::io::Result<Daemon> {
        let listener = match UnixListener::bind(path) {
            Ok(listener) => listener,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("a daemon is already serving {}", path.display()),
                    ));
                }
                // Stale socket file from an unclean exit: reclaim it.
                std::fs::remove_file(path)?;
                UnixListener::bind(path)?
            }
            Err(e) => return Err(e),
        };
        Ok(Daemon {
            listener,
            state: Arc::new(State {
                session: Mutex::new(session),
                shutdown: AtomicBool::new(false),
                socket_path: path.to_path_buf(),
            }),
        })
    }

    /// The path the daemon is serving on.
    pub fn socket_path(&self) -> &Path {
        &self.state.socket_path
    }

    /// Serves connections until a client sends `shutdown`. Removes the
    /// socket file on the way out.
    ///
    /// # Errors
    ///
    /// Propagates `accept` failures; per-connection I/O errors only end
    /// that connection.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || serve_connection(stream, &state));
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&self.state.socket_path);
                    return Err(e);
                }
            }
        }
        let _ = std::fs::remove_file(&self.state.socket_path);
        Ok(())
    }
}

/// Reads request lines from one client until EOF or shutdown, answering
/// each in order.
fn serve_connection(stream: UnixStream, state: &State) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(&line, state);
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run` can observe the flag.
            let _ = UnixStream::connect(&state.socket_path);
            return;
        }
    }
}

/// Answers one request line. Returns the response document and whether
/// the server should shut down after sending it.
fn handle_line(line: &str, state: &State) -> (syncopt_core::diag::json::Value, bool) {
    let req = match decode_request(line) {
        Ok(req) => req,
        // Echo the id when the envelope carried one; a request too broken
        // to carry an id gets id 0.
        Err(e) => return (error_response(crate::rpc::request_id(line), &e), false),
    };
    let Request { id, body } = req;
    match body {
        RequestBody::Ping => (ping_response(id), false),
        RequestBody::Stats => {
            let session = state.session.lock().unwrap_or_else(|e| e.into_inner());
            (
                stats_response(
                    id,
                    session.cache_stats(),
                    session.cached_artifacts(),
                    session.cache_capacity(),
                    session.kind_counters(),
                ),
                false,
            )
        }
        RequestBody::Shutdown => (shutdown_response(id), true),
        RequestBody::Query(q) => {
            if q.command == "bench" {
                let e = RpcError::unsupported(
                    "`bench` measures this machine and does not route through the daemon",
                );
                return (error_response(id, &e), false);
            }
            // One session serves all clients; the lock makes each query
            // atomic with respect to the cache, and per-request stats are
            // deltas over the executed query only.
            let mut session = state.session.lock().unwrap_or_else(|e| e.into_inner());
            let before = session.cache_stats();
            let out = execute(&mut session, &q);
            let delta = session.cache_stats().since(before);
            (query_response(id, &out, delta), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DaemonClient;
    use crate::commands::{CmdOut, Format, Query};

    fn test_socket(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("syncoptd-test-{}-{name}.sock", std::process::id()))
    }

    fn spawn(name: &str) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
        let path = test_socket(name);
        let _ = std::fs::remove_file(&path);
        let daemon = Daemon::bind(&path).expect("bind");
        let handle = std::thread::spawn(move || daemon.run());
        (path, handle)
    }

    fn check_query() -> Query {
        Query {
            command: "check".to_string(),
            file: "unit.ms".to_string(),
            source: Some("shared int A[8]; fn main() { A[MYPROC] = 1; barrier; }".to_string()),
            format: Format::Json,
            ..Query::default()
        }
    }

    #[test]
    fn ping_query_stats_shutdown() {
        let (path, handle) = spawn("basic");
        let mut client = DaemonClient::connect(&path).expect("connect");
        client.ping().expect("ping");

        let (out, cache) = client.query(&check_query()).expect("query");
        assert!(out.failure.is_none());
        assert!(out.stdout.contains("syncopt.check.v1"));
        assert!(cache.misses > 0, "cold query must build artifacts");

        // Same query again: served from the shared cache.
        let (warm, cache) = client.query(&check_query()).expect("warm query");
        assert_eq!(warm, out, "daemon answers must be deterministic");
        assert_eq!(cache.misses, 0, "warm query must be all hits");
        assert!(cache.hits > 0);

        let stats = client.stats().expect("stats");
        assert!(stats.get("cache").is_some());

        client.shutdown().expect("shutdown");
        handle.join().unwrap().expect("daemon exits cleanly");
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn daemon_matches_direct_execution() {
        let (path, handle) = spawn("direct");
        let mut client = DaemonClient::connect(&path).expect("connect");
        for command in ["check", "explain", "lint", "profile"] {
            let q = Query {
                command: command.to_string(),
                ..check_query()
            };
            let mut session = AnalysisSession::new();
            let direct: CmdOut = execute(&mut session, &q);
            let (remote, _) = client.query(&q).expect(command);
            assert_eq!(remote, direct, "{command}: daemon must match direct mode");
        }
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn bench_is_rejected() {
        let (path, handle) = spawn("bench");
        let mut client = DaemonClient::connect(&path).expect("connect");
        let err = client
            .query(&Query {
                command: "bench".to_string(),
                ..Query::default()
            })
            .unwrap_err();
        assert!(err.contains("bench"), "got: {err}");
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_requests_get_protocol_errors() {
        let (path, handle) = spawn("malformed");
        let stream = UnixStream::connect(&path).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();

        writeln!(writer, "this is not json").unwrap();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("bad-request"), "got: {line}");

        line.clear();
        writeln!(
            writer,
            r#"{{"schema":"syncopt.rpc.v1","id":5,"op":"warp"}}"#
        )
        .unwrap();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("unsupported"), "got: {line}");
        assert!(line.contains("\"id\":5"), "id echoed: {line}");

        drop(writer);
        drop(reader);
        let mut client = DaemonClient::connect(&path).expect("connect");
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stale_socket_file_is_reclaimed() {
        let path = test_socket("stale");
        let _ = std::fs::remove_file(&path);
        // A socket file nobody listens on.
        drop(UnixListener::bind(&path).expect("first bind"));
        assert!(path.exists());
        let daemon = Daemon::bind(&path).expect("reclaims stale socket");
        let handle = std::thread::spawn(move || daemon.run());
        let mut client = DaemonClient::connect(&path).expect("connect");
        client.ping().expect("ping");
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }
}
