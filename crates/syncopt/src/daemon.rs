//! `syncoptd` — a long-running analysis service over a Unix socket.
//!
//! The daemon owns one [`AnalysisSession`] and serves `syncopt.rpc.v1`
//! requests (see [`crate::rpc`]) from any number of concurrent clients:
//! each accepted connection gets its own thread, reads newline-delimited
//! requests, and writes one response line per request, in order. All
//! queries share the session's content-addressed artifact cache, so a
//! client re-checking a program another client already analyzed is served
//! from cache — the per-request `cache` delta in each response shows
//! exactly how much work was reused.
//!
//! The daemon never touches the client's filesystem: file-producing
//! queries (`run --emit-report`, `trace --out`) return the artifact in
//! the response and the client writes it locally.
//!
//! Telemetry (see [`crate::telemetry`]) is on by default: every request
//! gets a monotonic id and a decode → execute → encode span recorded
//! into the metrics registry, served back via the extended `stats` op
//! (`syncopt.metrics.v1`) and the `metrics` op (Prometheus text). It is
//! strictly observational — responses are byte-identical whether
//! telemetry is on or off, because it never touches response fields.

use crate::commands::execute;
use crate::rpc::{
    decode_request, error_response, metrics_response, ping_response, query_response,
    shutdown_response, stats_response, Request, RequestBody, RpcError, ServiceStats,
};
use crate::session::AnalysisSession;
use crate::telemetry::{RequestOutcome, RequestSpan, ServiceTelemetry, TelemetryConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use syncopt_core::cache::CacheStats;

/// The default socket path: `syncoptd.sock` in the system temp directory.
pub fn default_socket_path() -> PathBuf {
    std::env::temp_dir().join("syncoptd.sock")
}

struct State {
    session: Mutex<AnalysisSession>,
    shutdown: AtomicBool,
    socket_path: PathBuf,
    /// `None` ⇒ `--no-telemetry`: no ids, no timestamps, no metrics.
    telemetry: Option<Arc<ServiceTelemetry>>,
    /// Service fields of the `stats` response, maintained even with
    /// telemetry off (one atomic increment per request, no allocation).
    started: Instant,
    requests: AtomicU64,
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: UnixListener,
    state: Arc<State>,
}

impl Daemon {
    /// Binds the service socket at `path` with a fresh session.
    ///
    /// A leftover socket file from a dead daemon is detected (nothing
    /// accepts connections on it) and replaced; a *live* daemon on the
    /// same path is reported as an error.
    ///
    /// # Errors
    ///
    /// Propagates socket creation failures, and refuses the path if
    /// another daemon is already serving it.
    pub fn bind(path: &Path) -> std::io::Result<Daemon> {
        Daemon::bind_with_session(path, AnalysisSession::new())
    }

    /// [`bind`](Daemon::bind) with a caller-configured session (e.g. a
    /// custom cache capacity). Telemetry is on with default settings.
    ///
    /// # Errors
    ///
    /// See [`bind`](Daemon::bind).
    pub fn bind_with_session(path: &Path, session: AnalysisSession) -> std::io::Result<Daemon> {
        Daemon::bind_with(path, session, Some(TelemetryConfig::default()))
    }

    /// [`bind`](Daemon::bind) with a caller-configured session and
    /// telemetry: `None` disables telemetry entirely (`--no-telemetry`),
    /// `Some(config)` enables it with a request log and slow threshold.
    ///
    /// # Errors
    ///
    /// See [`bind`](Daemon::bind); additionally propagates request-log
    /// creation failures.
    pub fn bind_with(
        path: &Path,
        session: AnalysisSession,
        telemetry: Option<TelemetryConfig>,
    ) -> std::io::Result<Daemon> {
        let telemetry = match telemetry {
            Some(config) => Some(Arc::new(ServiceTelemetry::new(&config)?)),
            None => None,
        };
        let listener = match UnixListener::bind(path) {
            Ok(listener) => listener,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("a daemon is already serving {}", path.display()),
                    ));
                }
                // Stale socket file from an unclean exit: reclaim it.
                std::fs::remove_file(path)?;
                UnixListener::bind(path)?
            }
            Err(e) => return Err(e),
        };
        Ok(Daemon {
            listener,
            state: Arc::new(State {
                session: Mutex::new(session),
                shutdown: AtomicBool::new(false),
                socket_path: path.to_path_buf(),
                telemetry,
                started: Instant::now(),
                requests: AtomicU64::new(0),
            }),
        })
    }

    /// The path the daemon is serving on.
    pub fn socket_path(&self) -> &Path {
        &self.state.socket_path
    }

    /// Serves connections until a client sends `shutdown`. Removes the
    /// socket file on the way out.
    ///
    /// # Errors
    ///
    /// Propagates `accept` failures; per-connection I/O errors only end
    /// that connection.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || serve_connection(stream, &state));
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&self.state.socket_path);
                    return Err(e);
                }
            }
        }
        let _ = std::fs::remove_file(&self.state.socket_path);
        Ok(())
    }
}

/// Lowers the open-connections gauge on every exit path.
struct ConnGuard<'a>(Option<&'a ServiceTelemetry>);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.0 {
            t.close_connection();
        }
    }
}

/// What [`handle_line`] observed about one request, for telemetry.
struct ReqMeta {
    /// Operation label: the RPC op for control requests, the query
    /// command for queries, `invalid` for undecodable lines.
    op: String,
    /// Protocol-level success (`ok: true` response).
    ok: bool,
    /// A query ran but reported a command failure.
    failed: bool,
    /// Per-request cache delta (zero for control ops).
    cache: CacheStats,
    /// Shut the server down after answering.
    shutdown: bool,
}

/// Reads request lines from one client until EOF or shutdown, answering
/// each in order.
fn serve_connection(stream: UnixStream, state: &State) {
    let telemetry = state.telemetry.as_deref();
    let conn_id = telemetry.map(|t| t.open_connection()).unwrap_or(0);
    let _guard = ConnGuard(telemetry);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        // +1: the framing newline consumed by `lines()`.
        let mut span = telemetry.map(|t| t.begin_request(conn_id, line.len() as u64 + 1));
        let (response, meta) = handle_line(&line, state, span.as_mut());
        let text = response.to_string();
        let sent = writeln!(writer, "{text}")
            .and_then(|()| writer.flush())
            .is_ok();
        if let (Some(t), Some(span)) = (telemetry, span.take()) {
            t.finish_request(
                span,
                &RequestOutcome {
                    op: &meta.op,
                    ok: meta.ok,
                    failed: meta.failed,
                    bytes_out: text.len() as u64 + 1,
                    cache: meta.cache,
                },
            );
        }
        if !sent {
            return;
        }
        if meta.shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run` can observe the flag.
            let _ = UnixStream::connect(&state.socket_path);
            return;
        }
    }
}

/// Answers one request line. Returns the response document and the
/// request metadata for telemetry. The span (when telemetry is on) has
/// its decode phase closed right after the envelope parse and its
/// execute phase closed once the response document is built; the encode
/// remainder is measured by `finish_request`.
fn handle_line(
    line: &str,
    state: &State,
    mut span: Option<&mut RequestSpan>,
) -> (syncopt_core::diag::json::Value, ReqMeta) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let decoded = decode_request(line);
    if let Some(s) = span.as_deref_mut() {
        s.decode_done();
    }
    let answer = respond(line, decoded, state);
    if let Some(s) = span {
        s.execute_done();
    }
    answer
}

/// Builds the response document for one decoded (or undecodable) request.
fn respond(
    line: &str,
    decoded: Result<Request, RpcError>,
    state: &State,
) -> (syncopt_core::diag::json::Value, ReqMeta) {
    let meta = |op: &str, ok: bool, failed: bool, cache: CacheStats, shutdown: bool| ReqMeta {
        op: op.to_string(),
        ok,
        failed,
        cache,
        shutdown,
    };
    let req = match decoded {
        Ok(req) => req,
        // Echo the id when the envelope carried one; a request too broken
        // to carry an id gets id 0.
        Err(e) => {
            return (
                error_response(crate::rpc::request_id(line), &e),
                meta("invalid", false, false, CacheStats::default(), false),
            );
        }
    };
    let Request { id, body } = req;
    match body {
        RequestBody::Ping => (
            ping_response(id),
            meta("ping", true, false, CacheStats::default(), false),
        ),
        RequestBody::Stats => {
            let session = state.session.lock().unwrap_or_else(|e| e.into_inner());
            let service = ServiceStats {
                uptime_ms: match &state.telemetry {
                    Some(t) => t.uptime_ms(),
                    None => u64::try_from(state.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                },
                requests_total: state.requests.load(Ordering::Relaxed),
                version: crate::telemetry::SERVICE_VERSION.to_string(),
            };
            let metrics = state.telemetry.as_ref().map(|t| t.metrics_json());
            (
                stats_response(
                    id,
                    session.cache_stats(),
                    session.cached_artifacts(),
                    session.cache_capacity(),
                    session.kind_counters(),
                    &service,
                    metrics,
                ),
                meta("stats", true, false, CacheStats::default(), false),
            )
        }
        RequestBody::Metrics => match &state.telemetry {
            Some(t) => (
                metrics_response(id, &t.prometheus_text()),
                meta("metrics", true, false, CacheStats::default(), false),
            ),
            None => {
                let e =
                    RpcError::unsupported("telemetry is disabled on this daemon (--no-telemetry)");
                (
                    error_response(id, &e),
                    meta("metrics", false, false, CacheStats::default(), false),
                )
            }
        },
        RequestBody::Shutdown => (
            shutdown_response(id),
            meta("shutdown", true, false, CacheStats::default(), true),
        ),
        RequestBody::Query(q) => {
            if q.command == "bench" {
                let e = RpcError::unsupported(
                    "`bench` measures this machine and does not route through the daemon",
                );
                return (
                    error_response(id, &e),
                    meta(&q.command, false, false, CacheStats::default(), false),
                );
            }
            // One session serves all clients; the lock makes each query
            // atomic with respect to the cache, and per-request stats are
            // deltas over the executed query only.
            let mut session = state.session.lock().unwrap_or_else(|e| e.into_inner());
            let before = session.cache_stats();
            let out = execute(&mut session, &q);
            let delta = session.cache_stats().since(before);
            let failed = out.failure.is_some();
            (
                query_response(id, &out, delta),
                meta(&q.command, true, failed, delta, false),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DaemonClient;
    use crate::commands::{CmdOut, Format, Query};

    fn test_socket(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("syncoptd-test-{}-{name}.sock", std::process::id()))
    }

    fn spawn(name: &str) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
        let path = test_socket(name);
        let _ = std::fs::remove_file(&path);
        let daemon = Daemon::bind(&path).expect("bind");
        let handle = std::thread::spawn(move || daemon.run());
        (path, handle)
    }

    fn check_query() -> Query {
        Query {
            command: "check".to_string(),
            file: "unit.ms".to_string(),
            source: Some("shared int A[8]; fn main() { A[MYPROC] = 1; barrier; }".to_string()),
            format: Format::Json,
            ..Query::default()
        }
    }

    #[test]
    fn ping_query_stats_shutdown() {
        let (path, handle) = spawn("basic");
        let mut client = DaemonClient::connect(&path).expect("connect");
        client.ping().expect("ping");

        let (out, cache) = client.query(&check_query()).expect("query");
        assert!(out.failure.is_none());
        assert!(out.stdout.contains("syncopt.check.v1"));
        assert!(cache.misses > 0, "cold query must build artifacts");

        // Same query again: served from the shared cache.
        let (warm, cache) = client.query(&check_query()).expect("warm query");
        assert_eq!(warm, out, "daemon answers must be deterministic");
        assert_eq!(cache.misses, 0, "warm query must be all hits");
        assert!(cache.hits > 0);

        let stats = client.stats().expect("stats");
        assert!(stats.get("cache").is_some());

        client.shutdown().expect("shutdown");
        handle.join().unwrap().expect("daemon exits cleanly");
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn daemon_matches_direct_execution() {
        let (path, handle) = spawn("direct");
        let mut client = DaemonClient::connect(&path).expect("connect");
        for command in ["check", "explain", "lint", "profile"] {
            let q = Query {
                command: command.to_string(),
                ..check_query()
            };
            let mut session = AnalysisSession::new();
            let direct: CmdOut = execute(&mut session, &q);
            let (remote, _) = client.query(&q).expect(command);
            assert_eq!(remote, direct, "{command}: daemon must match direct mode");
        }
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn bench_is_rejected() {
        let (path, handle) = spawn("bench");
        let mut client = DaemonClient::connect(&path).expect("connect");
        let err = client
            .query(&Query {
                command: "bench".to_string(),
                ..Query::default()
            })
            .unwrap_err();
        assert!(err.contains("bench"), "got: {err}");
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_requests_get_protocol_errors() {
        let (path, handle) = spawn("malformed");
        let stream = UnixStream::connect(&path).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();

        writeln!(writer, "this is not json").unwrap();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("bad-request"), "got: {line}");

        line.clear();
        writeln!(
            writer,
            r#"{{"schema":"syncopt.rpc.v1","id":5,"op":"warp"}}"#
        )
        .unwrap();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("unsupported"), "got: {line}");
        assert!(line.contains("\"id\":5"), "id echoed: {line}");

        drop(writer);
        drop(reader);
        let mut client = DaemonClient::connect(&path).expect("connect");
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stale_socket_file_is_reclaimed() {
        let path = test_socket("stale");
        let _ = std::fs::remove_file(&path);
        // A socket file nobody listens on.
        drop(UnixListener::bind(&path).expect("first bind"));
        assert!(path.exists());
        let daemon = Daemon::bind(&path).expect("reclaims stale socket");
        let handle = std::thread::spawn(move || daemon.run());
        let mut client = DaemonClient::connect(&path).expect("connect");
        client.ping().expect("ping");
        client.shutdown().expect("shutdown");
        handle.join().unwrap().unwrap();
    }
}
