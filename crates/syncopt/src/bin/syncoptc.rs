//! `syncoptc` — command-line driver for the syncopt pipeline.
//!
//! ```text
//! syncoptc analyze <file> [--procs N]
//!     print conflict/delay-set statistics and the delay pairs
//! syncoptc opt <file> [--procs N] [--level L] [--delay D] [--dump]
//!     optimize and (with --dump) print the target CFG
//! syncoptc run <file> [--procs N] [--machine M] [--level L] [--delay D]
//!     simulate and report cycles, messages, stalls, final memory
//! syncoptc trace <file> [--procs N] [--machine M] [--level L] [--delay D]
//!          [--trace-limit N] [--out PATH]
//!     simulate with the structured timeline on and emit Chrome Trace
//!     Event Format JSON (schema syncopt.trace.v1) for Perfetto /
//!     chrome://tracing; verifies the span/counter accounting invariant
//! syncoptc explain <file> [--procs N] [--pair a b] [--format json]
//!     report why each delay pair was kept (back-path witness) or
//!     dropped (the sync fact that removed it), with source spans
//! syncoptc profile <file> [--procs N] [--machine M] [--level L] [--delay D]
//!     run blocking vs optimized and compare (the paper's Figure 12 shape)
//! syncoptc litmus <file> [--procs N]
//!     enumerate weak vs sequentially consistent outcomes
//! syncoptc check <file> [--procs N] [--strict] [--format json]
//!     static race/synchronization check; exit 1 if errors are found
//!     (`--strict` also runs the full lint suite and promotes warnings)
//! syncoptc check --kernels [--procs N] [--format json]
//!     check every built-in evaluation kernel, with per-kernel statistics
//! syncoptc lint <file> [--procs N] [--strict] [--format json]
//!     synchronization lint suite (schema syncopt.lint.v1): static
//!     deadlock detection (D001–D003), redundant-synchronization
//!     analysis (L001/L002), and fence-coverage verification of the
//!     codegen output at every optimization level (F001/F002); exit 1
//!     if errors are found
//! syncoptc lint --kernels [--procs N] [--format json]
//!     lint every built-in evaluation kernel
//! syncoptc lint --seeded <name> [--format json]
//!     lint a built-in seeded example (lock-cycle | barrier-divergence |
//!     postwait-deadlock | redundant-barrier)
//! syncoptc bench [--suite S] [--smoke] [--threads T] [--out PATH] [--check BASELINE]
//!     run a benchmark suite and emit its work-counter report (schema
//!     syncopt.bench_report.v1). S ∈ delay|sim (default delay): `delay`
//!     runs the delay-set analysis scaling trajectory, `sim` the
//!     simulator-throughput sweep over the evaluation kernels. `--check`
//!     compares the fresh counters against a committed baseline and exits
//!     1 on a >20% regression; `--threads` fans independent configs
//!     across workers without changing any counter
//!
//! `opt --dot` emits Graphviz instead of text; `run --trace` appends the
//! first 200 trace events; `run --emit-report <path>` writes the pipeline
//! report JSON to a file; `check --strict` promotes warnings to errors.
//! `check` and `lint` accept `--deny CODE` (force a diagnostic code to
//! error) and `--allow CODE` (demote it to a note); `--allow` wins over
//! `--strict` promotion.
//! `run` and `profile` honor `--format json` (machine-readable report on
//! stdout); `profile` also accepts `--format table` for the side-by-side
//! comparison (the default).
//!
//! L ∈ blocking|pipelined|oneway|full      (default pipelined)
//! D ∈ ss|sync                             (default sync)
//! M ∈ cm5|t3d|dash                        (default cm5)
//! N                                        (default 4)
//! ```

use std::process::ExitCode;
use syncopt::core::diag::{json, sort_diagnostics, Diagnostic, Severity};
use syncopt::core::races::{detect_races, race_diagnostics, RaceAnalysis};
use syncopt::core::warnings::sync_warnings;
use syncopt::core::{DelaySet, SyncOptions};
use syncopt::ir::cfg::Cfg;
use syncopt::machine::litmus::{sc_outcomes, weak_outcomes};
use syncopt::machine::MachineConfig;
use syncopt::{DelayChoice, OptLevel, Syncopt, TraceLevel};

struct Args {
    command: String,
    file: String,
    procs: u32,
    level: OptLevel,
    delay: DelayChoice,
    machine: String,
    dump: bool,
    dot: bool,
    trace: bool,
    strict: bool,
    kernels: bool,
    format: Format,
    emit_report: Option<String>,
    threads: usize,
    smoke: bool,
    suite: String,
    out: Option<String>,
    check_baseline: Option<String>,
    trace_limit: Option<usize>,
    pair: Option<(u32, u32)>,
    deny: Vec<String>,
    allow: Vec<String>,
    seeded: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let command = argv.next().ok_or("missing command")?;
    // The input file is optional for `check --kernels`.
    let file = match argv.peek() {
        Some(a) if !a.starts_with("--") => argv.next().unwrap(),
        _ => String::new(),
    };
    let mut args = Args {
        command,
        file,
        procs: 4,
        level: OptLevel::Pipelined,
        delay: DelayChoice::SyncRefined,
        machine: "cm5".to_string(),
        dump: false,
        dot: false,
        trace: false,
        strict: false,
        kernels: false,
        format: Format::Human,
        emit_report: None,
        threads: 1,
        smoke: false,
        suite: "delay".to_string(),
        out: None,
        check_baseline: None,
        trace_limit: None,
        pair: None,
        deny: Vec::new(),
        allow: Vec::new(),
        seeded: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--procs" => {
                args.procs = argv
                    .next()
                    .ok_or("--procs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --procs: {e}"))?;
            }
            "--level" => {
                args.level = match argv.next().ok_or("--level needs a value")?.as_str() {
                    "blocking" => OptLevel::Blocking,
                    "pipelined" => OptLevel::Pipelined,
                    "oneway" => OptLevel::OneWay,
                    "full" => OptLevel::Full,
                    other => return Err(format!("unknown level `{other}`")),
                };
            }
            "--delay" => {
                args.delay = match argv.next().ok_or("--delay needs a value")?.as_str() {
                    "ss" => DelayChoice::ShashaSnir,
                    "sync" => DelayChoice::SyncRefined,
                    other => return Err(format!("unknown delay choice `{other}`")),
                };
            }
            "--machine" => {
                args.machine = argv.next().ok_or("--machine needs a value")?;
            }
            "--dump" => args.dump = true,
            "--dot" => args.dot = true,
            "--trace" => args.trace = true,
            "--strict" => args.strict = true,
            "--kernels" => args.kernels = true,
            "--format" => {
                args.format = match argv.next().ok_or("--format needs a value")?.as_str() {
                    "human" | "table" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--emit-report" => {
                args.emit_report = Some(argv.next().ok_or("--emit-report needs a path")?);
            }
            "--threads" => {
                args.threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--suite" => {
                args.suite = argv.next().ok_or("--suite needs a value (delay|sim)")?;
            }
            "--out" => {
                args.out = Some(argv.next().ok_or("--out needs a path")?);
            }
            "--check" => {
                args.check_baseline = Some(argv.next().ok_or("--check needs a baseline path")?);
            }
            "--trace-limit" => {
                args.trace_limit = Some(
                    argv.next()
                        .ok_or("--trace-limit needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --trace-limit: {e}"))?,
                );
            }
            "--deny" => {
                args.deny.push(known_code(
                    argv.next().ok_or("--deny needs a diagnostic code")?,
                )?);
            }
            "--allow" => {
                args.allow.push(known_code(
                    argv.next().ok_or("--allow needs a diagnostic code")?,
                )?);
            }
            "--seeded" => {
                args.seeded = Some(argv.next().ok_or("--seeded needs an example name")?);
            }
            "--pair" => {
                let a = argv
                    .next()
                    .ok_or("--pair needs two access ids (e.g. --pair 3 7)")?;
                let b = argv
                    .next()
                    .ok_or("--pair needs two access ids (e.g. --pair 3 7)")?;
                let parse = |s: &str| {
                    s.trim_start_matches('a')
                        .parse::<u32>()
                        .map_err(|e| format!("bad --pair access id `{s}`: {e}"))
                };
                args.pair = Some((parse(&a)?, parse(&b)?));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let file_optional = (args.command == "check" && args.kernels)
        || (args.command == "lint" && (args.kernels || args.seeded.is_some()))
        || args.command == "bench";
    if args.file.is_empty() && !file_optional {
        return Err("missing input file".to_string());
    }
    Ok(args)
}

/// Validates a `--deny`/`--allow` argument against the known code list.
fn known_code(code: String) -> Result<String, String> {
    if syncopt::core::KNOWN_CODES.contains(&code.as_str()) {
        Ok(code)
    } else {
        Err(format!(
            "unknown diagnostic code `{code}` (known: {})",
            syncopt::core::KNOWN_CODES.join(", ")
        ))
    }
}

fn machine_config(name: &str, procs: u32) -> Result<MachineConfig, String> {
    Ok(match name {
        "cm5" => MachineConfig::cm5(procs),
        "t3d" => MachineConfig::t3d(procs),
        "dash" => MachineConfig::dash(procs),
        other => return Err(format!("unknown machine `{other}`")),
    })
}

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`syncoptc ... | head`):
    // println! panics on EPIPE, which is noise, not an error.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("Broken pipe"))
            .unwrap_or(false);
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("syncoptc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nrun with: syncoptc <analyze|opt|run|trace|explain|profile|litmus|check|lint|bench> <file> [flags]"
        )
    })?;
    if args.command == "bench" {
        return cmd_bench(&args);
    }
    if args.command == "check" && args.kernels {
        return cmd_check_kernels(&args);
    }
    if args.command == "lint" {
        return cmd_lint(&args);
    }
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    match args.command.as_str() {
        "analyze" => cmd_analyze(&src, &args),
        "opt" => cmd_opt(&src, &args),
        "run" => cmd_run(&src, &args),
        "trace" => cmd_trace(&src, &args),
        "explain" => cmd_explain(&src, &args),
        "profile" => cmd_profile(&src, &args),
        "litmus" => cmd_litmus(&src, &args),
        "check" => cmd_check(&src, &args),
        "lint" | "bench" => unreachable!("handled before the file read"),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_analyze(src: &str, args: &Args) -> Result<(), String> {
    let c = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(OptLevel::Blocking)
        .delay(args.delay)
        .compile()
        .map_err(|e| render_err(src, &args.file, &e))?;
    let s = c.analysis.stats();
    println!("access sites:          {}", s.accesses);
    println!("conflicting pairs:     {}", s.conflict_pairs);
    println!("|D_SS| (Shasha-Snir):  {}", s.delay_ss);
    println!("|D|    (refined):      {}", s.delay_sync);
    println!("|R|    (precedence):   {}", s.precedence_pairs);
    println!("aligned barriers:      {}", s.aligned_barriers);
    println!();
    println!("refined delay pairs:");
    for (u, v) in c.analysis.delay_sync.pairs() {
        let d = |a: syncopt::ir::ids::AccessId| {
            let i = c.source_cfg.accesses.info(a);
            let var = i
                .var
                .map(|v| c.source_cfg.vars.info(v).name.clone())
                .unwrap_or_default();
            let (line, col) = i.span.line_col(src);
            format!("{a} {:?} {var} @{line}:{col}", i.kind)
        };
        println!("  {}  →  {}", d(u), d(v));
    }
    let warnings = syncopt::core::sync_warnings(&c.source_cfg);
    if !warnings.is_empty() {
        println!();
        for w in warnings {
            println!("warning: {w}");
        }
    }
    Ok(())
}

fn cmd_opt(src: &str, args: &Args) -> Result<(), String> {
    let c = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(args.level)
        .delay(args.delay)
        .compile()
        .map_err(|e| render_err(src, &args.file, &e))?;
    if args.dot {
        println!(
            "{}",
            syncopt::ir::print::cfg_to_dot(&c.optimized.cfg, &args.file)
        );
        return Ok(());
    }
    println!("{:#?}", c.optimized.stats);
    if args.dump {
        println!("\n{}", syncopt::ir::print::cfg_to_string(&c.optimized.cfg));
    }
    Ok(())
}

fn cmd_run(src: &str, args: &Args) -> Result<(), String> {
    let config = machine_config(&args.machine, args.procs)?;
    let r = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(args.level)
        .delay(args.delay)
        .trace(if args.trace {
            TraceLevel::Events
        } else {
            TraceLevel::Off
        })
        .trace_limit(args.trace_limit.unwrap_or(syncopt::DEFAULT_TRACE_LIMIT))
        .run(&config)
        .map_err(|e| render_err(src, &args.file, &e))?;
    if let Some(path) = &args.emit_report {
        std::fs::write(path, format!("{}\n", r.report().to_json()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("pipeline report written to {path}");
    }
    if args.format == Format::Json {
        println!("{}", r.report().to_json());
        return Ok(());
    }
    if let Some(trace) = &r.trace {
        println!("--- trace (first 200 events) ---");
        for e in trace.events().iter().take(200) {
            println!("{e}");
        }
        println!("--------------------------------");
    }
    println!("machine:            {} × {}", config.procs, config.name);
    println!("execution:          {} cycles", r.sim.exec_cycles);
    println!("messages:           {}", r.sim.net.total_messages());
    println!(
        "  gets/replies:     {}/{}",
        r.sim.net.get_requests, r.sim.net.get_replies
    );
    println!(
        "  puts/acks:        {}/{}",
        r.sim.net.put_requests, r.sim.net.put_acks
    );
    println!("  stores:           {}", r.sim.net.store_requests);
    println!("  barriers:         {}", r.sim.net.barriers);
    println!(
        "stalls (cycles):    sync {} | barrier {} | wait {} | lock {} | blocking {}",
        r.sim.stalls.sync,
        r.sim.stalls.barrier,
        r.sim.stalls.wait,
        r.sim.stalls.lock,
        r.sim.stalls.blocking
    );
    println!("barriers aligned:   {}", r.sim.barriers_aligned);
    println!("final shared memory:");
    for (var, vals) in &r.sim.memory {
        let name = &r.compiled.source_cfg.vars.info(*var).name;
        if vals.len() == 1 {
            println!("  {name} = {}", vals[0]);
        } else {
            let shown: Vec<String> = vals.iter().take(16).map(|v| v.to_string()).collect();
            let ellipsis = if vals.len() > 16 { ", ..." } else { "" };
            println!("  {name} = [{}{}]", shown.join(", "), ellipsis);
        }
    }
    Ok(())
}

fn cmd_trace(src: &str, args: &Args) -> Result<(), String> {
    let config = machine_config(&args.machine, args.procs)?;
    let r = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(args.level)
        .delay(args.delay)
        .trace(TraceLevel::Events)
        .trace_limit(args.trace_limit.unwrap_or(syncopt::DEFAULT_TRACE_LIMIT))
        .run(&config)
        .map_err(|e| render_err(src, &args.file, &e))?;
    let trace = r.trace.as_ref().expect("Events tracing always captures");
    // The exported timeline must reproduce the cycle accounting exactly;
    // a mismatch is an instrumentation bug, not a user error.
    if !trace.truncated() {
        syncopt::verify_span_accounting(trace, &r.sim)
            .map_err(|e| format!("trace/accounting invariant violated: {e}"))?;
    }
    let json = syncopt::chrome_trace(trace, &r.sim, &r.compiled.optimized.cfg);
    match &args.out {
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "trace written to {path} ({} events{}); open in https://ui.perfetto.dev or chrome://tracing",
                json.get("traceEvents").and_then(json::Value::as_arr).map_or(0, |a| a.len()),
                if trace.truncated() { ", TRUNCATED" } else { "" },
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_explain(src: &str, args: &Args) -> Result<(), String> {
    let c = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(OptLevel::Blocking)
        .delay(args.delay)
        .compile()
        .map_err(|e| render_err(src, &args.file, &e))?;
    // Must match the options `compile` analyzed with, so the recomputed
    // seed facts line up with the precedence relation being explained.
    let opts = SyncOptions {
        procs: Some(args.procs),
        threads: args.threads,
        ..SyncOptions::default()
    };
    let mut report = syncopt::core::explain(&c.source_cfg, &c.analysis, &opts);
    if let Some((a, b)) = args.pair {
        report
            .kept
            .retain(|k| (k.u.index(), k.v.index()) == (a as usize, b as usize));
        report
            .dropped
            .retain(|d| (d.u.index(), d.v.index()) == (a as usize, b as usize));
        if report.kept.is_empty() && report.dropped.is_empty() {
            return Err(format!(
                "pair (a{a}, a{b}) is not in D_SS — nothing to explain \
                 (run `syncoptc explain` without --pair to list all pairs)"
            ));
        }
    }
    if args.format == Format::Json {
        println!("{}", report.to_json(&c.source_cfg, src));
        return Ok(());
    }
    println!(
        "delay-set provenance: {} kept, {} dropped (|D_SS| = {})",
        report.kept.len(),
        report.dropped.len(),
        report.kept.len() + report.dropped.len()
    );
    println!();
    for d in report.to_diagnostics(&c.source_cfg) {
        print!("{}", d.render(src, &args.file));
    }
    Ok(())
}

fn cmd_profile(src: &str, args: &Args) -> Result<(), String> {
    let config = machine_config(&args.machine, args.procs)?;
    let p = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(args.level)
        .delay(args.delay)
        .profile(&config)
        .map_err(|e| render_err(src, &args.file, &e))?;
    match args.format {
        Format::Json => println!("{}", p.to_json()),
        Format::Human => print!("{}", p.render_table()),
    }
    Ok(())
}

fn cmd_litmus(src: &str, args: &Args) -> Result<(), String> {
    let c = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(OptLevel::Blocking)
        .delay(args.delay)
        .compile()
        .map_err(|e| render_err(src, &args.file, &e))?;
    let cfg = &c.source_cfg;
    let sc = sc_outcomes(cfg, args.procs).map_err(|e| e.to_string())?;
    let none = weak_outcomes(cfg, &DelaySet::new(cfg.accesses.len()), args.procs)
        .map_err(|e| e.to_string())?;
    let refined =
        weak_outcomes(cfg, &c.analysis.delay_sync, args.procs).map_err(|e| e.to_string())?;
    println!("SC outcomes:                 {sc:?}");
    println!("weak outcomes, no delays:    {none:?}");
    println!("weak outcomes, refined D:    {refined:?}");
    println!("refined D preserves SC:      {}", refined.is_subset(&sc));
    Ok(())
}

/// Everything `check` computes for one program.
struct CheckOutcome {
    races: RaceAnalysis,
    diags: Vec<Diagnostic>,
}

impl CheckOutcome {
    fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }
}

/// Runs the race detector and the synchronization warnings over `cfg`,
/// merging both into one sorted diagnostic list. `--strict` additionally
/// runs the full lint suite and promotes warnings to errors; `--deny` /
/// `--allow` override per-code severities first (so `--allow` wins over
/// the strict promotion).
fn run_check(cfg: &Cfg, args: &Args) -> CheckOutcome {
    let opts = SyncOptions {
        procs: Some(args.procs),
        threads: args.threads,
        ..SyncOptions::default()
    };
    let races = detect_races(cfg, &opts);
    let mut diags = race_diagnostics(cfg, &races);
    for w in sync_warnings(cfg) {
        diags.push(w.to_diagnostic(cfg));
    }
    if args.strict {
        diags.extend(syncopt::lint::lint_cfg(cfg, &opts).diagnostics);
    }
    finalize_diagnostics(&mut diags, args);
    CheckOutcome { races, diags }
}

/// Applies `--deny`/`--allow` severity overrides, then the `--strict`
/// warning→error promotion, then the canonical sort.
fn finalize_diagnostics(diags: &mut [Diagnostic], args: &Args) {
    syncopt::core::apply_severity_overrides(diags, &args.deny, &args.allow);
    if args.strict {
        for d in diags.iter_mut() {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }
    sort_diagnostics(diags);
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    if args.kernels {
        return cmd_lint_kernels(args);
    }
    let (src, display) = match &args.seeded {
        Some(name) => match syncopt::kernels::seeded::seeded_example(name) {
            Some(ex) => (ex.source.to_string(), format!("seeded:{name}")),
            None => {
                let names: Vec<&str> = syncopt::kernels::seeded::seeded_examples()
                    .iter()
                    .map(|e| e.name)
                    .collect();
                return Err(format!(
                    "unknown seeded example `{name}` (available: {})",
                    names.join(", ")
                ));
            }
        },
        None => (
            std::fs::read_to_string(&args.file)
                .map_err(|e| format!("cannot read {}: {e}", args.file))?,
            args.file.clone(),
        ),
    };
    let c = Syncopt::new(&src)
        .procs(args.procs)
        .threads(args.threads)
        .level(OptLevel::Blocking)
        .delay(args.delay)
        .compile()
        .map_err(|e| render_err(&src, &display, &e))?;
    let opts = SyncOptions {
        procs: Some(args.procs),
        threads: args.threads,
        ..SyncOptions::default()
    };
    let mut report = syncopt::lint::lint_with_analysis(&c.source_cfg, &c.analysis, &opts);
    finalize_diagnostics(&mut report.diagnostics, args);
    match args.format {
        Format::Json => println!("{}", report.to_json(&src, &display, args.procs)),
        Format::Human => {
            for d in &report.diagnostics {
                println!("{}", d.render(&src, &display));
            }
            for p in &report.passes {
                println!(
                    "pass {:<15} [{}]: {} finding(s)",
                    p.name,
                    p.codes.join(", "),
                    p.findings
                );
            }
            for f in &report.fence_levels {
                println!(
                    "fences @ {:<9}: {} live delay pair(s), {} fence(s), all covered",
                    f.label, f.delay_pairs, f.fences
                );
            }
            println!(
                "{} error(s), {} warning(s), {} note(s)",
                report.errors(),
                report.count(Severity::Warning),
                report.count(Severity::Note)
            );
        }
    }
    if report.errors() > 0 {
        return Err(format!("lint failed: {} error(s)", report.errors()));
    }
    Ok(())
}

fn cmd_lint_kernels(args: &Args) -> Result<(), String> {
    use syncopt::frontend::prepare_program;
    use syncopt::ir::lower::lower_main;

    let opts = SyncOptions {
        procs: Some(args.procs),
        threads: args.threads,
        ..SyncOptions::default()
    };
    let mut failed = 0usize;
    let mut rows = Vec::new();
    for kernel in syncopt::kernels::all_kernels(args.procs) {
        let cfg = lower_main(&prepare_program(&kernel.source).map_err(|e| {
            syncopt::core::diag::frontend_diagnostic(&e).render(&kernel.source, kernel.name)
        })?)
        .map_err(|e| format!("{}: {e}", kernel.name))?;
        let mut report = syncopt::lint::lint_cfg(&cfg, &opts);
        finalize_diagnostics(&mut report.diagnostics, args);
        failed += usize::from(report.errors() > 0);
        rows.push((kernel.name, kernel.source.clone(), report));
    }
    match args.format {
        Format::Json => {
            let kernels = rows
                .iter()
                .map(|(name, source, report)| report.to_json(source, name, args.procs))
                .collect();
            let wrapper = json::Value::Obj(vec![
                (
                    "schema".to_string(),
                    json::Value::Str(syncopt::core::LINT_SCHEMA.to_string()),
                ),
                ("procs".to_string(), json::Value::Int(i64::from(args.procs))),
                ("kernels".to_string(), json::Value::Arr(kernels)),
            ]);
            println!("{wrapper}");
        }
        Format::Human => {
            println!(
                "{:<10} {:>7} {:>6} {:>6} {:>6}  fences(blocking→full)",
                "kernel", "errors", "warns", "notes", "D/L/F"
            );
            for (name, _, report) in &rows {
                let dlf = report
                    .passes
                    .iter()
                    .map(|p| p.findings.to_string())
                    .collect::<Vec<_>>();
                let fences = report
                    .fence_levels
                    .iter()
                    .map(|f| f.fences.to_string())
                    .collect::<Vec<_>>();
                println!(
                    "{:<10} {:>7} {:>6} {:>6} {:>6}  {}",
                    name,
                    report.errors(),
                    report.count(Severity::Warning),
                    report.count(Severity::Note),
                    dlf.join("/"),
                    fences.join("→")
                );
            }
        }
    }
    if failed > 0 {
        return Err(format!("lint failed: {failed} kernel(s) with errors"));
    }
    Ok(())
}

fn check_summary_json(outcome: &CheckOutcome) -> json::Value {
    json::Value::Obj(vec![
        (
            "errors".to_string(),
            json::Value::Int(outcome.errors() as i64),
        ),
        (
            "warnings".to_string(),
            json::Value::Int(outcome.count(Severity::Warning) as i64),
        ),
        (
            "notes".to_string(),
            json::Value::Int(outcome.count(Severity::Note) as i64),
        ),
        (
            "conflicting_pairs".to_string(),
            json::Value::Int((outcome.races.races.len() + outcome.races.ordered.len()) as i64),
        ),
        (
            "ordered".to_string(),
            json::Value::Int(outcome.races.ordered.len() as i64),
        ),
        (
            "races".to_string(),
            json::Value::Int(outcome.races.races.len() as i64),
        ),
        (
            "proven_races".to_string(),
            json::Value::Int(outcome.races.proven() as i64),
        ),
        (
            "race_free".to_string(),
            json::Value::Bool(outcome.races.race_free()),
        ),
    ])
}

fn cmd_check(src: &str, args: &Args) -> Result<(), String> {
    let c = Syncopt::new(src)
        .procs(args.procs)
        .threads(args.threads)
        .level(OptLevel::Blocking)
        .delay(args.delay)
        .compile()
        .map_err(|e| render_err(src, &args.file, &e))?;
    let outcome = run_check(&c.source_cfg, args);
    match args.format {
        Format::Json => {
            let report = json::Value::Obj(vec![
                ("file".to_string(), json::Value::Str(args.file.clone())),
                ("procs".to_string(), json::Value::Int(i64::from(args.procs))),
                ("summary".to_string(), check_summary_json(&outcome)),
                (
                    "diagnostics".to_string(),
                    json::Value::Arr(outcome.diags.iter().map(|d| d.to_json(src)).collect()),
                ),
            ]);
            println!("{report}");
        }
        Format::Human => {
            for d in &outcome.diags {
                println!("{}", d.render(src, &args.file));
            }
            let r = &outcome.races;
            println!(
                "{}: {} conflicting data pair(s): {} ordered, {} potentially racy ({} proven)",
                args.file,
                r.races.len() + r.ordered.len(),
                r.ordered.len(),
                r.races.len(),
                r.proven()
            );
            println!(
                "{} error(s), {} warning(s), {} note(s)",
                outcome.errors(),
                outcome.count(Severity::Warning),
                outcome.count(Severity::Note)
            );
        }
    }
    if outcome.errors() > 0 {
        return Err(format!("check failed: {} error(s)", outcome.errors()));
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    type Checker = Box<dyn Fn(&json::Value) -> Result<(), String>>;
    let (report_json, table, check): (json::Value, String, Checker) = match args.suite.as_str() {
        "delay" => {
            let report = syncopt::bench::run_bench(args.smoke, args.threads)
                .map_err(|e| format!("bench program failed to compile: {e}"))?;
            (
                report.to_json(),
                report.render_table(),
                Box::new(move |b| report.check_against(b)),
            )
        }
        "sim" => {
            let report = syncopt::simbench::run_sim_bench(args.smoke, args.threads)
                .map_err(|e| format!("sim bench failed: {e}"))?;
            (
                report.to_json(),
                report.render_table(),
                Box::new(move |b| report.check_against(b)),
            )
        }
        other => return Err(format!("unknown bench suite `{other}` (delay|sim)")),
    };
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{report_json}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("bench report written to {path}");
    }
    match args.format {
        Format::Json => println!("{report_json}"),
        Format::Human => print!("{table}"),
    }
    if let Some(baseline_path) = &args.check_baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let baseline = json::Value::parse(&text)
            .map_err(|e| format!("baseline {baseline_path} is not valid JSON: {e}"))?;
        check(&baseline).map_err(|e| format!("{baseline_path}: {e}"))?;
        eprintln!(
            "work counters within {}% of {baseline_path}",
            syncopt::bench::TOLERANCE_PCT
        );
    }
    Ok(())
}

fn cmd_check_kernels(args: &Args) -> Result<(), String> {
    use syncopt::frontend::prepare_program;
    use syncopt::ir::lower::lower_main;

    let mut failed = 0usize;
    let mut rows = Vec::new();
    for kernel in syncopt::kernels::all_kernels(args.procs) {
        let cfg = lower_main(&prepare_program(&kernel.source).map_err(|e| {
            syncopt::core::diag::frontend_diagnostic(&e).render(&kernel.source, kernel.name)
        })?)
        .map_err(|e| format!("{}: {e}", kernel.name))?;
        let outcome = run_check(&cfg, args);
        failed += usize::from(outcome.errors() > 0);
        rows.push((kernel.name, outcome));
    }
    match args.format {
        Format::Json => {
            let kernels = rows
                .iter()
                .map(|(name, outcome)| {
                    json::Value::Obj(vec![
                        ("name".to_string(), json::Value::Str((*name).to_string())),
                        ("summary".to_string(), check_summary_json(outcome)),
                    ])
                })
                .collect();
            let report = json::Value::Obj(vec![
                ("procs".to_string(), json::Value::Int(i64::from(args.procs))),
                ("kernels".to_string(), json::Value::Arr(kernels)),
            ]);
            println!("{report}");
        }
        Format::Human => {
            println!(
                "{:<10} {:>9} {:>8} {:>6} {:>7} {:>6} {:>6}",
                "kernel", "conflicts", "ordered", "races", "proven", "warns", "notes"
            );
            for (name, outcome) in &rows {
                let r = &outcome.races;
                println!(
                    "{:<10} {:>9} {:>8} {:>6} {:>7} {:>6} {:>6}",
                    name,
                    r.races.len() + r.ordered.len(),
                    r.ordered.len(),
                    r.races.len(),
                    r.proven(),
                    outcome.count(Severity::Warning),
                    outcome.count(Severity::Note)
                );
            }
            let racy: Vec<&str> = rows
                .iter()
                .filter(|(_, o)| !o.races.race_free())
                .map(|(n, _)| *n)
                .collect();
            if racy.is_empty() {
                println!("all {} kernel(s) race-free", rows.len());
            } else {
                println!("race reports in: {}", racy.join(", "));
            }
        }
    }
    if failed > 0 {
        return Err(format!("check failed: {failed} kernel(s) with errors"));
    }
    Ok(())
}

/// Renders a pipeline error for the terminal: frontend and lowering errors
/// get the rustc-style snippet (code, span, caret line); simulation errors
/// have no source span and stay one-line.
fn render_err(src: &str, file: &str, e: &syncopt::SyncoptError) -> String {
    match e {
        syncopt::SyncoptError::Sim(_) => e.to_string(),
        spanned => spanned.to_diagnostic().render(src, file),
    }
}
