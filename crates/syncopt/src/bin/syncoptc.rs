//! `syncoptc` — command-line driver for the syncopt pipeline.
//!
//! ```text
//! syncoptc analyze <file> [--procs N]
//!     print conflict/delay-set statistics and the delay pairs
//! syncoptc opt <file> [--procs N] [--level L] [--delay D] [--dump]
//!     optimize and (with --dump) print the target CFG
//! syncoptc run <file> [--procs N] [--machine M] [--level L] [--delay D]
//!          [--sim-shards S] [--sim-partition P]
//!     simulate and report cycles, messages, stalls, final memory;
//!     --sim-shards > 1 runs the conservative parallel engine, which is
//!     bit-identical to the sequential reference at any shard count;
//!     --sim-partition picks the processor-to-shard assignment
//!     (P ∈ block|cyclic|profiled, default block) — results are
//!     bit-identical under every strategy, only load balance changes
//! syncoptc trace <file> [--procs N] [--machine M] [--level L] [--delay D]
//!          [--trace-limit N] [--out PATH]
//!     simulate with the structured timeline on and emit Chrome Trace
//!     Event Format JSON (schema syncopt.trace.v1) for Perfetto /
//!     chrome://tracing; verifies the span/counter accounting invariant
//! syncoptc explain <file> [--procs N] [--pair a b] [--format json]
//!     report why each delay pair was kept (back-path witness) or
//!     dropped (the sync fact that removed it), with source spans
//! syncoptc profile <file> [--procs N] [--machine M] [--level L] [--delay D]
//!     run blocking vs optimized and compare (the paper's Figure 12 shape)
//! syncoptc litmus <file> [--procs N]
//!     enumerate weak vs sequentially consistent outcomes
//! syncoptc check <file> [--procs N] [--strict] [--format json]
//!     static race/synchronization check; exit 1 if errors are found
//!     (`--strict` also runs the full lint suite and promotes warnings)
//! syncoptc check --kernels [--procs N] [--format json]
//!     check every built-in evaluation kernel, with per-kernel statistics
//! syncoptc lint <file> [--procs N] [--strict] [--format json]
//!     synchronization lint suite (schema syncopt.lint.v1): static
//!     deadlock detection (D001–D003), redundant-synchronization
//!     analysis (L001/L002), and fence-coverage verification of the
//!     codegen output at every optimization level (F001/F002); exit 1
//!     if errors are found
//! syncoptc lint --kernels [--procs N] [--format json]
//!     lint every built-in evaluation kernel
//! syncoptc lint --seeded <name> [--format json]
//!     lint a built-in seeded example (lock-cycle | barrier-divergence |
//!     postwait-deadlock | redundant-barrier)
//! syncoptc bench [--suite S] [--smoke] [--threads T] [--out PATH] [--check BASELINE]
//!     run a benchmark suite and emit its work-counter report (schema
//!     syncopt.bench_report.v1). S ∈ delay|sim|sim_parallel (default
//!     delay): `delay` runs the delay-set analysis scaling trajectory,
//!     `sim` the simulator-throughput sweep over the evaluation kernels,
//!     `sim_parallel` the sharded-engine sweep at 64/256/1024 simulated
//!     processors and 1/2/4/8 shards. `--check`
//!     compares the fresh counters against a committed baseline and exits
//!     1 on a >20% regression; `--threads` fans independent configs
//!     across workers without changing any counter
//! syncoptc ping|stats|metrics|shutdown [--socket PATH]
//!     control a running syncoptd: liveness probe, service statistics,
//!     Prometheus metrics, clean shutdown. `stats` renders a table
//!     (uptime, cache, per-op latency); `stats --format json` emits the
//!     syncopt.metrics.v1 document; `stats --watch [--interval-ms N]`
//!     refreshes the table live. `metrics` prints Prometheus text
//!     exposition format for scraping
//! syncoptc daemon-trace <reqlog> [--out PATH]
//!     convert a syncoptd request log (syncoptd --log FILE, schema
//!     syncopt.reqlog.v1) into Chrome Trace Event Format (schema
//!     syncopt.trace.v1) for Perfetto: one track per connection, one
//!     slice per request with nested decode/execute/encode phases;
//!     verifies span accounting (phases sum to recorded wall time)
//! ```
//!
//! `opt --dot` emits Graphviz instead of text; `run --trace` appends the
//! first 200 trace events; `run --emit-report <path>` writes the pipeline
//! report JSON to a file; `check --strict` promotes warnings to errors.
//! `check` and `lint` accept `--deny CODE` (force a diagnostic code to
//! error) and `--allow CODE` (demote it to a note); `--allow` wins over
//! `--strict` promotion.
//! `run` and `profile` honor `--format json` (machine-readable report on
//! stdout); `profile` also accepts `--format table` for the side-by-side
//! comparison (the default). With `--format json` every command emits
//! exactly one schema-versioned JSON document on stdout; diagnostics and
//! notes go to stderr.
//!
//! Every command except `bench` also accepts `--daemon [--socket PATH]`,
//! which sends the query to a running `syncoptd` (speaking
//! syncopt.rpc.v1) instead of analyzing in-process. The daemon keeps a
//! content-addressed artifact cache across requests, so repeated queries
//! are answered without recomputing, with byte-identical output. File
//! artifacts (`--emit-report`, `trace --out`) are returned over the
//! protocol and written locally by the client.
//!
//! ```text
//! L ∈ blocking|pipelined|oneway|full      (default pipelined)
//! D ∈ ss|sync                             (default sync)
//! M ∈ cm5|t3d|dash                        (default cm5)
//! N                                        (default 4)
//! ```

use std::process::ExitCode;
use syncopt::commands::{execute, parse_delay, parse_level, CmdOut, Format, Query};
use syncopt::core::diag::json;
use syncopt::session::AnalysisSession;
use syncopt::{DelayChoice, OptLevel, ShardPartition};

struct Args {
    command: String,
    file: String,
    procs: u32,
    level: OptLevel,
    delay: DelayChoice,
    machine: String,
    dump: bool,
    dot: bool,
    trace: bool,
    strict: bool,
    kernels: bool,
    format: Format,
    emit_report: Option<String>,
    threads: usize,
    sim_shards: usize,
    sim_partition: ShardPartition,
    smoke: bool,
    suite: String,
    out: Option<String>,
    check_baseline: Option<String>,
    trace_limit: Option<usize>,
    pair: Option<(u32, u32)>,
    deny: Vec<String>,
    allow: Vec<String>,
    seeded: Option<String>,
    daemon: bool,
    socket: Option<String>,
    watch: bool,
    interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let command = argv.next().ok_or("missing command")?;
    // The input file is optional for `check --kernels`.
    let file = match argv.peek() {
        Some(a) if !a.starts_with("--") => argv.next().unwrap(),
        _ => String::new(),
    };
    let mut args = Args {
        command,
        file,
        procs: 4,
        level: OptLevel::Pipelined,
        delay: DelayChoice::SyncRefined,
        machine: "cm5".to_string(),
        dump: false,
        dot: false,
        trace: false,
        strict: false,
        kernels: false,
        format: Format::Human,
        emit_report: None,
        threads: 1,
        sim_shards: 1,
        sim_partition: ShardPartition::Block,
        smoke: false,
        suite: "delay".to_string(),
        out: None,
        check_baseline: None,
        trace_limit: None,
        pair: None,
        deny: Vec::new(),
        allow: Vec::new(),
        seeded: None,
        daemon: false,
        socket: None,
        watch: false,
        interval_ms: 1000,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--procs" => {
                args.procs = argv
                    .next()
                    .ok_or("--procs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --procs: {e}"))?;
            }
            "--level" => {
                let label = argv.next().ok_or("--level needs a value")?;
                args.level =
                    parse_level(&label).ok_or_else(|| format!("unknown level `{label}`"))?;
            }
            "--delay" => {
                let label = argv.next().ok_or("--delay needs a value")?;
                args.delay =
                    parse_delay(&label).ok_or_else(|| format!("unknown delay choice `{label}`"))?;
            }
            "--machine" => {
                args.machine = argv.next().ok_or("--machine needs a value")?;
            }
            "--dump" => args.dump = true,
            "--dot" => args.dot = true,
            "--trace" => args.trace = true,
            "--strict" => args.strict = true,
            "--kernels" => args.kernels = true,
            "--format" => {
                let label = argv.next().ok_or("--format needs a value")?;
                args.format =
                    Format::parse(&label).ok_or_else(|| format!("unknown format `{label}`"))?;
            }
            "--emit-report" => {
                args.emit_report = Some(argv.next().ok_or("--emit-report needs a path")?);
            }
            "--threads" => {
                args.threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--sim-shards" => {
                args.sim_shards = argv
                    .next()
                    .ok_or("--sim-shards needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --sim-shards: {e}"))?;
            }
            "--sim-partition" => {
                let label = argv
                    .next()
                    .ok_or("--sim-partition needs a value (block|cyclic|profiled)")?;
                args.sim_partition = ShardPartition::from_label(&label).ok_or_else(|| {
                    format!("unknown partition strategy `{label}` (block|cyclic|profiled)")
                })?;
            }
            "--smoke" => args.smoke = true,
            "--suite" => {
                args.suite = argv
                    .next()
                    .ok_or("--suite needs a value (delay|sim|sim_parallel)")?;
            }
            "--out" => {
                args.out = Some(argv.next().ok_or("--out needs a path")?);
            }
            "--check" => {
                args.check_baseline = Some(argv.next().ok_or("--check needs a baseline path")?);
            }
            "--trace-limit" => {
                args.trace_limit = Some(
                    argv.next()
                        .ok_or("--trace-limit needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --trace-limit: {e}"))?,
                );
            }
            "--deny" => {
                args.deny.push(known_code(
                    argv.next().ok_or("--deny needs a diagnostic code")?,
                )?);
            }
            "--allow" => {
                args.allow.push(known_code(
                    argv.next().ok_or("--allow needs a diagnostic code")?,
                )?);
            }
            "--seeded" => {
                args.seeded = Some(argv.next().ok_or("--seeded needs an example name")?);
            }
            "--pair" => {
                let a = argv
                    .next()
                    .ok_or("--pair needs two access ids (e.g. --pair 3 7)")?;
                let b = argv
                    .next()
                    .ok_or("--pair needs two access ids (e.g. --pair 3 7)")?;
                let parse = |s: &str| {
                    s.trim_start_matches('a')
                        .parse::<u32>()
                        .map_err(|e| format!("bad --pair access id `{s}`: {e}"))
                };
                args.pair = Some((parse(&a)?, parse(&b)?));
            }
            "--daemon" => args.daemon = true,
            "--socket" => {
                args.socket = Some(argv.next().ok_or("--socket needs a path")?);
            }
            "--watch" => args.watch = true,
            "--interval-ms" => {
                args.interval_ms = argv
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --interval-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let file_optional = (args.command == "check" && args.kernels)
        || (args.command == "lint" && (args.kernels || args.seeded.is_some()))
        || matches!(
            args.command.as_str(),
            "bench" | "ping" | "stats" | "metrics" | "shutdown"
        );
    if args.file.is_empty() && !file_optional {
        return Err("missing input file".to_string());
    }
    Ok(args)
}

/// Validates a `--deny`/`--allow` argument against the known code list.
fn known_code(code: String) -> Result<String, String> {
    if syncopt::core::KNOWN_CODES.contains(&code.as_str()) {
        Ok(code)
    } else {
        Err(format!(
            "unknown diagnostic code `{code}` (known: {})",
            syncopt::core::KNOWN_CODES.join(", ")
        ))
    }
}

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (`syncoptc ... | head`):
    // println! panics on EPIPE, which is noise, not an error.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("Broken pipe"))
            .unwrap_or(false);
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("syncoptc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nrun with: syncoptc <analyze|opt|run|trace|explain|profile|litmus|check|lint|bench> <file> [flags]"
        )
    })?;
    if args.command == "bench" {
        if args.daemon {
            return Err(
                "`bench` measures this machine and does not route through the daemon".to_string(),
            );
        }
        return cmd_bench(&args);
    }
    if matches!(
        args.command.as_str(),
        "ping" | "stats" | "metrics" | "shutdown"
    ) {
        return cmd_daemon_control(&args);
    }
    if args.command == "daemon-trace" {
        return cmd_daemon_trace(&args);
    }
    // Read the input locally even in daemon mode: the source travels in
    // the query, so the daemon never needs access to the client's files.
    let needs_file = !(args.kernels || args.seeded.is_some());
    let source = if needs_file {
        Some(
            std::fs::read_to_string(&args.file)
                .map_err(|e| format!("cannot read {}: {e}", args.file))?,
        )
    } else {
        None
    };
    let query = Query {
        command: args.command.clone(),
        file: args.file.clone(),
        source,
        procs: args.procs,
        level: args.level,
        delay: args.delay,
        machine: args.machine.clone(),
        dump: args.dump,
        dot: args.dot,
        trace: args.trace,
        strict: args.strict,
        kernels: args.kernels,
        format: args.format,
        emit_report: args.emit_report.clone(),
        threads: args.threads,
        sim_shards: args.sim_shards,
        sim_partition: args.sim_partition,
        out: args.out.clone(),
        trace_limit: args.trace_limit,
        pair: args.pair,
        deny: args.deny.clone(),
        allow: args.allow.clone(),
        seeded: args.seeded.clone(),
    };
    let out = if args.daemon {
        daemon_query(&args, &query)?
    } else {
        execute(&mut AnalysisSession::new(), &query)
    };
    emit(out)
}

/// Prints a command result exactly as the engine produced it: the file
/// artifact first (matching the pre-daemon flag order), then stdout
/// verbatim, then the failure (if any) via the exit-1 path.
fn emit(out: CmdOut) -> Result<(), String> {
    if let Some(file) = out.file {
        std::fs::write(&file.path, &file.content)
            .map_err(|e| format!("cannot write {}: {e}", file.path))?;
        eprintln!("{}", file.note);
    }
    print!("{}", out.stdout);
    match out.failure {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

#[cfg(unix)]
fn socket_path(args: &Args) -> std::path::PathBuf {
    args.socket
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(syncopt::daemon::default_socket_path)
}

#[cfg(unix)]
fn connect(args: &Args) -> Result<syncopt::client::DaemonClient, String> {
    let path = socket_path(args);
    syncopt::client::DaemonClient::connect(&path).map_err(|e| {
        format!(
            "cannot connect to syncoptd at {}: {e} (start it with `syncoptd --socket {}`)",
            path.display(),
            path.display()
        )
    })
}

#[cfg(unix)]
fn daemon_query(args: &Args, query: &Query) -> Result<CmdOut, String> {
    let (out, _cache) = connect(args)?.query(query)?;
    Ok(out)
}

#[cfg(unix)]
fn cmd_daemon_control(args: &Args) -> Result<(), String> {
    let mut client = connect(args)?;
    match args.command.as_str() {
        "ping" => {
            client.ping()?;
            println!("pong");
        }
        "stats" => {
            if args.watch {
                // Refresh the table until interrupted (or the daemon
                // goes away, which surfaces as the call error).
                loop {
                    let stats = client.stats()?;
                    // Clear the screen and home the cursor.
                    print!(
                        "\x1b[2J\x1b[H{}",
                        syncopt::report::render_stats_table(&stats)
                    );
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                    std::thread::sleep(std::time::Duration::from_millis(args.interval_ms.max(50)));
                }
            }
            let stats = client.stats()?;
            match args.format {
                // The machine format is the syncopt.metrics.v1 document
                // when telemetry is on; a --no-telemetry daemon falls
                // back to the raw rpc.v1 stats payload.
                Format::Json => match stats.get("metrics") {
                    Some(doc) => println!("{doc}"),
                    None => {
                        let mut doc = vec![(
                            "schema".to_string(),
                            json::Value::Str(syncopt::rpc::RPC_SCHEMA.to_string()),
                        )];
                        if let json::Value::Obj(fields) = stats {
                            doc.extend(fields);
                        }
                        println!("{}", json::Value::Obj(doc));
                    }
                },
                Format::Human => print!("{}", syncopt::report::render_stats_table(&stats)),
            }
        }
        "metrics" => {
            let text = client.metrics()?;
            print!("{text}");
            if !text.ends_with('\n') {
                println!();
            }
        }
        "shutdown" => {
            client.shutdown()?;
            eprintln!("syncoptd stopped");
        }
        _ => unreachable!("guarded by the caller"),
    }
    Ok(())
}

/// `daemon-trace`: convert a `syncopt.reqlog.v1` request log into the
/// `syncopt.trace.v1` Chrome Trace file, verifying span accounting.
/// Runs locally — no daemon connection needed.
fn cmd_daemon_trace(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let entries =
        syncopt::telemetry::parse_reqlog(&text).map_err(|e| format!("{}: {e}", args.file))?;
    syncopt::telemetry::verify_reqlog_accounting(&entries)
        .map_err(|e| format!("{}: span accounting violated: {e}", args.file))?;
    let trace = syncopt::telemetry::daemon_chrome_trace(&entries);
    match &args.out {
        Some(path) => {
            std::fs::write(path, format!("{trace}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "daemon trace written to {path}: {} request(s) on {} connection(s), {} us wall time",
                trace.get("requests").and_then(json::Value::as_int).unwrap_or(0),
                trace.get("connections").and_then(json::Value::as_int).unwrap_or(0),
                trace.get("wall_us").and_then(json::Value::as_int).unwrap_or(0),
            );
        }
        None => println!("{trace}"),
    }
    Ok(())
}

#[cfg(not(unix))]
fn daemon_query(_args: &Args, _query: &Query) -> Result<CmdOut, String> {
    Err("--daemon requires Unix domain sockets".to_string())
}

#[cfg(not(unix))]
fn cmd_daemon_control(_args: &Args) -> Result<(), String> {
    Err("daemon control requires Unix domain sockets".to_string())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    type Checker = Box<dyn Fn(&json::Value) -> Result<(), String>>;
    let (report_json, table, check): (json::Value, String, Checker) = match args.suite.as_str() {
        "delay" => {
            let report = syncopt::bench::run_bench(args.smoke, args.threads)
                .map_err(|e| format!("bench program failed to compile: {e}"))?;
            (
                report.to_json(),
                report.render_table(),
                Box::new(move |b| report.check_against(b)),
            )
        }
        "sim" => {
            let report = syncopt::simbench::run_sim_bench(args.smoke, args.threads)
                .map_err(|e| format!("sim bench failed: {e}"))?;
            (
                report.to_json(),
                report.render_table(),
                Box::new(move |b| report.check_against(b)),
            )
        }
        "sim_parallel" => {
            let report = syncopt::parbench::run_par_bench(args.smoke, args.threads)
                .map_err(|e| format!("parallel sim bench failed: {e}"))?;
            (
                report.to_json(),
                report.render_table(),
                Box::new(move |b| report.check_against(b)),
            )
        }
        other => {
            return Err(format!(
                "unknown bench suite `{other}` (delay|sim|sim_parallel)"
            ))
        }
    };
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{report_json}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("bench report written to {path}");
    }
    match args.format {
        Format::Json => println!("{report_json}"),
        Format::Human => print!("{table}"),
    }
    if let Some(baseline_path) = &args.check_baseline {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let baseline = json::Value::parse(&text)
            .map_err(|e| format!("baseline {baseline_path} is not valid JSON: {e}"))?;
        check(&baseline).map_err(|e| format!("{baseline_path}: {e}"))?;
        eprintln!(
            "work counters within {}% of {baseline_path}",
            syncopt::bench::TOLERANCE_PCT
        );
    }
    Ok(())
}
