//! `syncoptd` — the long-running syncopt analysis daemon.
//!
//! ```text
//! syncoptd [--socket PATH] [--cache-capacity N]
//! ```
//!
//! Binds a Unix domain socket (default: `syncoptd.sock` in the system
//! temp directory) and serves `syncopt.rpc.v1` requests until a client
//! sends `shutdown`. All clients share one analysis session, so repeated
//! queries over the same sources are answered from the content-addressed
//! artifact cache. Run queries against it with `syncoptc <cmd> --daemon
//! [--socket PATH]`; see `docs/API.md` for the wire protocol.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    use std::process::ExitCode;
    use syncopt::daemon::{default_socket_path, Daemon};
    use syncopt::session::AnalysisSession;

    let mut socket = default_socket_path();
    let mut capacity = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--socket" => match argv.next() {
                Some(path) => socket = path.into(),
                None => return usage("--socket needs a path"),
            },
            "--cache-capacity" => match argv.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => capacity = Some(n),
                _ => return usage("--cache-capacity needs a positive integer"),
            },
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    let session = match capacity {
        Some(n) => AnalysisSession::with_capacity(n),
        None => AnalysisSession::new(),
    };
    let daemon = match Daemon::bind_with_session(&socket, session) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("syncoptd: cannot bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("syncoptd: serving on {}", socket.display());
    match daemon.run() {
        Ok(()) => {
            eprintln!("syncoptd: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("syncoptd: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn usage(msg: &str) -> std::process::ExitCode {
    eprintln!("syncoptd: {msg}\nrun with: syncoptd [--socket PATH] [--cache-capacity N]");
    std::process::ExitCode::FAILURE
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("syncoptd: the daemon requires Unix domain sockets");
    std::process::ExitCode::FAILURE
}
