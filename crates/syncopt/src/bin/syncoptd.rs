//! `syncoptd` — the long-running syncopt analysis daemon.
//!
//! ```text
//! syncoptd [--socket PATH] [--cache-capacity N]
//!          [--log FILE] [--slow-ms N] [--no-telemetry]
//! ```
//!
//! Binds a Unix domain socket (default: `syncoptd.sock` in the system
//! temp directory) and serves `syncopt.rpc.v1` requests until a client
//! sends `shutdown`. All clients share one analysis session, so repeated
//! queries over the same sources are answered from the content-addressed
//! artifact cache. Run queries against it with `syncoptc <cmd> --daemon
//! [--socket PATH]`; see `docs/API.md` for the wire protocol.
//!
//! Telemetry is on by default: requests get monotonic ids and
//! decode/execute/encode spans, served back via `syncoptc stats`
//! (`syncopt.metrics.v1`) and `syncoptc metrics` (Prometheus text).
//! `--log FILE` additionally appends one `syncopt.reqlog.v1` JSON line
//! per request (convert to a Perfetto timeline with `syncoptc
//! daemon-trace`); `--slow-ms N` sets the slow-request threshold
//! (default 500); `--no-telemetry` disables all of it. Setting
//! `SYNCOPT_METRICS_SCRUB=1` zeroes timing-derived metric fields while
//! keeping counts exact, for byte-stable golden checks.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    use std::process::ExitCode;
    use syncopt::daemon::{default_socket_path, Daemon};
    use syncopt::session::AnalysisSession;
    use syncopt::telemetry::TelemetryConfig;

    let mut socket = default_socket_path();
    let mut capacity = None;
    let mut log = None;
    let mut slow_us = None;
    let mut telemetry_on = true;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--socket" => match argv.next() {
                Some(path) => socket = path.into(),
                None => return usage("--socket needs a path"),
            },
            "--cache-capacity" => match argv.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => capacity = Some(n),
                _ => return usage("--cache-capacity needs a positive integer"),
            },
            "--log" => match argv.next() {
                Some(path) => log = Some(std::path::PathBuf::from(path)),
                None => return usage("--log needs a file path"),
            },
            "--slow-ms" => match argv.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => slow_us = Some(ms.saturating_mul(1000)),
                _ => return usage("--slow-ms needs a non-negative integer"),
            },
            "--no-telemetry" => telemetry_on = false,
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if !telemetry_on && (log.is_some() || slow_us.is_some()) {
        return usage("--no-telemetry conflicts with --log/--slow-ms");
    }
    let telemetry = telemetry_on.then(|| TelemetryConfig {
        log,
        slow_us,
        scrub: std::env::var("SYNCOPT_METRICS_SCRUB").is_ok_and(|v| v == "1"),
    });
    let session = match capacity {
        Some(n) => AnalysisSession::with_capacity(n),
        None => AnalysisSession::new(),
    };
    let daemon = match Daemon::bind_with(&socket, session, telemetry) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("syncoptd: cannot bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("syncoptd: serving on {}", socket.display());
    match daemon.run() {
        Ok(()) => {
            eprintln!("syncoptd: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("syncoptd: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn usage(msg: &str) -> std::process::ExitCode {
    eprintln!(
        "syncoptd: {msg}\nrun with: syncoptd [--socket PATH] [--cache-capacity N] [--log FILE] [--slow-ms N] [--no-telemetry]"
    );
    std::process::ExitCode::FAILURE
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("syncoptd: the daemon requires Unix domain sockets");
    std::process::ExitCode::FAILURE
}
