//! The shared command engine behind `syncoptc` and `syncoptd`.
//!
//! Every user-facing subcommand (`analyze`, `opt`, `run`, `trace`,
//! `explain`, `profile`, `litmus`, `check`, `lint`) is a pure function
//! from a [`Query`] to a [`CmdOut`]: the exact bytes for stdout, an
//! optional file artifact (written by the *caller*, so a daemon never
//! touches the client's filesystem), and an optional failure message for
//! stderr + exit code 1. The CLI running a query directly and the daemon
//! serving it over `syncopt.rpc.v1` both dispatch through [`execute`],
//! which is what makes daemon-mode output byte-identical to direct-mode
//! output.
//!
//! With `--format json` every command emits exactly one schema-versioned
//! JSON document on stdout; diagnostics and progress notes go to stderr.

use crate::report::level_label;
use crate::session::{AnalysisSession, SessionOptions};
use crate::{DelayChoice, OptLevel, SyncoptError, TraceLevel, DEFAULT_TRACE_LIMIT};
use std::fmt::Write as _;
use std::sync::Arc;
use syncopt_core::diag::{json, sort_diagnostics, Diagnostic, Severity};
use syncopt_core::races::{race_diagnostics, RaceAnalysis};
use syncopt_core::LINT_SCHEMA;
use syncopt_machine::litmus::{sc_outcomes, weak_outcomes, Outcome};
use syncopt_machine::{MachineConfig, ShardPartition};

/// Schema identifier of the `check` JSON document.
pub const CHECK_SCHEMA: &str = "syncopt.check.v1";
/// Schema identifier of the `analyze` JSON document.
pub const ANALYSIS_SCHEMA: &str = "syncopt.analysis.v1";
/// Schema identifier of the `opt` JSON document.
pub const OPT_SCHEMA: &str = "syncopt.opt.v1";
/// Schema identifier of the `litmus` JSON document.
pub const LITMUS_SCHEMA: &str = "syncopt.litmus.v1";

/// Output format of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable text/tables.
    #[default]
    Human,
    /// One schema-versioned JSON document on stdout.
    Json,
}

impl Format {
    /// The stable wire label (`human` / `json`).
    pub fn label(self) -> &'static str {
        match self {
            Format::Human => "human",
            Format::Json => "json",
        }
    }

    /// Parses a wire/CLI label.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "human" | "table" => Some(Format::Human),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// Parses an optimization-level label (`blocking`, `pipelined`,
/// `oneway`, `full`) — the inverse of [`level_label`].
pub fn parse_level(s: &str) -> Option<OptLevel> {
    match s {
        "blocking" => Some(OptLevel::Blocking),
        "pipelined" => Some(OptLevel::Pipelined),
        "oneway" => Some(OptLevel::OneWay),
        "full" => Some(OptLevel::Full),
        _ => None,
    }
}

/// Parses a delay-set choice label (`ss`, `sync`).
pub fn parse_delay(s: &str) -> Option<DelayChoice> {
    match s {
        "ss" => Some(DelayChoice::ShashaSnir),
        "sync" => Some(DelayChoice::SyncRefined),
        _ => None,
    }
}

/// The short CLI/wire label of a delay-set choice (`ss`, `sync`) — the
/// inverse of [`parse_delay`]. (JSON *reports* use the longer
/// [`crate::report::delay_label`] spellings.)
pub fn delay_cli_label(delay: DelayChoice) -> &'static str {
    match delay {
        DelayChoice::ShashaSnir => "ss",
        DelayChoice::SyncRefined => "sync",
    }
}

/// One command request: which subcommand to run, over what source, with
/// which pipeline knobs. This is the unit the daemon protocol serializes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Subcommand: `analyze`, `opt`, `run`, `trace`, `explain`,
    /// `profile`, `litmus`, `check`, or `lint`.
    pub command: String,
    /// Display name for diagnostics (usually the input path).
    pub file: String,
    /// The program text. `None` for kernel/seeded queries, which carry
    /// their own sources.
    pub source: Option<String>,
    /// Processor count to analyze/simulate for.
    pub procs: u32,
    /// Optimization level.
    pub level: OptLevel,
    /// Delay-set choice.
    pub delay: DelayChoice,
    /// Machine preset name (`cm5`, `t3d`, `dash`).
    pub machine: String,
    /// `opt --dump`: print the optimized CFG.
    pub dump: bool,
    /// `opt --dot`: emit Graphviz.
    pub dot: bool,
    /// `run --trace`: capture and print the first events.
    pub trace: bool,
    /// `check`/`lint --strict`: promote warnings to errors.
    pub strict: bool,
    /// `check`/`lint --kernels`: run over every built-in kernel.
    pub kernels: bool,
    /// Output format.
    pub format: Format,
    /// `run --emit-report PATH`: also produce the pipeline-report JSON
    /// as a file artifact.
    pub emit_report: Option<String>,
    /// Worker threads for analysis loops (results identical for any
    /// value).
    pub threads: usize,
    /// `run --sim-shards N`: simulation shards for the conservative
    /// parallel engine (observable results identical for any value;
    /// rejected by `trace` above 1).
    pub sim_shards: usize,
    /// `run --sim-partition STRAT`: processor-to-shard assignment for
    /// the sharded engine (observable results identical for any
    /// strategy; rejected by `trace` when not the default `block`).
    pub sim_partition: ShardPartition,
    /// `trace --out PATH`: produce the Chrome-trace JSON as a file
    /// artifact.
    pub out: Option<String>,
    /// Trace event cap.
    pub trace_limit: Option<usize>,
    /// `explain --pair a b`: restrict to one access pair.
    pub pair: Option<(u32, u32)>,
    /// Diagnostic codes forced to error.
    pub deny: Vec<String>,
    /// Diagnostic codes demoted to note.
    pub allow: Vec<String>,
    /// `lint --seeded NAME`: a built-in seeded example.
    pub seeded: Option<String>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            command: String::new(),
            file: String::new(),
            source: None,
            procs: 4,
            level: OptLevel::Pipelined,
            delay: DelayChoice::SyncRefined,
            machine: "cm5".to_string(),
            dump: false,
            dot: false,
            trace: false,
            strict: false,
            kernels: false,
            format: Format::Human,
            emit_report: None,
            threads: 1,
            sim_shards: 1,
            sim_partition: ShardPartition::Block,
            out: None,
            trace_limit: None,
            pair: None,
            deny: Vec::new(),
            allow: Vec::new(),
            seeded: None,
        }
    }
}

/// A file artifact a query produced. The caller — the CLI process, never
/// the daemon — writes `content` to `path` and prints `note` to stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileOutput {
    /// Destination path (as given by the user).
    pub path: String,
    /// File contents.
    pub content: String,
    /// Progress note for stderr.
    pub note: String,
}

/// The complete, deterministic result of one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CmdOut {
    /// Exact bytes for stdout.
    pub stdout: String,
    /// Optional file artifact (e.g. `run --emit-report`, `trace --out`).
    pub file: Option<FileOutput>,
    /// Failure message for stderr; its presence means exit code 1.
    pub failure: Option<String>,
}

impl CmdOut {
    fn ok(stdout: String) -> CmdOut {
        CmdOut {
            stdout,
            file: None,
            failure: None,
        }
    }

    fn fail(msg: String) -> CmdOut {
        CmdOut {
            stdout: String::new(),
            file: None,
            failure: Some(msg),
        }
    }
}

/// Runs one query against a session. Every artifact the query needs is
/// served from — or inserted into — the session's content-addressed
/// cache, so repeated queries over unchanged sources reuse prior work
/// while producing byte-identical output.
pub fn execute(session: &mut AnalysisSession, q: &Query) -> CmdOut {
    match q.command.as_str() {
        "analyze" => with_source(q, |src| cmd_analyze(session, src, q)),
        "opt" => with_source(q, |src| cmd_opt(session, src, q)),
        "run" => with_source(q, |src| cmd_run(session, src, q)),
        "trace" => with_source(q, |src| cmd_trace(session, src, q)),
        "explain" => with_source(q, |src| cmd_explain(session, src, q)),
        "profile" => with_source(q, |src| cmd_profile(session, src, q)),
        "litmus" => with_source(q, |src| cmd_litmus(session, src, q)),
        "check" if q.kernels => cmd_check_kernels(session, q),
        "check" => with_source(q, |src| cmd_check(session, src, q)),
        "lint" if q.kernels => cmd_lint_kernels(session, q),
        "lint" => cmd_lint(session, q),
        other => CmdOut::fail(format!("unknown command `{other}`")),
    }
}

fn with_source(q: &Query, f: impl FnOnce(&str) -> CmdOut) -> CmdOut {
    match &q.source {
        Some(src) => f(src),
        None => CmdOut::fail(format!("command `{}` needs a source file", q.command)),
    }
}

fn session_options(q: &Query, level: OptLevel) -> SessionOptions {
    SessionOptions {
        procs: Some(q.procs),
        level,
        delay: q.delay,
        trace: TraceLevel::Off,
        trace_limit: q.trace_limit.unwrap_or(DEFAULT_TRACE_LIMIT),
        threads: q.threads,
        sim_shards: q.sim_shards,
        sim_partition: q.sim_partition,
    }
}

fn machine_config(name: &str, procs: u32) -> Result<MachineConfig, String> {
    Ok(match name {
        "cm5" => MachineConfig::cm5(procs),
        "t3d" => MachineConfig::t3d(procs),
        "dash" => MachineConfig::dash(procs),
        other => return Err(format!("unknown machine `{other}`")),
    })
}

/// Renders a pipeline error for the terminal: frontend and lowering errors
/// get the rustc-style snippet (code, span, caret line); simulation errors
/// have no source span and stay one-line.
pub fn render_err(src: &str, file: &str, e: &SyncoptError) -> String {
    match e {
        SyncoptError::Sim(_) => e.to_string(),
        spanned => spanned.to_diagnostic().render(src, file),
    }
}

fn cmd_analyze(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let c = match session.compile(src, &session_options(q, OptLevel::Blocking)) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let s = c.analysis.stats();
    let warnings = syncopt_core::sync_warnings(&c.source_cfg);
    if q.format == Format::Json {
        let pairs = c
            .analysis
            .delay_sync
            .pairs()
            .into_iter()
            .map(|(u, v)| {
                json::Value::Obj(vec![
                    ("u".to_string(), json::Value::Int(u.index() as i64)),
                    ("v".to_string(), json::Value::Int(v.index() as i64)),
                ])
            })
            .collect();
        let warning_values = warnings
            .iter()
            .map(|w| json::Value::Str(w.to_string()))
            .collect();
        let doc = json::Value::Obj(vec![
            (
                "schema".to_string(),
                json::Value::Str(ANALYSIS_SCHEMA.to_string()),
            ),
            ("file".to_string(), json::Value::Str(q.file.clone())),
            ("procs".to_string(), json::Value::Int(i64::from(q.procs))),
            (
                "summary".to_string(),
                json::Value::Obj(vec![
                    ("accesses".to_string(), json::Value::Int(s.accesses as i64)),
                    (
                        "conflict_pairs".to_string(),
                        json::Value::Int(s.conflict_pairs as i64),
                    ),
                    ("delay_ss".to_string(), json::Value::Int(s.delay_ss as i64)),
                    (
                        "delay_sync".to_string(),
                        json::Value::Int(s.delay_sync as i64),
                    ),
                    (
                        "precedence_pairs".to_string(),
                        json::Value::Int(s.precedence_pairs as i64),
                    ),
                    (
                        "aligned_barriers".to_string(),
                        json::Value::Int(s.aligned_barriers as i64),
                    ),
                ]),
            ),
            ("delay_pairs".to_string(), json::Value::Arr(pairs)),
            ("warnings".to_string(), json::Value::Arr(warning_values)),
        ]);
        return CmdOut::ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "access sites:          {}", s.accesses);
    let _ = writeln!(out, "conflicting pairs:     {}", s.conflict_pairs);
    let _ = writeln!(out, "|D_SS| (Shasha-Snir):  {}", s.delay_ss);
    let _ = writeln!(out, "|D|    (refined):      {}", s.delay_sync);
    let _ = writeln!(out, "|R|    (precedence):   {}", s.precedence_pairs);
    let _ = writeln!(out, "aligned barriers:      {}", s.aligned_barriers);
    out.push('\n');
    let _ = writeln!(out, "refined delay pairs:");
    for (u, v) in c.analysis.delay_sync.pairs() {
        let d = |a: syncopt_ir::ids::AccessId| {
            let i = c.source_cfg.accesses.info(a);
            let var = i
                .var
                .map(|v| c.source_cfg.vars.info(v).name.clone())
                .unwrap_or_default();
            let (line, col) = i.span.line_col(src);
            format!("{a} {:?} {var} @{line}:{col}", i.kind)
        };
        let _ = writeln!(out, "  {}  →  {}", d(u), d(v));
    }
    if !warnings.is_empty() {
        out.push('\n');
        for w in warnings {
            let _ = writeln!(out, "warning: {w}");
        }
    }
    CmdOut::ok(out)
}

fn cmd_opt(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let c = match session.compile(src, &session_options(q, q.level)) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    if q.format == Format::Json {
        let st = &c.optimized.stats;
        let mut fields = vec![
            (
                "schema".to_string(),
                json::Value::Str(OPT_SCHEMA.to_string()),
            ),
            ("file".to_string(), json::Value::Str(q.file.clone())),
            ("procs".to_string(), json::Value::Int(i64::from(q.procs))),
            (
                "level".to_string(),
                json::Value::Str(level_label(q.level).to_string()),
            ),
            (
                "delay".to_string(),
                json::Value::Str(crate::report::delay_label(q.delay).to_string()),
            ),
            ("stats".to_string(), crate::report::optstats_json(st)),
        ];
        if q.dump {
            fields.push((
                "cfg".to_string(),
                json::Value::Str(syncopt_ir::print::cfg_to_string(&c.optimized.cfg)),
            ));
        }
        if q.dot {
            fields.push((
                "dot".to_string(),
                json::Value::Str(syncopt_ir::print::cfg_to_dot(&c.optimized.cfg, &q.file)),
            ));
        }
        return CmdOut::ok(format!("{}\n", json::Value::Obj(fields)));
    }
    if q.dot {
        return CmdOut::ok(format!(
            "{}\n",
            syncopt_ir::print::cfg_to_dot(&c.optimized.cfg, &q.file)
        ));
    }
    let mut out = format!("{:#?}\n", c.optimized.stats);
    if q.dump {
        let _ = writeln!(
            out,
            "\n{}",
            syncopt_ir::print::cfg_to_string(&c.optimized.cfg)
        );
    }
    CmdOut::ok(out)
}

fn cmd_run(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let config = match machine_config(&q.machine, q.procs) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(e),
    };
    let mut opts = session_options(q, q.level);
    if q.trace {
        opts.trace = TraceLevel::Events;
    }
    let r = match session.run(src, &opts, &config) {
        Ok(r) => r,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let file = q.emit_report.as_ref().map(|path| FileOutput {
        path: path.clone(),
        content: format!("{}\n", r.report().to_json()),
        note: format!("pipeline report written to {path}"),
    });
    if q.format == Format::Json {
        return CmdOut {
            stdout: format!("{}\n", r.report().to_json()),
            file,
            failure: None,
        };
    }
    let mut out = String::new();
    if let Some(trace) = &r.trace {
        let _ = writeln!(out, "--- trace (first 200 events) ---");
        for e in trace.events().iter().take(200) {
            let _ = writeln!(out, "{e}");
        }
        let _ = writeln!(out, "--------------------------------");
    }
    let _ = writeln!(
        out,
        "machine:            {} × {}",
        config.procs, config.name
    );
    let _ = writeln!(out, "execution:          {} cycles", r.sim.exec_cycles);
    let _ = writeln!(out, "messages:           {}", r.sim.net.total_messages());
    let _ = writeln!(
        out,
        "  gets/replies:     {}/{}",
        r.sim.net.get_requests, r.sim.net.get_replies
    );
    let _ = writeln!(
        out,
        "  puts/acks:        {}/{}",
        r.sim.net.put_requests, r.sim.net.put_acks
    );
    let _ = writeln!(out, "  stores:           {}", r.sim.net.store_requests);
    let _ = writeln!(out, "  barriers:         {}", r.sim.net.barriers);
    let _ = writeln!(
        out,
        "stalls (cycles):    sync {} | barrier {} | wait {} | lock {} | blocking {}",
        r.sim.stalls.sync,
        r.sim.stalls.barrier,
        r.sim.stalls.wait,
        r.sim.stalls.lock,
        r.sim.stalls.blocking
    );
    let _ = writeln!(out, "barriers aligned:   {}", r.sim.barriers_aligned);
    let _ = writeln!(out, "final shared memory:");
    for (var, vals) in &r.sim.memory {
        let name = &r.compiled.source_cfg.vars.info(*var).name;
        if vals.len() == 1 {
            let _ = writeln!(out, "  {name} = {}", vals[0]);
        } else {
            let shown: Vec<String> = vals.iter().take(16).map(|v| v.to_string()).collect();
            let ellipsis = if vals.len() > 16 { ", ..." } else { "" };
            let _ = writeln!(out, "  {name} = [{}{}]", shown.join(", "), ellipsis);
        }
    }
    CmdOut {
        stdout: out,
        file,
        failure: None,
    }
}

fn cmd_trace(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    if q.sim_shards > 1 {
        return CmdOut::fail(format!(
            "trace requires the sequential engine: event traces interleave \
             all processors in one global timeline, which the sharded engine \
             does not record (got --sim-shards {}; rerun with --sim-shards 1 \
             or drop the flag)",
            q.sim_shards
        ));
    }
    if q.sim_partition != ShardPartition::Block {
        return CmdOut::fail(format!(
            "trace requires the sequential engine: partition strategies only \
             affect the sharded engine, which records no event trace (got \
             --sim-partition {}; rerun with --sim-partition block or drop \
             the flag)",
            q.sim_partition.label()
        ));
    }
    let config = match machine_config(&q.machine, q.procs) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(e),
    };
    let mut opts = session_options(q, q.level);
    opts.trace = TraceLevel::Events;
    let r = match session.run(src, &opts, &config) {
        Ok(r) => r,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let trace = r.trace.as_ref().expect("Events tracing always captures");
    // The exported timeline must reproduce the cycle accounting exactly;
    // a mismatch is an instrumentation bug, not a user error.
    if !trace.truncated() {
        if let Err(e) = crate::verify_span_accounting(trace, &r.sim) {
            return CmdOut::fail(format!("trace/accounting invariant violated: {e}"));
        }
    }
    let json = crate::chrome_trace(trace, &r.sim, &r.compiled.optimized.cfg);
    match &q.out {
        Some(path) => CmdOut {
            stdout: String::new(),
            file: Some(FileOutput {
                path: path.clone(),
                content: format!("{json}\n"),
                note: format!(
                    "trace written to {path} ({} events{}); open in https://ui.perfetto.dev or chrome://tracing",
                    json.get("traceEvents").and_then(json::Value::as_arr).map_or(0, |a| a.len()),
                    if trace.truncated() { ", TRUNCATED" } else { "" },
                ),
            }),
            failure: None,
        },
        None => CmdOut::ok(format!("{json}\n")),
    }
}

fn cmd_explain(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let c = match session.compile(src, &session_options(q, OptLevel::Blocking)) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let report = match session.explain(src, &session_options(q, OptLevel::Blocking)) {
        Ok(r) => r,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let mut report = (*report).clone();
    if let Some((a, b)) = q.pair {
        report
            .kept
            .retain(|k| (k.u.index(), k.v.index()) == (a as usize, b as usize));
        report
            .dropped
            .retain(|d| (d.u.index(), d.v.index()) == (a as usize, b as usize));
        if report.kept.is_empty() && report.dropped.is_empty() {
            return CmdOut::fail(format!(
                "pair (a{a}, a{b}) is not in D_SS — nothing to explain \
                 (run `syncoptc explain` without --pair to list all pairs)"
            ));
        }
    }
    if q.format == Format::Json {
        return CmdOut::ok(format!("{}\n", report.to_json(&c.source_cfg, src)));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "delay-set provenance: {} kept, {} dropped (|D_SS| = {})",
        report.kept.len(),
        report.dropped.len(),
        report.kept.len() + report.dropped.len()
    );
    out.push('\n');
    for d in report.to_diagnostics(&c.source_cfg) {
        let _ = write!(out, "{}", d.render(src, &q.file));
    }
    CmdOut::ok(out)
}

fn cmd_profile(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let config = match machine_config(&q.machine, q.procs) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(e),
    };
    let p = match session.profile(src, &session_options(q, q.level), &config) {
        Ok(p) => p,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    match q.format {
        Format::Json => CmdOut::ok(format!("{}\n", p.to_json())),
        Format::Human => CmdOut::ok(p.render_table()),
    }
}

fn cmd_litmus(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let c = match session.compile(src, &session_options(q, OptLevel::Blocking)) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let cfg = &c.source_cfg;
    let sc = match sc_outcomes(cfg, q.procs) {
        Ok(s) => s,
        Err(e) => return CmdOut::fail(e.to_string()),
    };
    let none = match weak_outcomes(
        cfg,
        &syncopt_core::DelaySet::new(cfg.accesses.len()),
        q.procs,
    ) {
        Ok(s) => s,
        Err(e) => return CmdOut::fail(e.to_string()),
    };
    let refined = match weak_outcomes(cfg, &c.analysis.delay_sync, q.procs) {
        Ok(s) => s,
        Err(e) => return CmdOut::fail(e.to_string()),
    };
    if q.format == Format::Json {
        let arr = |set: &std::collections::BTreeSet<Outcome>| {
            json::Value::Arr(
                set.iter()
                    .map(|o| json::Value::Arr(o.iter().map(|&v| json::Value::Int(v)).collect()))
                    .collect(),
            )
        };
        let doc = json::Value::Obj(vec![
            (
                "schema".to_string(),
                json::Value::Str(LITMUS_SCHEMA.to_string()),
            ),
            ("file".to_string(), json::Value::Str(q.file.clone())),
            ("procs".to_string(), json::Value::Int(i64::from(q.procs))),
            ("sc".to_string(), arr(&sc)),
            ("weak_no_delays".to_string(), arr(&none)),
            ("weak_refined".to_string(), arr(&refined)),
            (
                "refined_preserves_sc".to_string(),
                json::Value::Bool(refined.is_subset(&sc)),
            ),
        ]);
        return CmdOut::ok(format!("{doc}\n"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "SC outcomes:                 {sc:?}");
    let _ = writeln!(out, "weak outcomes, no delays:    {none:?}");
    let _ = writeln!(out, "weak outcomes, refined D:    {refined:?}");
    let _ = writeln!(
        out,
        "refined D preserves SC:      {}",
        refined.is_subset(&sc)
    );
    CmdOut::ok(out)
}

/// Everything `check` computes for one program.
struct CheckOutcome {
    races: Arc<RaceAnalysis>,
    diags: Vec<Diagnostic>,
}

impl CheckOutcome {
    fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }
}

/// Runs the race detector and the synchronization warnings over `src`,
/// merging both into one sorted diagnostic list. `--strict` additionally
/// runs the full lint suite and promotes warnings to errors; `--deny` /
/// `--allow` override per-code severities first (so `--allow` wins over
/// the strict promotion).
fn run_check(
    session: &mut AnalysisSession,
    src: &str,
    cfg: &syncopt_ir::cfg::Cfg,
    q: &Query,
) -> Result<CheckOutcome, SyncoptError> {
    let races = session.races(src, &session_options(q, OptLevel::Blocking))?;
    let mut diags = race_diagnostics(cfg, &races);
    for w in syncopt_core::sync_warnings(cfg) {
        diags.push(w.to_diagnostic(cfg));
    }
    if q.strict {
        let lint = session.lint(src, &session_options(q, OptLevel::Blocking))?;
        diags.extend(lint.diagnostics.iter().cloned());
    }
    finalize_diagnostics(&mut diags, q);
    Ok(CheckOutcome { races, diags })
}

/// `run_check` without a session, for kernel sources that live outside
/// the query (the per-kernel artifacts still cache via `session`).
fn run_check_direct(
    session: &mut AnalysisSession,
    src: &str,
    q: &Query,
) -> Result<CheckOutcome, SyncoptError> {
    let compiled = session.compile(src, &session_options(q, OptLevel::Blocking))?;
    run_check(session, src, &compiled.source_cfg, q)
}

/// Applies `--deny`/`--allow` severity overrides, then the `--strict`
/// warning→error promotion, then the canonical sort.
fn finalize_diagnostics(diags: &mut [Diagnostic], q: &Query) {
    syncopt_core::apply_severity_overrides(diags, &q.deny, &q.allow);
    if q.strict {
        for d in diags.iter_mut() {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }
    sort_diagnostics(diags);
}

fn check_summary_json(outcome: &CheckOutcome) -> json::Value {
    json::Value::Obj(vec![
        (
            "errors".to_string(),
            json::Value::Int(outcome.errors() as i64),
        ),
        (
            "warnings".to_string(),
            json::Value::Int(outcome.count(Severity::Warning) as i64),
        ),
        (
            "notes".to_string(),
            json::Value::Int(outcome.count(Severity::Note) as i64),
        ),
        (
            "conflicting_pairs".to_string(),
            json::Value::Int((outcome.races.races.len() + outcome.races.ordered.len()) as i64),
        ),
        (
            "ordered".to_string(),
            json::Value::Int(outcome.races.ordered.len() as i64),
        ),
        (
            "races".to_string(),
            json::Value::Int(outcome.races.races.len() as i64),
        ),
        (
            "proven_races".to_string(),
            json::Value::Int(outcome.races.proven() as i64),
        ),
        (
            "race_free".to_string(),
            json::Value::Bool(outcome.races.race_free()),
        ),
    ])
}

fn cmd_check(session: &mut AnalysisSession, src: &str, q: &Query) -> CmdOut {
    let c = match session.compile(src, &session_options(q, OptLevel::Blocking)) {
        Ok(c) => c,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let outcome = match run_check(session, src, &c.source_cfg, q) {
        Ok(o) => o,
        Err(e) => return CmdOut::fail(render_err(src, &q.file, &e)),
    };
    let mut out = String::new();
    match q.format {
        Format::Json => {
            let report = json::Value::Obj(vec![
                (
                    "schema".to_string(),
                    json::Value::Str(CHECK_SCHEMA.to_string()),
                ),
                ("file".to_string(), json::Value::Str(q.file.clone())),
                ("procs".to_string(), json::Value::Int(i64::from(q.procs))),
                ("summary".to_string(), check_summary_json(&outcome)),
                (
                    "diagnostics".to_string(),
                    json::Value::Arr(outcome.diags.iter().map(|d| d.to_json(src)).collect()),
                ),
            ]);
            let _ = writeln!(out, "{report}");
        }
        Format::Human => {
            for d in &outcome.diags {
                let _ = writeln!(out, "{}", d.render(src, &q.file));
            }
            let r = &outcome.races;
            let _ = writeln!(
                out,
                "{}: {} conflicting data pair(s): {} ordered, {} potentially racy ({} proven)",
                q.file,
                r.races.len() + r.ordered.len(),
                r.ordered.len(),
                r.races.len(),
                r.proven()
            );
            let _ = writeln!(
                out,
                "{} error(s), {} warning(s), {} note(s)",
                outcome.errors(),
                outcome.count(Severity::Warning),
                outcome.count(Severity::Note)
            );
        }
    }
    let failure =
        (outcome.errors() > 0).then(|| format!("check failed: {} error(s)", outcome.errors()));
    CmdOut {
        stdout: out,
        file: None,
        failure,
    }
}

fn cmd_check_kernels(session: &mut AnalysisSession, q: &Query) -> CmdOut {
    let mut failed = 0usize;
    let mut rows = Vec::new();
    for kernel in syncopt_kernels::all_kernels(q.procs) {
        let outcome = match run_check_direct(session, &kernel.source, q) {
            Ok(o) => o,
            Err(e) => {
                return CmdOut::fail(render_err(&kernel.source, kernel.name, &e));
            }
        };
        failed += usize::from(outcome.errors() > 0);
        rows.push((kernel.name, outcome));
    }
    let mut out = String::new();
    match q.format {
        Format::Json => {
            let kernels = rows
                .iter()
                .map(|(name, outcome)| {
                    json::Value::Obj(vec![
                        ("name".to_string(), json::Value::Str((*name).to_string())),
                        ("summary".to_string(), check_summary_json(outcome)),
                    ])
                })
                .collect();
            let report = json::Value::Obj(vec![
                (
                    "schema".to_string(),
                    json::Value::Str(CHECK_SCHEMA.to_string()),
                ),
                ("procs".to_string(), json::Value::Int(i64::from(q.procs))),
                ("kernels".to_string(), json::Value::Arr(kernels)),
            ]);
            let _ = writeln!(out, "{report}");
        }
        Format::Human => {
            let _ = writeln!(
                out,
                "{:<10} {:>9} {:>8} {:>6} {:>7} {:>6} {:>6}",
                "kernel", "conflicts", "ordered", "races", "proven", "warns", "notes"
            );
            for (name, outcome) in &rows {
                let r = &outcome.races;
                let _ = writeln!(
                    out,
                    "{:<10} {:>9} {:>8} {:>6} {:>7} {:>6} {:>6}",
                    name,
                    r.races.len() + r.ordered.len(),
                    r.ordered.len(),
                    r.races.len(),
                    r.proven(),
                    outcome.count(Severity::Warning),
                    outcome.count(Severity::Note)
                );
            }
            let racy: Vec<&str> = rows
                .iter()
                .filter(|(_, o)| !o.races.race_free())
                .map(|(n, _)| *n)
                .collect();
            if racy.is_empty() {
                let _ = writeln!(out, "all {} kernel(s) race-free", rows.len());
            } else {
                let _ = writeln!(out, "race reports in: {}", racy.join(", "));
            }
        }
    }
    let failure = (failed > 0).then(|| format!("check failed: {failed} kernel(s) with errors"));
    CmdOut {
        stdout: out,
        file: None,
        failure,
    }
}

fn cmd_lint(session: &mut AnalysisSession, q: &Query) -> CmdOut {
    let (src, display) = match &q.seeded {
        Some(name) => match syncopt_kernels::seeded::seeded_example(name) {
            Some(ex) => (ex.source.to_string(), format!("seeded:{name}")),
            None => {
                let names: Vec<&str> = syncopt_kernels::seeded::seeded_examples()
                    .iter()
                    .map(|e| e.name)
                    .collect();
                return CmdOut::fail(format!(
                    "unknown seeded example `{name}` (available: {})",
                    names.join(", ")
                ));
            }
        },
        None => match &q.source {
            Some(src) => (src.clone(), q.file.clone()),
            None => return CmdOut::fail("command `lint` needs a source file".to_string()),
        },
    };
    let report = match session.lint(&src, &session_options(q, OptLevel::Blocking)) {
        Ok(r) => r,
        Err(e) => return CmdOut::fail(render_err(&src, &display, &e)),
    };
    let mut report = (*report).clone();
    finalize_diagnostics(&mut report.diagnostics, q);
    let mut out = String::new();
    match q.format {
        Format::Json => {
            let _ = writeln!(out, "{}", report.to_json(&src, &display, q.procs));
        }
        Format::Human => {
            for d in &report.diagnostics {
                let _ = writeln!(out, "{}", d.render(&src, &display));
            }
            for p in &report.passes {
                let _ = writeln!(
                    out,
                    "pass {:<15} [{}]: {} finding(s)",
                    p.name,
                    p.codes.join(", "),
                    p.findings
                );
            }
            for f in &report.fence_levels {
                let _ = writeln!(
                    out,
                    "fences @ {:<9}: {} live delay pair(s), {} fence(s), all covered",
                    f.label, f.delay_pairs, f.fences
                );
            }
            let _ = writeln!(
                out,
                "{} error(s), {} warning(s), {} note(s)",
                report.errors(),
                report.count(Severity::Warning),
                report.count(Severity::Note)
            );
        }
    }
    let failure =
        (report.errors() > 0).then(|| format!("lint failed: {} error(s)", report.errors()));
    CmdOut {
        stdout: out,
        file: None,
        failure,
    }
}

fn cmd_lint_kernels(session: &mut AnalysisSession, q: &Query) -> CmdOut {
    let mut failed = 0usize;
    let mut rows = Vec::new();
    for kernel in syncopt_kernels::all_kernels(q.procs) {
        let report = match session.lint(&kernel.source, &session_options(q, OptLevel::Blocking)) {
            Ok(r) => r,
            Err(e) => return CmdOut::fail(render_err(&kernel.source, kernel.name, &e)),
        };
        let mut report = (*report).clone();
        finalize_diagnostics(&mut report.diagnostics, q);
        failed += usize::from(report.errors() > 0);
        rows.push((kernel.name, kernel.source.clone(), report));
    }
    let mut out = String::new();
    match q.format {
        Format::Json => {
            let kernels = rows
                .iter()
                .map(|(name, source, report)| report.to_json(source, name, q.procs))
                .collect();
            let wrapper = json::Value::Obj(vec![
                (
                    "schema".to_string(),
                    json::Value::Str(LINT_SCHEMA.to_string()),
                ),
                ("procs".to_string(), json::Value::Int(i64::from(q.procs))),
                ("kernels".to_string(), json::Value::Arr(kernels)),
            ]);
            let _ = writeln!(out, "{wrapper}");
        }
        Format::Human => {
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>6} {:>6} {:>6}  fences(blocking→full)",
                "kernel", "errors", "warns", "notes", "D/L/F"
            );
            for (name, _, report) in &rows {
                let dlf = report
                    .passes
                    .iter()
                    .map(|p| p.findings.to_string())
                    .collect::<Vec<_>>();
                let fences = report
                    .fence_levels
                    .iter()
                    .map(|f| f.fences.to_string())
                    .collect::<Vec<_>>();
                let _ = writeln!(
                    out,
                    "{:<10} {:>7} {:>6} {:>6} {:>6}  {}",
                    name,
                    report.errors(),
                    report.count(Severity::Warning),
                    report.count(Severity::Note),
                    dlf.join("/"),
                    fences.join("→")
                );
            }
        }
    }
    let failure = (failed > 0).then(|| format!("lint failed: {failed} kernel(s) with errors"));
    CmdOut {
        stdout: out,
        file: None,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "shared int A[8]; fn main() { A[MYPROC] = 1; barrier; }";

    fn query(command: &str, format: Format) -> Query {
        Query {
            command: command.to_string(),
            file: "test.ms".to_string(),
            source: Some(SRC.to_string()),
            format,
            ..Query::default()
        }
    }

    #[test]
    fn every_json_command_emits_one_schema_versioned_document() {
        let mut session = AnalysisSession::new();
        for command in [
            "analyze", "opt", "run", "explain", "profile", "litmus", "check", "lint",
        ] {
            let out = execute(&mut session, &query(command, Format::Json));
            assert!(out.failure.is_none(), "{command}: {:?}", out.failure);
            let doc = json::Value::parse(&out.stdout)
                .unwrap_or_else(|e| panic!("{command}: invalid JSON: {e}"));
            let schema = doc.get("schema").and_then(json::Value::as_str);
            assert!(
                schema.is_some_and(|s| s.starts_with("syncopt.")),
                "{command}: missing schema in {doc}"
            );
            // Exactly one document: the whole stdout is that document.
            assert_eq!(out.stdout, format!("{doc}\n"), "{command}");
        }
    }

    #[test]
    fn repeated_queries_are_byte_identical() {
        let mut session = AnalysisSession::new();
        for command in ["check", "explain", "lint", "profile"] {
            let cold = execute(&mut session, &query(command, Format::Human));
            let warm = execute(&mut session, &query(command, Format::Human));
            assert_eq!(cold, warm, "{command}");
        }
    }

    #[test]
    fn kernels_queries_run_without_source() {
        let mut session = AnalysisSession::new();
        for command in ["check", "lint"] {
            let q = Query {
                command: command.to_string(),
                kernels: true,
                source: None,
                format: Format::Json,
                ..Query::default()
            };
            let out = execute(&mut session, &q);
            assert!(out.failure.is_none(), "{command}: {:?}", out.failure);
            let doc = json::Value::parse(&out.stdout).unwrap();
            assert!(doc.get("kernels").is_some(), "{command}");
        }
    }

    #[test]
    fn unknown_command_fails_cleanly() {
        let mut session = AnalysisSession::new();
        let out = execute(&mut session, &query("frobnicate", Format::Human));
        assert!(out.failure.unwrap().contains("unknown command"));
        assert!(out.stdout.is_empty());
    }
}
