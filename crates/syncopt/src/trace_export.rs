//! Chrome Trace Event Format export of the simulator timeline.
//!
//! [`chrome_trace`] converts a structured [`Trace`] (per-processor state
//! spans, message flows, lock holds, barrier episodes) into the JSON
//! object format that Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing` load directly:
//!
//! * each processor is a thread track (`tid` = processor id) carrying
//!   `ph:"X"` duration slices, one per state interval (`busy`, `sync`,
//!   `barrier`, `wait`, `lock`, `network_wait`, `idle`); their durations
//!   sum to the `sim.per_proc` cycle accounting exactly;
//! * every remote get/put/store is an async span (`ph:"b"`/`"e"`,
//!   category `flow`) from injection on the issuer to reply delivery,
//!   with an async instant (`ph:"n"`) marking the home-node service —
//!   the visible form of message pipelining;
//! * lock holds are async spans (category `lock`) from grant delivery to
//!   unlock service;
//! * barrier episodes are slices on a dedicated `barriers` track.
//!
//! Timestamps are **simulated cycles** emitted in the format's `ts`
//! field (viewers display them as microseconds: 1 cycle renders as
//! 1 µs). The export contains no wall-clock quantity anywhere, so two
//! runs of the same program produce byte-identical files — the golden
//! test pins one.
//!
//! The top level carries the extra keys `schema`
//! ([`TRACE_SCHEMA`] = `syncopt.trace.v1`), `exec_cycles`, `truncated`,
//! `dropped_events`, and `dropped_spans`; trace viewers ignore unknown
//! keys.

use syncopt_core::diag::json::Value;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::VarId;
use syncopt_machine::sim::SimResult;
use syncopt_machine::trace::Trace;

/// The stable schema identifier embedded in every trace export.
pub const TRACE_SCHEMA: &str = "syncopt.trace.v1";

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

fn meta(tid: i64, name: &str) -> Value {
    obj(vec![
        ("ph", s("M")),
        ("pid", Value::Int(0)),
        ("tid", Value::Int(tid)),
        ("name", s("thread_name")),
        ("args", obj(vec![("name", s(name))])),
    ])
}

/// Builds the Chrome Trace Event Format JSON for one traced run.
///
/// `cfg` supplies variable names for lock tracks; `sim` supplies the
/// execution length and processor count.
pub fn chrome_trace(trace: &Trace, sim: &SimResult, cfg: &Cfg) -> Value {
    let procs = sim.metrics.per_proc.len();
    let mut events: Vec<Value> = Vec::new();

    // Thread-name metadata: one track per processor, one for barriers.
    for pi in 0..procs {
        events.push(meta(pi as i64, &format!("proc {pi}")));
    }
    events.push(meta(procs as i64, "barriers"));

    // Per-processor state slices, ordered by (proc, start) so the file
    // is deterministic and diffable.
    let mut spans = trace.state_spans().to_vec();
    spans.sort_by_key(|sp| (sp.proc, sp.start));
    for sp in &spans {
        events.push(obj(vec![
            ("ph", s("X")),
            ("pid", Value::Int(0)),
            ("tid", Value::Int(i64::from(sp.proc))),
            ("ts", Value::Int(sp.start as i64)),
            ("dur", Value::Int(sp.cycles() as i64)),
            ("name", s(sp.state.label())),
            ("cat", s("state")),
        ]));
    }

    // Lock holds: async spans so they may straddle state boundaries.
    for (i, l) in trace.lock_spans().iter().enumerate() {
        let lock_name = &cfg.vars.info(VarId::from_index(l.lock as usize)).name;
        let name = format!("hold {lock_name}");
        let id = format!("lock{i}");
        for (ph, ts) in [("b", l.acquired), ("e", l.released)] {
            events.push(obj(vec![
                ("ph", s(ph)),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(i64::from(l.proc))),
                ("ts", Value::Int(ts as i64)),
                ("id", s(id.clone())),
                ("name", s(name.clone())),
                ("cat", s("lock")),
            ]));
        }
    }

    // Barrier episodes on the dedicated track, spanning first arrival to
    // release; arrivals ride along in args.
    for (i, b) in trace.barrier_spans().iter().enumerate() {
        events.push(obj(vec![
            ("ph", s("X")),
            ("pid", Value::Int(0)),
            ("tid", Value::Int(procs as i64)),
            ("ts", Value::Int(b.first_arrival as i64)),
            ("dur", Value::Int((b.release - b.first_arrival) as i64)),
            ("name", s(format!("barrier #{i}"))),
            ("cat", s("barrier")),
            (
                "args",
                obj(vec![
                    ("first_arrival", Value::Int(b.first_arrival as i64)),
                    ("last_arrival", Value::Int(b.last_arrival as i64)),
                    ("release", Value::Int(b.release as i64)),
                ]),
            ),
        ]));
    }

    // Message flows: async begin at injection (issuer track), async
    // instant at home service (home track), async end at reply delivery
    // (issuer track; stores end at service — they have no reply).
    for f in trace.flow_spans() {
        let id = format!("msg{}", f.id);
        let name = f.kind.label();
        let steps = [
            ("b", f.issued, f.from),
            ("n", f.service, f.home),
            ("e", f.delivered.unwrap_or(f.service), f.from),
        ];
        for (ph, ts, tid) in steps {
            events.push(obj(vec![
                ("ph", s(ph)),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(i64::from(tid))),
                ("ts", Value::Int(ts as i64)),
                ("id", s(id.clone())),
                ("name", s(name)),
                ("cat", s("flow")),
            ]));
        }
    }

    obj(vec![
        ("schema", s(TRACE_SCHEMA)),
        ("exec_cycles", Value::Int(sim.exec_cycles as i64)),
        ("truncated", Value::Bool(trace.truncated())),
        ("dropped_events", Value::Int(trace.dropped() as i64)),
        ("dropped_spans", Value::Int(trace.spans_dropped() as i64)),
        ("traceEvents", Value::Arr(events)),
    ])
}

/// Checks that the traced state spans reproduce the per-processor cycle
/// accounting exactly; returns the first discrepancy as
/// `(proc, state, span_sum, counter)`.
pub fn verify_span_accounting(trace: &Trace, sim: &SimResult) -> Result<(), String> {
    use syncopt_machine::trace::StateKind;
    for (pi, pc) in sim.metrics.per_proc.iter().enumerate() {
        let p = pi as u32;
        let pairs = [
            (StateKind::Busy, pc.busy),
            (StateKind::Sync, pc.sync),
            (StateKind::Barrier, pc.barrier),
            (StateKind::Wait, pc.wait),
            (StateKind::Lock, pc.lock),
            (StateKind::NetworkWait, pc.network_wait),
            (StateKind::Idle, pc.idle),
        ];
        for (kind, counter) in pairs {
            let sum = trace.state_cycles(p, kind);
            if sum != counter {
                return Err(format!(
                    "proc {pi} {}: spans sum to {sum} but the counter says {counter}",
                    kind.label()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;
    use syncopt_machine::sim::simulate_traced;
    use syncopt_machine::MachineConfig;

    fn traced(src: &str, procs: u32) -> (SimResult, Trace, Cfg) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let (sim, trace) = simulate_traced(&cfg, &MachineConfig::cm5(procs), 100_000).unwrap();
        (sim, trace, cfg)
    }

    const SRC: &str = r#"
        shared int A[8]; flag F; lock l; shared int X;
        fn main() {
            A[MYPROC] = MYPROC;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            lock l; X = X + v; unlock l;
            barrier;
        }
    "#;

    #[test]
    fn export_is_valid_parseable_json_with_schema() {
        let (sim, trace, cfg) = traced(SRC, 4);
        let json = chrome_trace(&trace, &sim, &cfg);
        let text = json.to_string();
        let parsed = Value::parse(&text).expect("export must be valid JSON");
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(TRACE_SCHEMA));
        assert_eq!(
            parsed.get("exec_cycles").unwrap().as_int(),
            Some(sim.exec_cycles as i64)
        );
        assert_eq!(parsed.get("truncated"), Some(&Value::Bool(false)));
        assert!(!parsed
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn export_has_all_event_families() {
        let (sim, trace, cfg) = traced(SRC, 4);
        let json = chrome_trace(&trace, &sim, &cfg);
        let events = json.get("traceEvents").unwrap().as_arr().unwrap();
        let phase_count = |ph: &str, cat: Option<&str>| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some(ph)
                        && cat.is_none_or(|c| e.get("cat").and_then(Value::as_str) == Some(c))
                })
                .count()
        };
        assert_eq!(phase_count("M", None), 5, "4 proc tracks + barriers");
        assert!(phase_count("X", Some("state")) > 0);
        assert_eq!(phase_count("X", Some("barrier")), 2);
        assert_eq!(phase_count("b", Some("lock")), 4, "one hold per processor");
        assert_eq!(
            phase_count("b", Some("lock")),
            phase_count("e", Some("lock"))
        );
        // Every flow has begin, service instant, and end.
        assert_eq!(phase_count("b", Some("flow")), trace.flow_spans().len());
        assert_eq!(phase_count("n", Some("flow")), trace.flow_spans().len());
        assert_eq!(phase_count("e", Some("flow")), trace.flow_spans().len());
    }

    #[test]
    fn export_is_deterministic() {
        let (sim_a, trace_a, cfg_a) = traced(SRC, 4);
        let (sim_b, trace_b, cfg_b) = traced(SRC, 4);
        assert_eq!(
            chrome_trace(&trace_a, &sim_a, &cfg_a).to_string(),
            chrome_trace(&trace_b, &sim_b, &cfg_b).to_string()
        );
    }

    #[test]
    fn span_accounting_verifier_accepts_real_runs_and_rejects_tampering() {
        let (sim, trace, _) = traced(SRC, 4);
        verify_span_accounting(&trace, &sim).expect("real run must verify");
        let mut broken = sim.clone();
        broken.metrics.per_proc[0].busy += 1;
        assert!(verify_span_accounting(&trace, &broken).is_err());
    }
}
