//! The structured pipeline observability report.
//!
//! Every stage of the pipeline measures itself — frontend phase timings,
//! analysis work counters, optimizer action counts, simulator cycle
//! accounting — and the facade assembles the pieces into one
//! [`PipelineReport`]. The report has two renderings:
//!
//! * [`PipelineReport::to_json`] — a stable machine format built on the
//!   std-only JSON emitter in `syncopt-core` (schema
//!   `syncopt.pipeline_report.v1`). All values are integers; the only
//!   nondeterministic ones are the `_us` phase timings, which consumers
//!   that diff reports zero out.
//! * [`PipelineReport::render_table`] — a human-readable table.
//!
//! [`ProfileReport`] pairs two reports — the blocking baseline and an
//! optimized run of the same program — the shape of the paper's Figure 12
//! comparison, emitted by `syncoptc profile`.

use syncopt_codegen::{DelayChoice, OptLevel, OptStats};
use syncopt_core::diag::json::Value;
use syncopt_core::{AnalysisStats, CacheStats, Counters, PhaseTimings};
use syncopt_machine::sim::{NetStats, SimResult, StallStats};
use syncopt_machine::{LatencyHistogram, MachineConfig, SimMetrics, SimWork};

/// Identification of what was compiled and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportMeta {
    /// Processor count the program was analyzed (and possibly run) for.
    pub procs: u32,
    /// Optimization level applied.
    pub level: OptLevel,
    /// Delay set that constrained the motion passes.
    pub delay: DelayChoice,
    /// Machine preset name, when the program was simulated.
    pub machine: Option<String>,
}

/// The simulation section of a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Execution time in cycles.
    pub exec_cycles: u64,
    /// Whether the runtime barrier-sequence check passed.
    pub barriers_aligned: bool,
    /// Message counters.
    pub net: NetStats,
    /// Global stall accounting.
    pub stalls: StallStats,
    /// Per-processor cycle accounting, latency histogram, barrier epochs.
    pub metrics: SimMetrics,
    /// Whether the event trace hit its cap (`None` when the run was not
    /// traced); `Some(true)` means the trace is incomplete, not the run
    /// short.
    pub trace_truncated: Option<bool>,
}

impl SimReport {
    /// Extracts the report section from a simulation result.
    pub fn from_sim(sim: &SimResult) -> Self {
        SimReport {
            exec_cycles: sim.exec_cycles,
            barriers_aligned: sim.barriers_aligned,
            net: sim.net,
            stalls: sim.stalls,
            metrics: sim.metrics.clone(),
            trace_truncated: None,
        }
    }
}

/// Everything the pipeline measured while compiling (and optionally
/// running) one program.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// What was compiled and how.
    pub meta: ReportMeta,
    /// Wall-clock phase timings (parse → simulate), zeros unless tracing
    /// was enabled.
    pub timings: PhaseTimings,
    /// Analysis summary (delay-set sizes etc.).
    pub analysis: AnalysisStats,
    /// Work counters from every analysis stage (`conflict.*`, `cycle.*`,
    /// `sync.*`, `delay.*`).
    pub counters: Counters,
    /// What the optimizer did.
    pub codegen: OptStats,
    /// Artifact-cache counters for the request that produced this report
    /// (hits prove incremental reuse). `None` — and absent from the JSON
    /// — unless explicitly attached via
    /// [`AnalysisSession::annotate_report`](crate::AnalysisSession::annotate_report),
    /// so cold and warm runs of the same query stay byte-identical.
    pub cache: Option<CacheStats>,
    /// The simulation section; `None` for compile-only reports.
    pub sim: Option<SimReport>,
}

/// The stable schema identifier embedded in every JSON report.
pub const REPORT_SCHEMA: &str = "syncopt.pipeline_report.v1";

/// The lowercase label of an optimization level, as used in JSON reports
/// and on the `syncoptc` command line.
pub fn level_label(level: OptLevel) -> &'static str {
    match level {
        OptLevel::Blocking => "blocking",
        OptLevel::Pipelined => "pipelined",
        OptLevel::OneWay => "oneway",
        OptLevel::Full => "full",
    }
}

/// The lowercase label of a delay-set choice.
pub fn delay_label(delay: DelayChoice) -> &'static str {
    match delay {
        DelayChoice::ShashaSnir => "shasha-snir",
        DelayChoice::SyncRefined => "sync-refined",
    }
}

impl PipelineReport {
    /// The report as a JSON object with a stable key order. All values
    /// are integers/strings; `timings` entries carry a `_us` suffix and
    /// are the only nondeterministic fields.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("schema".to_string(), Value::Str(REPORT_SCHEMA.to_string())),
            ("meta".to_string(), self.meta_json()),
            ("timings".to_string(), self.timings.to_json()),
            ("analysis".to_string(), self.analysis_json()),
            ("counters".to_string(), self.counters.to_json()),
            ("codegen".to_string(), optstats_json(&self.codegen)),
        ];
        if let Some(cache) = &self.cache {
            fields.push(("cache".to_string(), cache_json(cache)));
        }
        if let Some(sim) = &self.sim {
            fields.push(("sim".to_string(), sim_json(sim)));
        }
        Value::Obj(fields)
    }

    fn meta_json(&self) -> Value {
        Value::Obj(vec![
            ("procs".to_string(), Value::Int(i64::from(self.meta.procs))),
            (
                "level".to_string(),
                Value::Str(level_label(self.meta.level).to_string()),
            ),
            (
                "delay".to_string(),
                Value::Str(delay_label(self.meta.delay).to_string()),
            ),
            (
                "machine".to_string(),
                match &self.meta.machine {
                    Some(m) => Value::Str(m.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }

    fn analysis_json(&self) -> Value {
        let a = &self.analysis;
        Value::Obj(vec![
            ("accesses".to_string(), Value::Int(a.accesses as i64)),
            (
                "conflict_pairs".to_string(),
                Value::Int(a.conflict_pairs as i64),
            ),
            ("delay_ss".to_string(), Value::Int(a.delay_ss as i64)),
            ("delay_sync".to_string(), Value::Int(a.delay_sync as i64)),
            (
                "precedence_pairs".to_string(),
                Value::Int(a.precedence_pairs as i64),
            ),
            (
                "aligned_barriers".to_string(),
                Value::Int(a.aligned_barriers as i64),
            ),
        ])
    }

    /// Renders the report as a human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline report: level {}, delay {}, {} procs{}\n",
            level_label(self.meta.level),
            delay_label(self.meta.delay),
            self.meta.procs,
            match &self.meta.machine {
                Some(m) => format!(", machine {m}"),
                None => String::new(),
            }
        ));
        if self.timings.enabled() {
            out.push_str("  timings (us):");
            for (name, us) in self.timings.iter() {
                out.push_str(&format!(" {name} {us}"));
            }
            out.push('\n');
        }
        let a = &self.analysis;
        out.push_str(&format!(
            "  analysis: {} accesses, {} conflict pairs, delay D_SS {} -> refined {} ({} dropped)\n",
            a.accesses,
            a.conflict_pairs,
            a.delay_ss,
            a.delay_sync,
            a.delay_ss.saturating_sub(a.delay_sync),
        ));
        if self.counters.get("cycle.oracle_builds") > 0 {
            out.push_str(&format!(
                "  oracle: {} builds, {} SCCs, {} closure word-ORs; \
                 pruned {} of {} candidates ({} queried, {} BFS fallbacks)\n",
                self.counters.get("cycle.oracle_builds") + self.counters.get("sync.oracle_builds"),
                self.counters.get("cycle.sccs") + self.counters.get("sync.oracle_sccs"),
                self.counters.get("cycle.closure_word_ors")
                    + self.counters.get("sync.closure_word_ors"),
                self.counters.get("cycle.pruned_candidates")
                    + self.counters.get("sync.pruned_candidates"),
                self.counters.get("cycle.candidate_pairs")
                    + self.counters.get("sync.candidate_pairs"),
                self.counters.get("cycle.backpath_queries")
                    + self.counters.get("sync.backpath_queries")
                    + self.counters.get("sync.d1_backpath_queries"),
                self.counters.get("cycle.bfs_fallbacks") + self.counters.get("sync.bfs_fallbacks"),
            ));
        }
        for (key, val) in self.counters.iter() {
            out.push_str(&format!("    {key:<34} {val}\n"));
        }
        let c = &self.codegen;
        out.push_str(&format!(
            "  codegen: {} gets / {} puts split, {} sync moves, {} init moves, \
             {} puts->stores, {} gets eliminated, {} puts eliminated\n",
            c.gets_split,
            c.puts_split,
            c.sync_moves,
            c.init_moves,
            c.puts_to_stores,
            c.gets_eliminated,
            c.puts_eliminated,
        ));
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                "  cache: {} hit(s), {} miss(es), {} eviction(s)\n",
                cache.hits, cache.misses, cache.evictions
            ));
        }
        if let Some(sim) = &self.sim {
            render_sim_table(&mut out, sim);
        }
        out
    }
}

fn cache_json(c: &CacheStats) -> Value {
    Value::Obj(vec![
        ("hits".to_string(), Value::Int(c.hits as i64)),
        ("misses".to_string(), Value::Int(c.misses as i64)),
        ("evictions".to_string(), Value::Int(c.evictions as i64)),
    ])
}

pub(crate) fn optstats_json(s: &OptStats) -> Value {
    Value::Obj(vec![
        ("gets_split".to_string(), Value::Int(s.gets_split as i64)),
        ("puts_split".to_string(), Value::Int(s.puts_split as i64)),
        ("sync_moves".to_string(), Value::Int(s.sync_moves as i64)),
        (
            "syncs_merged".to_string(),
            Value::Int(s.syncs_merged as i64),
        ),
        ("init_moves".to_string(), Value::Int(s.init_moves as i64)),
        (
            "puts_to_stores".to_string(),
            Value::Int(s.puts_to_stores as i64),
        ),
        (
            "gets_eliminated".to_string(),
            Value::Int(s.gets_eliminated as i64),
        ),
        (
            "puts_eliminated".to_string(),
            Value::Int(s.puts_eliminated as i64),
        ),
        (
            "dead_locals_removed".to_string(),
            Value::Int(s.dead_locals_removed as i64),
        ),
        (
            "dead_gets_removed".to_string(),
            Value::Int(s.dead_gets_removed as i64),
        ),
        (
            "exprs_folded".to_string(),
            Value::Int(s.exprs_folded as i64),
        ),
    ])
}

fn net_json(n: &NetStats) -> Value {
    Value::Obj(vec![
        (
            "get_requests".to_string(),
            Value::Int(n.get_requests as i64),
        ),
        ("get_replies".to_string(), Value::Int(n.get_replies as i64)),
        (
            "put_requests".to_string(),
            Value::Int(n.put_requests as i64),
        ),
        ("put_acks".to_string(), Value::Int(n.put_acks as i64)),
        (
            "store_requests".to_string(),
            Value::Int(n.store_requests as i64),
        ),
        (
            "post_messages".to_string(),
            Value::Int(n.post_messages as i64),
        ),
        (
            "wait_messages".to_string(),
            Value::Int(n.wait_messages as i64),
        ),
        (
            "lock_messages".to_string(),
            Value::Int(n.lock_messages as i64),
        ),
        ("barriers".to_string(), Value::Int(n.barriers as i64)),
        (
            "total_messages".to_string(),
            Value::Int(n.total_messages() as i64),
        ),
    ])
}

fn stalls_json(s: &StallStats) -> Value {
    Value::Obj(vec![
        ("sync".to_string(), Value::Int(s.sync as i64)),
        ("barrier".to_string(), Value::Int(s.barrier as i64)),
        ("wait".to_string(), Value::Int(s.wait as i64)),
        ("lock".to_string(), Value::Int(s.lock as i64)),
        ("blocking".to_string(), Value::Int(s.blocking as i64)),
    ])
}

fn latency_json(h: &LatencyHistogram) -> Value {
    let buckets = h
        .buckets
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            Value::Obj(vec![
                (
                    "le".to_string(),
                    Value::Str(LatencyHistogram::bucket_label(i)),
                ),
                ("count".to_string(), Value::Int(count as i64)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("count".to_string(), Value::Int(h.count as i64)),
        ("min".to_string(), Value::Int(h.min as i64)),
        ("mean".to_string(), Value::Int(h.mean() as i64)),
        ("max".to_string(), Value::Int(h.max as i64)),
        ("buckets".to_string(), Value::Arr(buckets)),
    ])
}

fn work_json(w: &SimWork, exec_cycles: u64) -> Value {
    Value::Obj(vec![
        (
            "events_scheduled".to_string(),
            Value::Int(w.events_scheduled as i64),
        ),
        (
            "events_dequeued".to_string(),
            Value::Int(w.events_dequeued as i64),
        ),
        (
            "bucket_rotations".to_string(),
            Value::Int(w.bucket_rotations as i64),
        ),
        (
            "overflow_promotions".to_string(),
            Value::Int(w.overflow_promotions as i64),
        ),
        (
            "arena_reuses".to_string(),
            Value::Int(w.arena_reuses as i64),
        ),
        (
            "waiter_scans".to_string(),
            Value::Int(w.waiter_scans as i64),
        ),
        (
            "hash_lookups".to_string(),
            Value::Int(w.hash_lookups as i64),
        ),
        (
            "shard_horizon_advances".to_string(),
            Value::Int(w.shard_horizon_advances as i64),
        ),
        (
            "shard_cross_messages".to_string(),
            Value::Int(w.shard_cross_messages as i64),
        ),
        (
            "shard_mailbox_drains".to_string(),
            Value::Int(w.shard_mailbox_drains as i64),
        ),
        (
            "shard_idle_windows".to_string(),
            Value::Int(w.shard_idle_windows as i64),
        ),
        (
            "shard_leader_merge_steps".to_string(),
            Value::Int(w.shard_leader_merge_steps as i64),
        ),
        (
            "shard_parallel_drains".to_string(),
            Value::Int(w.shard_parallel_drains as i64),
        ),
        (
            "shard_parallel_flattens".to_string(),
            Value::Int(w.shard_parallel_flattens as i64),
        ),
        (
            "events_per_1k_cycles".to_string(),
            Value::Int(w.events_per_1k_cycles(exec_cycles) as i64),
        ),
    ])
}

/// One flat object per shard — deliberately nesting-free so text tooling
/// can strip the whole `"shards":[...]` array with a bracket-free regex.
fn shards_json(sim: &SimReport) -> Value {
    let shards = sim
        .metrics
        .shards
        .iter()
        .enumerate()
        .map(|(si, s)| {
            Value::Obj(vec![
                ("shard".to_string(), Value::Int(si as i64)),
                ("procs".to_string(), Value::Int(i64::from(s.procs))),
                ("events".to_string(), Value::Int(s.events as i64)),
                ("drained".to_string(), Value::Int(s.drained as i64)),
                ("flattened".to_string(), Value::Int(s.flattened as i64)),
                (
                    "cross_messages".to_string(),
                    Value::Int(s.cross_messages as i64),
                ),
                (
                    "idle_windows".to_string(),
                    Value::Int(s.idle_windows as i64),
                ),
            ])
        })
        .collect();
    Value::Arr(shards)
}

fn sim_json(sim: &SimReport) -> Value {
    let per_proc = sim
        .metrics
        .per_proc
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            Value::Obj(vec![
                ("proc".to_string(), Value::Int(pi as i64)),
                ("busy".to_string(), Value::Int(p.busy as i64)),
                ("sync".to_string(), Value::Int(p.sync as i64)),
                ("barrier".to_string(), Value::Int(p.barrier as i64)),
                ("wait".to_string(), Value::Int(p.wait as i64)),
                ("lock".to_string(), Value::Int(p.lock as i64)),
                (
                    "network_wait".to_string(),
                    Value::Int(p.network_wait as i64),
                ),
                ("idle".to_string(), Value::Int(p.idle as i64)),
                ("msgs_sent".to_string(), Value::Int(p.msgs_sent as i64)),
                (
                    "msgs_handled".to_string(),
                    Value::Int(p.msgs_handled as i64),
                ),
            ])
        })
        .collect();
    let epochs = sim
        .metrics
        .barrier_epochs
        .iter()
        .map(|e| {
            Value::Obj(vec![
                (
                    "first_arrival".to_string(),
                    Value::Int(e.first_arrival as i64),
                ),
                (
                    "last_arrival".to_string(),
                    Value::Int(e.last_arrival as i64),
                ),
                ("release".to_string(), Value::Int(e.release as i64)),
            ])
        })
        .collect();
    let mut fields = vec![
        (
            "exec_cycles".to_string(),
            Value::Int(sim.exec_cycles as i64),
        ),
        (
            "barriers_aligned".to_string(),
            Value::Bool(sim.barriers_aligned),
        ),
        ("net".to_string(), net_json(&sim.net)),
        ("stalls".to_string(), stalls_json(&sim.stalls)),
        ("per_proc".to_string(), Value::Arr(per_proc)),
        ("latency".to_string(), latency_json(&sim.metrics.latency)),
        ("barrier_epochs".to_string(), Value::Arr(epochs)),
        (
            "work".to_string(),
            work_json(&sim.metrics.work, sim.exec_cycles),
        ),
    ];
    if !sim.metrics.shards.is_empty() {
        fields.push(("shards".to_string(), shards_json(sim)));
        if let Some(imbalance) = sim.metrics.shard_imbalance_permille() {
            fields.push((
                "shard_imbalance_permille".to_string(),
                Value::Int(imbalance as i64),
            ));
        }
    }
    if let Some(truncated) = sim.trace_truncated {
        fields.push(("trace_truncated".to_string(), Value::Bool(truncated)));
    }
    Value::Obj(fields)
}

fn render_sim_table(out: &mut String, sim: &SimReport) {
    out.push_str(&format!(
        "  simulation: {} cycles, {} messages, barriers {}\n",
        sim.exec_cycles,
        sim.net.total_messages(),
        if sim.barriers_aligned {
            "aligned"
        } else {
            "MISALIGNED"
        }
    ));
    if sim.trace_truncated == Some(true) {
        out.push_str("    trace: TRUNCATED (cap hit; raise --trace-limit)\n");
    }
    out.push_str(&format!(
        "    stalls: sync {} barrier {} wait {} lock {} blocking {}\n",
        sim.stalls.sync, sim.stalls.barrier, sim.stalls.wait, sim.stalls.lock, sim.stalls.blocking
    ));
    out.push_str(
        "    proc       busy       sync    barrier       wait       lock    net-wait       idle\n",
    );
    for (pi, p) in sim.metrics.per_proc.iter().enumerate() {
        out.push_str(&format!(
            "    {pi:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}\n",
            p.busy, p.sync, p.barrier, p.wait, p.lock, p.network_wait, p.idle
        ));
    }
    let w = &sim.metrics.work;
    if w.events_dequeued > 0 {
        out.push_str(&format!(
            "    engine: {} events scheduled / {} dequeued ({} per 1k cycles), \
             {} bucket rotations, {} overflow promotions, {} arena reuses, \
             {} waiter scans, {} hash lookups\n",
            w.events_scheduled,
            w.events_dequeued,
            w.events_per_1k_cycles(sim.exec_cycles),
            w.bucket_rotations,
            w.overflow_promotions,
            w.arena_reuses,
            w.waiter_scans,
            w.hash_lookups,
        ));
        if w.shard_horizon_advances > 0 {
            out.push_str(&format!(
                "    sharding: {} horizon advances, {} cross-shard messages, \
                 {} mailbox drains, {} idle windows\n",
                w.shard_horizon_advances,
                w.shard_cross_messages,
                w.shard_mailbox_drains,
                w.shard_idle_windows,
            ));
            out.push_str(&format!(
                "    leader: {} merge steps; workers: {} parallel drains, \
                 {} parallel flattens\n",
                w.shard_leader_merge_steps, w.shard_parallel_drains, w.shard_parallel_flattens,
            ));
        }
    }
    if !sim.metrics.shards.is_empty() {
        out.push_str(
            "    shard     procs     events    drained  flattened      cross       idle\n",
        );
        for (si, s) in sim.metrics.shards.iter().enumerate() {
            out.push_str(&format!(
                "    {si:>5} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                s.procs, s.events, s.drained, s.flattened, s.cross_messages, s.idle_windows
            ));
        }
        if let Some(imbalance) = sim.metrics.shard_imbalance_permille() {
            out.push_str(&format!(
                "    load imbalance (max/mean events): {}.{:03}x\n",
                imbalance / 1000,
                imbalance % 1000
            ));
        }
    }
    let h = &sim.metrics.latency;
    if h.count > 0 {
        out.push_str(&format!(
            "    remote latency: {} samples, min {} / mean {} / max {} cycles\n",
            h.count,
            h.min,
            h.mean(),
            h.max
        ));
        out.push_str("      cycles            count\n");
        for (i, &count) in h.buckets.iter().enumerate() {
            out.push_str(&format!(
                "      {:<14} {count:>8}\n",
                LatencyHistogram::bucket_range(i)
            ));
        }
    }
    if !sim.metrics.barrier_epochs.is_empty() {
        out.push_str("    barrier epochs (first arrival / last arrival / release):\n");
        for (i, e) in sim.metrics.barrier_epochs.iter().enumerate() {
            out.push_str(&format!(
                "      #{i}: {} / {} / {} (skew {})\n",
                e.first_arrival,
                e.last_arrival,
                e.release,
                e.skew()
            ));
        }
    }
}

/// A blocking-baseline vs optimized comparison of one program on one
/// machine — the shape of the paper's Figure 12 bars, as emitted by
/// `syncoptc profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The `OptLevel::Blocking` reference run.
    pub blocking: PipelineReport,
    /// The optimized run.
    pub optimized: PipelineReport,
}

impl ProfileReport {
    /// Speedup of the optimized run over the blocking baseline, times 100
    /// (integer so JSON reports stay float-free). 100 means no change.
    pub fn speedup_x100(&self) -> u64 {
        let base = self.blocking.sim.as_ref().map_or(0, |s| s.exec_cycles);
        let opt = self.optimized.sim.as_ref().map_or(0, |s| s.exec_cycles);
        (base * 100).checked_div(opt).unwrap_or(100)
    }

    /// The profile as a JSON object (`syncopt.profile_report.v1`).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            (
                "schema".to_string(),
                Value::Str("syncopt.profile_report.v1".to_string()),
            ),
            ("blocking".to_string(), self.blocking.to_json()),
            ("optimized".to_string(), self.optimized.to_json()),
            (
                "comparison".to_string(),
                Value::Obj(vec![
                    (
                        "speedup_x100".to_string(),
                        Value::Int(self.speedup_x100() as i64),
                    ),
                    (
                        "cycles_saved".to_string(),
                        Value::Int(
                            self.blocking
                                .sim
                                .as_ref()
                                .map_or(0, |s| s.exec_cycles as i64)
                                - self
                                    .optimized
                                    .sim
                                    .as_ref()
                                    .map_or(0, |s| s.exec_cycles as i64),
                        ),
                    ),
                    (
                        "messages_delta".to_string(),
                        Value::Int(
                            self.optimized
                                .sim
                                .as_ref()
                                .map_or(0, |s| s.net.total_messages() as i64)
                                - self
                                    .blocking
                                    .sim
                                    .as_ref()
                                    .map_or(0, |s| s.net.total_messages() as i64),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Renders both runs side by side with a comparison footer.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let b = self.blocking.sim.as_ref();
        let o = self.optimized.sim.as_ref();
        out.push_str(&format!(
            "profile: blocking vs {} ({} procs{})\n",
            level_label(self.optimized.meta.level),
            self.optimized.meta.procs,
            match &self.optimized.meta.machine {
                Some(m) => format!(", machine {m}"),
                None => String::new(),
            }
        ));
        let row = |label: &str, bv: u64, ov: u64| format!("  {label:<22} {bv:>12} {ov:>12}\n");
        out.push_str(&format!(
            "  {:<22} {:>12} {:>12}\n",
            "", "blocking", "optimized"
        ));
        out.push_str(&row(
            "exec cycles",
            b.map_or(0, |s| s.exec_cycles),
            o.map_or(0, |s| s.exec_cycles),
        ));
        out.push_str(&row(
            "messages",
            b.map_or(0, |s| s.net.total_messages()),
            o.map_or(0, |s| s.net.total_messages()),
        ));
        out.push_str(&row(
            "one-way stores",
            b.map_or(0, |s| s.net.store_requests),
            o.map_or(0, |s| s.net.store_requests),
        ));
        out.push_str(&row(
            "blocking-stall cycles",
            b.map_or(0, |s| s.stalls.blocking),
            o.map_or(0, |s| s.stalls.blocking),
        ));
        out.push_str(&row(
            "sync-stall cycles",
            b.map_or(0, |s| s.stalls.sync),
            o.map_or(0, |s| s.stalls.sync),
        ));
        out.push_str(&row(
            "barrier-stall cycles",
            b.map_or(0, |s| s.stalls.barrier),
            o.map_or(0, |s| s.stalls.barrier),
        ));
        out.push_str(&row(
            "delay pairs",
            self.blocking.analysis.delay_sync as u64,
            self.optimized.analysis.delay_sync as u64,
        ));
        let s = self.speedup_x100();
        out.push_str(&format!("  speedup: {}.{:02}x\n", s / 100, s % 100));
        out.push_str("\n--- blocking ---\n");
        out.push_str(&self.blocking.render_table());
        out.push_str("\n--- optimized ---\n");
        out.push_str(&self.optimized.render_table());
        out
    }
}

/// Builds the metadata section for a report.
pub(crate) fn meta_for(
    procs: u32,
    level: OptLevel,
    delay: DelayChoice,
    machine: Option<&MachineConfig>,
) -> ReportMeta {
    ReportMeta {
        procs,
        level,
        delay,
        machine: machine.map(|m| m.name.clone()),
    }
}

/// Renders the daemon `stats` reply (the object [`DaemonClient::stats`]
/// returns) as a human-readable table: service header, cache totals,
/// and — when the daemon runs with telemetry — live gauges plus a
/// per-operation request/latency breakdown from the
/// `syncopt.metrics.v1` document. This is what `syncoptc stats` (and
/// `stats --watch`) prints.
///
/// [`DaemonClient::stats`]: crate::client::DaemonClient::stats
pub fn render_stats_table(stats: &Value) -> String {
    let int = |v: Option<&Value>| v.and_then(Value::as_int).unwrap_or(0);
    let mut out = String::new();
    let version = stats.get("version").and_then(Value::as_str).unwrap_or("?");
    let uptime_ms = int(stats.get("uptime_ms"));
    out.push_str(&format!(
        "syncoptd {version} — up {}.{:03} s, {} request(s)\n",
        uptime_ms / 1000,
        uptime_ms % 1000,
        int(stats.get("requests_total")),
    ));
    if let Some(cache) = stats.get("cache") {
        out.push_str(&format!(
            "  cache: {} hit(s), {} miss(es), {} eviction(s); {} artifact(s) of capacity {}\n",
            int(cache.get("hits")),
            int(cache.get("misses")),
            int(cache.get("evictions")),
            int(stats.get("artifacts")),
            int(stats.get("capacity")),
        ));
    }
    let Some(doc) = stats.get("metrics") else {
        out.push_str("  telemetry: off (--no-telemetry)\n");
        return out;
    };
    let registry = doc.get("metrics");
    let counters = registry.and_then(|m| m.get("counters"));
    let gauges = registry.and_then(|m| m.get("gauges"));
    let counter = |name: &str| int(counters.and_then(|c| c.get(name)));
    out.push_str(&format!(
        "  service: {} in flight, {} connection(s) open ({} opened, {} closed)\n",
        int(gauges.and_then(|g| g.get("rpc.in_flight"))),
        int(gauges.and_then(|g| g.get("rpc.connections_open"))),
        counter("rpc.connections_opened"),
        counter("rpc.connections_closed"),
    ));
    out.push_str(&format!(
        "  traffic: {} byte(s) in, {} byte(s) out; {} error(s), {} failure(s), {} slow\n",
        counter("rpc.bytes_in"),
        counter("rpc.bytes_out"),
        counter("rpc.errors_total"),
        counter("rpc.failures_total"),
        counter("rpc.slow_requests_total"),
    ));
    // Per-op breakdown: every labeled requests_total counter, joined
    // with its latency histogram.
    let Some(Value::Obj(counter_fields)) = counters else {
        return out;
    };
    let histograms = registry.and_then(|m| m.get("histograms"));
    let mut rows = Vec::new();
    for (key, value) in counter_fields {
        let Some(op) = key
            .strip_prefix("rpc.requests_total{op=\"")
            .and_then(|rest| rest.strip_suffix("\"}"))
        else {
            continue;
        };
        let count = value.as_int().unwrap_or(0);
        let hist =
            histograms.and_then(|h| h.get(&format!("rpc.request_latency_us{{op=\"{op}\"}}")));
        let sum = int(hist.and_then(|h| h.get("sum_us")));
        let mean = if count > 0 { sum / count } else { 0 };
        rows.push((
            op.to_string(),
            count,
            mean,
            int(hist.and_then(|h| h.get("min_us"))),
            int(hist.and_then(|h| h.get("max_us"))),
        ));
    }
    if !rows.is_empty() {
        out.push_str(&format!(
            "  {:<12} {:>8} {:>10} {:>10} {:>10}\n",
            "op", "requests", "mean_us", "min_us", "max_us"
        ));
        for (op, count, mean, min, max) in rows {
            out.push_str(&format!(
                "  {op:<12} {count:>8} {mean:>10} {min:>10} {max:>10}\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report(level: OptLevel, exec: Option<u64>) -> PipelineReport {
        PipelineReport {
            meta: ReportMeta {
                procs: 4,
                level,
                delay: DelayChoice::SyncRefined,
                machine: Some("CM-5".to_string()),
            },
            timings: PhaseTimings::new(false),
            analysis: AnalysisStats {
                accesses: 2,
                conflict_pairs: 1,
                delay_ss: 1,
                delay_sync: 0,
                precedence_pairs: 0,
                aligned_barriers: 0,
            },
            counters: Counters::new(),
            codegen: OptStats::default(),
            cache: None,
            sim: exec.map(|e| SimReport {
                exec_cycles: e,
                barriers_aligned: true,
                net: NetStats::default(),
                stalls: StallStats::default(),
                metrics: SimMetrics::default(),
                trace_truncated: None,
            }),
        }
    }

    #[test]
    fn json_has_stable_top_level_schema() {
        let r = empty_report(OptLevel::Full, Some(100));
        let j = r.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(REPORT_SCHEMA));
        assert_eq!(
            j.get("meta").unwrap().get("level").unwrap().as_str(),
            Some("full")
        );
        assert!(j.get("sim").is_some());
        // The engine work counters ride along in every sim section.
        let work = j.get("sim").unwrap().get("work").unwrap();
        assert_eq!(work.get("hash_lookups").unwrap().as_int(), Some(0));
        assert!(work.get("events_per_1k_cycles").is_some());
        // Compile-only reports omit the sim section.
        let c = empty_report(OptLevel::Full, None);
        assert!(c.to_json().get("sim").is_none());
    }

    #[test]
    fn speedup_is_ratio_times_100() {
        let p = ProfileReport {
            blocking: empty_report(OptLevel::Blocking, Some(300)),
            optimized: empty_report(OptLevel::Full, Some(200)),
        };
        assert_eq!(p.speedup_x100(), 150);
        let j = p.to_json();
        let cmp = j.get("comparison").unwrap();
        assert_eq!(cmp.get("speedup_x100").unwrap().as_int(), Some(150));
        assert_eq!(cmp.get("cycles_saved").unwrap().as_int(), Some(100));
    }

    #[test]
    fn tables_render_without_panicking() {
        let p = ProfileReport {
            blocking: empty_report(OptLevel::Blocking, Some(300)),
            optimized: empty_report(OptLevel::Full, Some(200)),
        };
        let t = p.render_table();
        assert!(t.contains("speedup: 1.50x"), "{t}");
        assert!(t.contains("exec cycles"), "{t}");
        let single = empty_report(OptLevel::Full, Some(10)).render_table();
        assert!(single.contains("pipeline report"), "{single}");
    }

    #[test]
    fn stats_table_renders_service_and_per_op_rows() {
        let stats = Value::parse(
            r#"{"cache":{"hits":5,"misses":2,"evictions":0},"artifacts":3,"capacity":64,
                "uptime_ms":2500,"requests_total":7,"version":"0.1.0",
                "metrics":{"schema":"syncopt.metrics.v1","metrics":{
                  "counters":{"rpc.requests_total":7,
                              "rpc.requests_total{op=\"check\"}":4,
                              "rpc.requests_total{op=\"ping\"}":3,
                              "rpc.bytes_in":100,"rpc.bytes_out":900,
                              "rpc.errors_total":0,"rpc.failures_total":1,
                              "rpc.slow_requests_total":0,
                              "rpc.connections_opened":2,"rpc.connections_closed":1},
                  "gauges":{"rpc.in_flight":1,"rpc.connections_open":1},
                  "histograms":{"rpc.request_latency_us{op=\"check\"}":
                      {"count":4,"sum_us":400,"min_us":50,"max_us":200}}}}}"#,
        )
        .unwrap();
        let t = render_stats_table(&stats);
        assert!(
            t.contains("syncoptd 0.1.0 — up 2.500 s, 7 request(s)"),
            "{t}"
        );
        assert!(t.contains("5 hit(s), 2 miss(es)"), "{t}");
        assert!(t.contains("1 in flight"), "{t}");
        // check row: 4 requests, mean 100us.
        let check_row = t.lines().find(|l| l.trim().starts_with("check")).unwrap();
        assert!(
            check_row.contains('4') && check_row.contains("100"),
            "{check_row}"
        );
    }

    #[test]
    fn stats_table_reports_disabled_telemetry() {
        let stats = Value::parse(
            r#"{"cache":{"hits":0,"misses":0,"evictions":0},"artifacts":0,"capacity":64,
                "uptime_ms":10,"requests_total":1,"version":"0.1.0"}"#,
        )
        .unwrap();
        let t = render_stats_table(&stats);
        assert!(t.contains("telemetry: off"), "{t}");
    }

    #[test]
    fn labels_cover_all_variants() {
        assert_eq!(level_label(OptLevel::Blocking), "blocking");
        assert_eq!(level_label(OptLevel::Pipelined), "pipelined");
        assert_eq!(level_label(OptLevel::OneWay), "oneway");
        assert_eq!(level_label(OptLevel::Full), "full");
        assert_eq!(delay_label(DelayChoice::ShashaSnir), "shasha-snir");
        assert_eq!(delay_label(DelayChoice::SyncRefined), "sync-refined");
    }
}
