//! Pipeline-level glue for the synchronization lint engine.
//!
//! The core passes ([`syncopt_core::lint`]) are pure analysis; this
//! module wires them to the codegen side: for every optimization level
//! it optimizes the program, exports the live delay pairs and planned
//! fences ([`syncopt_codegen::fences::export_fence_sites`]), and hands
//! the lot to [`syncopt_core::run_lints`] so the fence-coverage
//! verifier can check each level's output.

use syncopt_codegen::fences::{export_fence_sites, FenceSites};
use syncopt_codegen::{optimize, DelayChoice, OptLevel};
use syncopt_core::lint::FenceCheck;
use syncopt_core::{analyze_with, run_lints, Analysis, LintInput, LintReport, SyncOptions};
use syncopt_ir::cfg::Cfg;

/// The optimization levels the fence-coverage verifier checks.
pub const FENCE_LEVELS: [OptLevel; 4] = [
    OptLevel::Blocking,
    OptLevel::Pipelined,
    OptLevel::OneWay,
    OptLevel::Full,
];

/// A stable lowercase label for an optimization level (used in lint
/// messages and the JSON report).
pub fn level_label(level: OptLevel) -> &'static str {
    match level {
        OptLevel::Blocking => "blocking",
        OptLevel::Pipelined => "pipelined",
        OptLevel::OneWay => "oneway",
        OptLevel::Full => "full",
    }
}

/// One optimization level's fence-verification artifacts: the optimized
/// CFG and the exported fence sites for it.
#[derive(Debug)]
pub struct FenceArtifacts {
    /// Level label (see [`level_label`]).
    pub label: &'static str,
    /// The optimized target CFG.
    pub cfg: Cfg,
    /// Live delay pairs and planned fences on that CFG.
    pub sites: FenceSites,
}

/// Optimizes `cfg` at every level in [`FENCE_LEVELS`] and exports the
/// fence-verification artifacts for each.
pub fn fence_artifacts(cfg: &Cfg, analysis: &Analysis) -> Vec<FenceArtifacts> {
    FENCE_LEVELS
        .iter()
        .map(|&level| {
            let opt = optimize(cfg, analysis, level, DelayChoice::SyncRefined);
            let sites = export_fence_sites(&opt.cfg, &analysis.delay_sync);
            FenceArtifacts {
                label: level_label(level),
                cfg: opt.cfg,
                sites,
            }
        })
        .collect()
}

/// Runs the full lint suite over an already-computed analysis,
/// including fence-coverage verification at every optimization level.
pub fn lint_with_analysis(cfg: &Cfg, analysis: &Analysis, opts: &SyncOptions) -> LintReport {
    let artifacts = fence_artifacts(cfg, analysis);
    let checks: Vec<FenceCheck<'_>> = artifacts
        .iter()
        .map(|a| FenceCheck {
            label: a.label,
            cfg: &a.cfg,
            delay: &a.sites.delay,
            fences: &a.sites.plan.fences,
        })
        .collect();
    run_lints(&LintInput {
        cfg,
        analysis,
        opts,
        fence_checks: &checks,
    })
}

/// Analyzes `cfg` with `opts` and runs the full lint suite.
pub fn lint_cfg(cfg: &Cfg, opts: &SyncOptions) -> LintReport {
    let analysis = analyze_with(cfg, opts);
    lint_with_analysis(cfg, &analysis, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn lint(src: &str) -> LintReport {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        lint_cfg(
            &cfg,
            &SyncOptions {
                procs: Some(4),
                ..SyncOptions::default()
            },
        )
    }

    #[test]
    fn kernels_have_no_fence_errors_at_any_level() {
        for kernel in syncopt_kernels::all_kernels(4) {
            let report = lint(&kernel.source);
            assert_eq!(report.fence_levels.len(), FENCE_LEVELS.len());
            let f001 = report
                .diagnostics
                .iter()
                .filter(|d| d.code == "F001")
                .count();
            assert_eq!(f001, 0, "{}: unexpected F001", kernel.name);
        }
    }

    #[test]
    fn lint_report_is_deterministic_across_threads() {
        let src = syncopt_kernels::all_kernels(4)
            .into_iter()
            .next()
            .unwrap()
            .source;
        let cfg = lower_main(&prepare_program(&src).unwrap()).unwrap();
        let base = lint_cfg(
            &cfg,
            &SyncOptions {
                procs: Some(4),
                threads: 1,
                ..SyncOptions::default()
            },
        );
        let wide = lint_cfg(
            &cfg,
            &SyncOptions {
                procs: Some(4),
                threads: 4,
                ..SyncOptions::default()
            },
        );
        assert_eq!(
            base.to_json(&src, "k.ms", 4).to_string(),
            wide.to_json(&src, "k.ms", 4).to_string()
        );
    }
}
