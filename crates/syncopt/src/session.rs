//! The session-oriented analysis API: incremental, content-addressed
//! pipeline runs.
//!
//! A [`Syncopt`](crate::Syncopt) builder is "one builder = one full run":
//! every call re-parses, re-checks, re-analyzes, and re-optimizes from
//! scratch. An [`AnalysisSession`] instead owns a content-addressed
//! [`ArtifactCache`] and keys every expensive artifact by a stable
//! [`Fingerprint`] of its inputs, so repeated queries — and queries over
//! *edited* programs that share most of their content — only recompute
//! what actually changed. This is the serving layer `syncoptd` exposes
//! over `syncopt.rpc.v1`.
//!
//! # Cache-key derivation
//!
//! | kind       | keyed by                                            | stores |
//! |------------|-----------------------------------------------------|--------|
//! | `ast`      | raw source text                                     | parsed [`Program`] |
//! | `fncheck`  | context fingerprint + canonical function text       | per-function type-check verdict |
//! | `inlined`  | raw source text                                     | inlined [`Program`] |
//! | `cfg`      | raw source text                                     | lowered source [`Cfg`] |
//! | `analysis` | canonical (span-free) CFG text + procs              | [`Analysis`] |
//! | `opt`      | raw source text + procs + level + delay             | [`Optimized`] |
//! | `sim`      | canonical optimized-CFG text + machine config       | [`SimResult`] |
//! | `races`    | raw source text + procs                             | [`RaceAnalysis`] |
//! | `lint`     | raw source text + procs                             | [`LintReport`] |
//! | `explain`  | raw source text + procs                             | [`ExplainReport`] |
//!
//! Span-bearing artifacts (`ast`, `cfg`, `opt`, `lint` diagnostics) key
//! on the *raw* source so two texts that differ only in whitespace never
//! share an artifact with stale spans. Span-free artifacts (`analysis`,
//! `sim` — both identify accesses by dense [`AccessId`]s) key on the
//! canonical printed CFG, so formatting-only edits reuse the two most
//! expensive phases outright. Worker-thread counts, simulation shard
//! counts, and shard partition strategies are deliberately **not** part
//! of any key: analysis results are bit-identical for every thread
//! count, and the sharded simulation engine is bit-identical to the
//! sequential reference for every shard count and partition — so a `sim`
//! artifact computed under one configuration legitimately serves every
//! other.
//!
//! Caching never changes results, only the work needed to produce them:
//! a warm query is byte-identical to a cold one.
//!
//! ```
//! use syncopt::{AnalysisSession, SessionOptions};
//!
//! let src = "shared int A[8]; fn main() { A[MYPROC] = 1; barrier; }";
//! let mut session = AnalysisSession::new();
//! let opts = SessionOptions { procs: Some(8), ..SessionOptions::default() };
//! let cold = session.compile(src, &opts)?;
//! let warm = session.compile(src, &opts)?;
//! assert_eq!(cold.report, warm.report);
//! // The second compile did no parsing/analysis work at all.
//! assert_eq!(session.last_request_stats().misses, 0);
//! assert!(session.last_request_stats().hits > 0);
//! # Ok::<(), syncopt::SyncoptError>(())
//! ```
//!
//! [`AccessId`]: syncopt_ir::ids::AccessId
//! [`Program`]: syncopt_frontend::Program
//! [`SimResult`]: syncopt_machine::SimResult

use crate::report::{delay_label, level_label, meta_for};
use crate::{
    Compiled, DelayChoice, OptLevel, PipelineReport, ProfileReport, RunResult, SimReport,
    SyncoptError, TraceLevel, DEFAULT_TRACE_LIMIT,
};
use std::sync::Arc;
use syncopt_codegen::Optimized;
use syncopt_core::cache::{ArtifactCache, CacheStats};
use syncopt_core::{
    Analysis, Counters, ExplainReport, LintReport, PhaseTimings, RaceAnalysis, SyncOptions,
};
use syncopt_frontend::fingerprint::{context_fingerprint, Fingerprint};
use syncopt_frontend::pretty::function_to_string;
use syncopt_frontend::typeck::ProgramContext;
use syncopt_frontend::Program;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::print::cfg_to_string;
use syncopt_machine::{MachineConfig, ShardPartition, Trace};

/// Per-request pipeline knobs, mirroring the [`Syncopt`](crate::Syncopt)
/// builder's configuration.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Analyze for a fixed machine size (`None` = unbounded; `run`
    /// resolves it to the machine's processor count).
    pub procs: Option<u32>,
    /// Optimization level.
    pub level: OptLevel,
    /// Delay set constraining code motion.
    pub delay: DelayChoice,
    /// Observability level.
    pub trace: TraceLevel,
    /// Event-trace cap at [`TraceLevel::Events`].
    pub trace_limit: usize,
    /// Worker threads for the delay-set candidate loops (never part of a
    /// cache key: results are bit-identical for every value).
    pub threads: usize,
    /// Simulation shards for `run`: values above 1 execute the simulation
    /// on the conservative parallel engine
    /// ([`syncopt_machine::simulate_sharded`]). Never part of a cache key:
    /// the sharded engine is bit-identical to the sequential reference at
    /// every shard count, exactly like `threads`.
    pub sim_shards: usize,
    /// Processor-to-shard assignment strategy for sharded runs (inert at
    /// `sim_shards = 1`). Never part of a cache key: results are
    /// bit-identical under every strategy, exactly like `sim_shards`.
    pub sim_partition: ShardPartition,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            procs: None,
            level: OptLevel::Full,
            delay: DelayChoice::SyncRefined,
            trace: TraceLevel::Off,
            trace_limit: DEFAULT_TRACE_LIMIT,
            threads: 1,
            sim_shards: 1,
            sim_partition: ShardPartition::Block,
        }
    }
}

impl SessionOptions {
    fn sync_options(&self, procs: Option<u32>) -> SyncOptions {
        SyncOptions {
            procs,
            threads: self.threads,
            ..SyncOptions::default()
        }
    }
}

/// A long-lived analysis context: the same queries as the
/// [`Syncopt`](crate::Syncopt) builder, backed by a content-addressed
/// artifact cache shared across requests. See the [module
/// docs](self) for the cache-key derivation.
#[derive(Debug)]
pub struct AnalysisSession {
    cache: ArtifactCache,
    request_base: CacheStats,
}

impl Default for AnalysisSession {
    fn default() -> Self {
        AnalysisSession::new()
    }
}

impl AnalysisSession {
    /// A session with the default cache capacity.
    pub fn new() -> Self {
        AnalysisSession {
            cache: ArtifactCache::default(),
            request_base: CacheStats::default(),
        }
    }

    /// A session whose cache holds at most `capacity` artifacts.
    pub fn with_capacity(capacity: usize) -> Self {
        AnalysisSession {
            cache: ArtifactCache::new(capacity),
            request_base: CacheStats::default(),
        }
    }

    /// Cumulative cache counters over the session's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cache counters for the most recent request only (how much of it
    /// was served from cache).
    pub fn last_request_stats(&self) -> CacheStats {
        self.cache.stats().since(self.request_base)
    }

    /// Per-artifact-kind cache counters
    /// (`cache.<kind>.hits|misses|evictions`).
    pub fn kind_counters(&self) -> &Counters {
        self.cache.kind_counters()
    }

    /// Number of artifacts currently cached.
    pub fn cached_artifacts(&self) -> usize {
        self.cache.len()
    }

    /// Maximum number of artifacts the cache will hold.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Copies the last request's cache counters into `report` so the
    /// pipeline report proves how much work the request reused. Reports
    /// omit the section by default: a warm run's *answer* stays
    /// byte-identical to a cold run's.
    pub fn annotate_report(&self, report: &mut PipelineReport) {
        report.cache = Some(self.last_request_stats());
    }

    fn begin(&mut self) {
        self.request_base = self.cache.stats();
    }

    /// Parses, checks, lowers, analyzes, and optimizes `src`, reusing
    /// every cached artifact whose inputs are unchanged.
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering errors (never cached — errors are
    /// re-diagnosed with fresh spans on every request).
    pub fn compile(&mut self, src: &str, opts: &SessionOptions) -> Result<Compiled, SyncoptError> {
        self.begin();
        self.compile_inner(src, opts, opts.procs)
    }

    /// Compiles (analyzing for the machine's processor count unless
    /// `opts.procs` overrides it) and simulates on `config`.
    ///
    /// # Errors
    ///
    /// Returns frontend, lowering, or simulation errors.
    pub fn run(
        &mut self,
        src: &str,
        opts: &SessionOptions,
        config: &MachineConfig,
    ) -> Result<RunResult, SyncoptError> {
        self.begin();
        self.run_inner(src, opts, config)
    }

    /// Runs `src` twice — once at [`OptLevel::Blocking`] and once at
    /// `opts.level` — sharing the analysis between the two runs via the
    /// cache.
    ///
    /// # Errors
    ///
    /// Returns frontend, lowering, or simulation errors from either run.
    pub fn profile(
        &mut self,
        src: &str,
        opts: &SessionOptions,
        config: &MachineConfig,
    ) -> Result<ProfileReport, SyncoptError> {
        self.begin();
        let blocking_opts = SessionOptions {
            level: OptLevel::Blocking,
            ..opts.clone()
        };
        let blocking = self.run_inner(src, &blocking_opts, config)?;
        let optimized = self.run_inner(src, opts, config)?;
        Ok(ProfileReport {
            blocking: blocking.report().clone(),
            optimized: optimized.report().clone(),
        })
    }

    /// The race detector's classification of every conflicting data pair
    /// (cached per source text and processor count).
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering errors.
    pub fn races(
        &mut self,
        src: &str,
        opts: &SessionOptions,
    ) -> Result<Arc<RaceAnalysis>, SyncoptError> {
        self.begin();
        let key = src_fingerprint(src)
            .push("races.v1")
            .push(&procs_part(opts.procs));
        if let Some(races) = self.cache.get::<RaceAnalysis>("races", key) {
            return Ok(races);
        }
        let cfg = self.cfg_inner(src)?;
        let races = Arc::new(syncopt_core::detect_races(
            &cfg,
            &opts.sync_options(opts.procs),
        ));
        self.cache.insert_arc("races", key, Arc::clone(&races));
        Ok(races)
    }

    /// The full lint suite, including fence-coverage verification at
    /// every optimization level (cached per source text and processor
    /// count).
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering errors.
    pub fn lint(
        &mut self,
        src: &str,
        opts: &SessionOptions,
    ) -> Result<Arc<LintReport>, SyncoptError> {
        self.begin();
        let key = src_fingerprint(src)
            .push("lint.v1")
            .push(&procs_part(opts.procs));
        if let Some(report) = self.cache.get::<LintReport>("lint", key) {
            return Ok(report);
        }
        let cfg = self.cfg_inner(src)?;
        let sync_opts = opts.sync_options(opts.procs);
        let analysis = self.analysis_inner(&cfg, opts, opts.procs);
        let report = Arc::new(crate::lint::lint_with_analysis(&cfg, &analysis, &sync_opts));
        self.cache.insert_arc("lint", key, Arc::clone(&report));
        Ok(report)
    }

    /// Delay-set provenance: why each `D_SS` pair was kept or dropped
    /// (cached per source text and processor count).
    ///
    /// # Errors
    ///
    /// Returns frontend or lowering errors.
    pub fn explain(
        &mut self,
        src: &str,
        opts: &SessionOptions,
    ) -> Result<Arc<ExplainReport>, SyncoptError> {
        self.begin();
        let key = src_fingerprint(src)
            .push("explain.v1")
            .push(&procs_part(opts.procs));
        if let Some(report) = self.cache.get::<ExplainReport>("explain", key) {
            return Ok(report);
        }
        let cfg = self.cfg_inner(src)?;
        let sync_opts = opts.sync_options(opts.procs);
        let analysis = self.analysis_inner(&cfg, opts, opts.procs);
        let report = Arc::new(syncopt_core::explain(&cfg, &analysis, &sync_opts));
        self.cache.insert_arc("explain", key, Arc::clone(&report));
        Ok(report)
    }

    // ---- internal cached pipeline stages --------------------------------

    fn run_inner(
        &mut self,
        src: &str,
        opts: &SessionOptions,
        config: &MachineConfig,
    ) -> Result<RunResult, SyncoptError> {
        let procs = opts.procs.unwrap_or(config.procs);
        let mut compiled = self.compile_inner(src, opts, Some(procs))?;
        let mut trace = None;
        let cache = &mut self.cache;
        let sim = compiled.report.timings.time("simulate", || {
            if opts.trace >= TraceLevel::Events {
                if opts.sim_shards > 1 {
                    return Err(syncopt_machine::SimError::new(
                        "event tracing requires the sequential engine; \
                         rerun with sim_shards = 1 (--sim-shards 1)",
                    ));
                }
                if opts.sim_partition != ShardPartition::Block {
                    return Err(syncopt_machine::SimError::new(
                        "event tracing requires the sequential engine; \
                         rerun with the default partition (--sim-partition block)",
                    ));
                }
                // Traces are request-scoped observability, not artifacts:
                // always simulate fresh so the trace matches this run.
                syncopt_machine::simulate_traced(&compiled.optimized.cfg, config, opts.trace_limit)
                    .map(|(sim, t)| {
                        trace = Some(t);
                        sim
                    })
            } else if opts.sim_shards > 1 {
                // The parallel engine is bit-identical to the sequential
                // one, so it shares the `sim` cache key: an artifact
                // computed by either engine serves both.
                let key = Fingerprint::of_parts(&[
                    "sim.v1",
                    &cfg_to_string(&compiled.optimized.cfg),
                    &format!("{config:?}"),
                ]);
                cache
                    .get_or_try("sim", key, || {
                        syncopt_machine::simulate_sharded_with(
                            &compiled.optimized.cfg,
                            config,
                            opts.sim_shards,
                            opts.sim_partition,
                            syncopt_machine::SimOutputs::full(),
                        )
                    })
                    .map(|sim| (*sim).clone())
            } else {
                let key = Fingerprint::of_parts(&[
                    "sim.v1",
                    &cfg_to_string(&compiled.optimized.cfg),
                    &format!("{config:?}"),
                ]);
                cache
                    .get_or_try("sim", key, || {
                        syncopt_machine::simulate(&compiled.optimized.cfg, config)
                    })
                    .map(|sim| (*sim).clone())
            }
        })?;
        compiled.report.meta.machine = Some(config.name.clone());
        let mut sim_report = SimReport::from_sim(&sim);
        sim_report.trace_truncated = trace.as_ref().map(Trace::truncated);
        compiled.report.sim = Some(sim_report);
        Ok(RunResult {
            compiled,
            sim,
            trace,
        })
    }

    fn compile_inner(
        &mut self,
        src: &str,
        opts: &SessionOptions,
        procs: Option<u32>,
    ) -> Result<Compiled, SyncoptError> {
        let mut timings = PhaseTimings::new(opts.trace >= TraceLevel::Phases);
        let src_fp = src_fingerprint(src);
        let cache = &mut self.cache;
        let ast: Arc<Program> = timings.time("parse", || {
            cache.get_or_try("ast", src_fp, || syncopt_frontend::parse_program(src))
        })?;
        timings.time("typeck", || check_cached(cache, &ast))?;
        let inlined: Arc<Program> = timings.time("inline", || {
            cache.get_or_try("inlined", src_fp, || {
                syncopt_frontend::inline::inline_program(&ast)
            })
        })?;
        let source_cfg: Arc<Cfg> = timings.time("lower", || {
            cache.get_or_try("cfg", src_fp, || syncopt_ir::lower::lower_main(&inlined))
        })?;
        let analysis = timings.time("analyze", || {
            analysis_cached(cache, &source_cfg, opts, procs)
        });
        let optimized: Arc<Optimized> = timings.time("optimize", || {
            let key = src_fp
                .push("opt.v1")
                .push(&procs_part(procs))
                .push(level_label(opts.level))
                .push(delay_label(opts.delay));
            cache.get_or("opt", key, || {
                syncopt_codegen::optimize(&source_cfg, &analysis, opts.level, opts.delay)
            })
        });
        let report = PipelineReport {
            meta: meta_for(procs.unwrap_or(0), opts.level, opts.delay, None),
            timings,
            analysis: analysis.stats(),
            counters: analysis.metrics.clone(),
            codegen: optimized.stats,
            cache: None,
            sim: None,
        };
        Ok(Compiled {
            source_cfg: (*source_cfg).clone(),
            analysis: (*analysis).clone(),
            optimized: (*optimized).clone(),
            report,
        })
    }

    /// The cached source CFG for `src` (the parse → typeck → inline →
    /// lower prefix of the pipeline, without timings).
    fn cfg_inner(&mut self, src: &str) -> Result<Arc<Cfg>, SyncoptError> {
        let src_fp = src_fingerprint(src);
        let cache = &mut self.cache;
        let ast: Arc<Program> =
            cache.get_or_try("ast", src_fp, || syncopt_frontend::parse_program(src))?;
        check_cached(cache, &ast)?;
        let inlined: Arc<Program> = cache.get_or_try("inlined", src_fp, || {
            syncopt_frontend::inline::inline_program(&ast)
        })?;
        Ok(cache.get_or_try("cfg", src_fp, || syncopt_ir::lower::lower_main(&inlined))?)
    }

    fn analysis_inner(
        &mut self,
        cfg: &Arc<Cfg>,
        opts: &SessionOptions,
        procs: Option<u32>,
    ) -> Arc<Analysis> {
        analysis_cached(&mut self.cache, cfg, opts, procs)
    }
}

/// Fingerprint of the raw source text (the key for every span-bearing
/// artifact).
fn src_fingerprint(src: &str) -> Fingerprint {
    Fingerprint::of_parts(&["src.v1", src])
}

/// The processor-count component of option-dependent cache keys.
fn procs_part(procs: Option<u32>) -> String {
    procs.map_or_else(|| "any".to_string(), |p| p.to_string())
}

/// Type checks `program` with per-function caching: the program-level
/// checks run every time (they are cheap and produce the first error in
/// declaration order), while each function body's verdict is keyed by the
/// context fingerprint plus the function's canonical text — so editing
/// one function of an N-function program re-checks only that function.
/// Only successes are cached; errors re-diagnose with fresh spans.
fn check_cached(
    cache: &mut ArtifactCache,
    program: &Program,
) -> Result<(), syncopt_frontend::FrontendError> {
    let ctx = ProgramContext::build(program)?;
    let ctx_fp = context_fingerprint(program);
    for func in &program.functions {
        let key = ctx_fp.push("fncheck.v1").push(&function_to_string(func));
        if cache.get::<()>("fncheck", key).is_some() {
            continue;
        }
        ctx.check_function(func)?;
        cache.insert("fncheck", key, ());
    }
    Ok(())
}

/// The cached delay-set analysis for a source CFG. Keyed by the
/// *canonical printed* CFG (span-free, like [`Analysis`] itself) plus the
/// processor count, so formatting-only edits reuse the analysis.
fn analysis_cached(
    cache: &mut ArtifactCache,
    cfg: &Arc<Cfg>,
    opts: &SessionOptions,
    procs: Option<u32>,
) -> Arc<Analysis> {
    let key = Fingerprint::of_parts(&["analysis.v1", &cfg_to_string(cfg), &procs_part(procs)]);
    cache.get_or("analysis", key, || {
        syncopt_core::analyze_with(cfg, &opts.sync_options(procs))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Syncopt;

    const SRC: &str = r#"
        shared int A[16]; flag F;
        fn helper(int v) { work(v); }
        fn main() {
            A[MYPROC] = MYPROC * 2;
            barrier;
            int v; v = A[(MYPROC + 1) % PROCS];
            if (MYPROC == 0) { post F; } else { wait F; }
            helper(v);
        }
    "#;

    fn opts(procs: u32) -> SessionOptions {
        SessionOptions {
            procs: Some(procs),
            ..SessionOptions::default()
        }
    }

    #[test]
    fn warm_compile_is_identical_and_all_hits() {
        let mut s = AnalysisSession::new();
        let cold = s.compile(SRC, &opts(4)).unwrap();
        assert!(s.last_request_stats().misses > 0);
        let warm = s.compile(SRC, &opts(4)).unwrap();
        assert_eq!(cold.report, warm.report);
        assert_eq!(
            syncopt_ir::print::cfg_to_string(&cold.optimized.cfg),
            syncopt_ir::print::cfg_to_string(&warm.optimized.cfg)
        );
        let stats = s.last_request_stats();
        assert_eq!(stats.misses, 0, "warm compile rebuilt something");
        assert!(stats.hits > 0);
    }

    #[test]
    fn session_matches_builder_exactly() {
        let mut s = AnalysisSession::new();
        let via_session = s.compile(SRC, &opts(4)).unwrap();
        let via_builder = Syncopt::new(SRC).procs(4).compile().unwrap();
        assert_eq!(via_session.report, via_builder.report);
        assert_eq!(
            via_session.analysis.delay_sync.pairs(),
            via_builder.analysis.delay_sync.pairs()
        );
    }

    #[test]
    fn single_function_edit_reuses_unedited_function_checks() {
        let mut s = AnalysisSession::new();
        s.compile(SRC, &opts(4)).unwrap();
        // Edit only `main`: `helper` keeps its fingerprint and its cached
        // verdict, so typeck re-checks exactly one function.
        let edited = SRC.replace("MYPROC * 2", "MYPROC * 3");
        s.compile(&edited, &opts(4)).unwrap();
        let kinds = s.kind_counters();
        assert_eq!(kinds.get("cache.fncheck.hits"), 1, "{kinds:?}");
        assert_eq!(kinds.get("cache.fncheck.misses"), 3, "{kinds:?}");
    }

    #[test]
    fn whitespace_edit_reuses_analysis_and_sim() {
        let mut s = AnalysisSession::new();
        let config = MachineConfig::cm5(4);
        let a = s.run(SRC, &opts(4), &config).unwrap();
        let spaced = SRC.replace("barrier;", "barrier   ;");
        let b = s.run(&spaced, &opts(4), &config).unwrap();
        assert_eq!(a.sim.memory, b.sim.memory);
        assert_eq!(a.sim.exec_cycles, b.sim.exec_cycles);
        // The reformatted source re-parses and re-lowers (raw-text keys)
        // but reuses the span-free analysis and simulation artifacts.
        let kinds = s.kind_counters();
        assert!(kinds.get("cache.analysis.hits") >= 1, "{kinds:?}");
        assert!(kinds.get("cache.sim.hits") >= 1, "{kinds:?}");
    }

    #[test]
    fn profile_shares_analysis_between_levels() {
        let mut s = AnalysisSession::new();
        let config = MachineConfig::cm5(4);
        let p = s.profile(SRC, &opts(4), &config).unwrap();
        assert_eq!(p.blocking.meta.level, OptLevel::Blocking);
        // One analysis miss, one hit: blocking and optimized share it.
        assert_eq!(s.kind_counters().get("cache.analysis.misses"), 1);
        assert!(s.kind_counters().get("cache.analysis.hits") >= 1);
    }

    #[test]
    fn annotate_report_adds_cache_section() {
        let mut s = AnalysisSession::new();
        let mut c = s.compile(SRC, &opts(4)).unwrap();
        assert!(c.report.cache.is_none());
        s.annotate_report(&mut c.report);
        let cache = c.report.cache.unwrap();
        assert!(cache.misses > 0);
        let json = c.report.to_json();
        assert!(json.get("cache").is_some());
    }

    #[test]
    fn sharded_run_matches_sequential_observables() {
        let config = MachineConfig::cm5(4);
        // Separate sessions so the second run cannot just replay the
        // first's cached artifact.
        let seq = AnalysisSession::new().run(SRC, &opts(4), &config).unwrap();
        let sharded_opts = SessionOptions {
            sim_shards: 4,
            ..opts(4)
        };
        let par = AnalysisSession::new()
            .run(SRC, &sharded_opts, &config)
            .unwrap();
        assert_eq!(seq.sim.exec_cycles, par.sim.exec_cycles);
        assert_eq!(seq.sim.memory, par.sim.memory);
        assert_eq!(seq.sim.metrics.per_proc, par.sim.metrics.per_proc);
        assert!(par.sim.metrics.work.shard_horizon_advances > 0);
    }

    #[test]
    fn event_tracing_rejects_sharded_runs() {
        let mut s = AnalysisSession::new();
        let config = MachineConfig::cm5(4);
        let o = SessionOptions {
            sim_shards: 2,
            trace: TraceLevel::Events,
            ..opts(4)
        };
        let err = s.run(SRC, &o, &config).unwrap_err();
        assert!(
            err.to_string().contains("sequential engine"),
            "unexpected diagnostic: {err}"
        );
    }

    #[test]
    fn errors_are_not_cached_and_rediagnose() {
        let mut s = AnalysisSession::new();
        let bad = "fn main() { x = 1; }";
        let e1 = s.compile(bad, &opts(2)).unwrap_err();
        let e2 = s.compile(bad, &opts(2)).unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());
        assert!(e1.to_string().contains("unknown variable"));
    }
}
