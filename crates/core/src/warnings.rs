//! Static synchronization diagnostics.
//!
//! The analyses already gather everything needed to warn about the classic
//! SPMD synchronization bugs before running anything: waits that no post
//! can ever release, unbalanced lock usage, and barriers the static
//! alignment analysis refused (which the paper's runtime check would then
//! catch at execution time, §5.2).
//!
//! Warnings share the [`crate::diag`] framework with the race detector
//! ([`crate::races`]): each maps to a stable code (`W001`–`W003`) and a
//! severity via [`SyncWarning::to_diagnostic`].

use crate::affine::may_match_any_proc;
use crate::barrier::{aligned_barriers, BarrierPolicy};
use crate::diag::{Diagnostic, Severity};
use std::collections::HashMap;
use std::fmt;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;

/// A diagnostic about the program's synchronization structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncWarning {
    /// A `wait` no post site can match: it will block forever if reached.
    UnmatchedWait {
        /// The orphaned wait.
        wait: AccessId,
    },
    /// A lock with unbalanced acquire/release site counts.
    UnbalancedLock {
        /// Lock variable name.
        lock: String,
        /// Number of acquire sites.
        acquires: usize,
        /// Number of release sites.
        releases: usize,
        /// A representative site (first acquire, else first release),
        /// for source attribution.
        site: AccessId,
    },
    /// A barrier the static alignment analysis could not prove aligned —
    /// the optimistic compilation path relies on the runtime check.
    UnprovenBarrier {
        /// The barrier site.
        barrier: AccessId,
    },
}

impl SyncWarning {
    /// The stable diagnostic code (see `docs/DIAGNOSTICS.md`).
    pub fn code(&self) -> &'static str {
        match self {
            SyncWarning::UnmatchedWait { .. } => "W001",
            SyncWarning::UnbalancedLock { .. } => "W002",
            SyncWarning::UnprovenBarrier { .. } => "W003",
        }
    }

    /// The severity level this warning is reported at.
    pub fn severity(&self) -> Severity {
        match self {
            // A wait nothing can release deadlocks if reached; a lock
            // imbalance usually means a leaked or double release.
            SyncWarning::UnmatchedWait { .. } | SyncWarning::UnbalancedLock { .. } => {
                Severity::Warning
            }
            // Unproven alignment is a compilation-strategy fact, not a
            // bug: the runtime check decides.
            SyncWarning::UnprovenBarrier { .. } => Severity::Note,
        }
    }

    /// The access site the warning is anchored to.
    pub fn site(&self) -> AccessId {
        match self {
            SyncWarning::UnmatchedWait { wait } => *wait,
            SyncWarning::UnbalancedLock { site, .. } => *site,
            SyncWarning::UnprovenBarrier { barrier } => *barrier,
        }
    }

    /// Converts the warning to a span-carrying [`Diagnostic`].
    pub fn to_diagnostic(&self, cfg: &Cfg) -> Diagnostic {
        let span = cfg.accesses.info(self.site()).span;
        let d = Diagnostic::new(self.code(), self.severity(), self.to_string(), span);
        match self {
            SyncWarning::UnmatchedWait { .. } => d.with_note(
                "no `post` in the program targets this flag (or its index \
                 range never overlaps)",
                None,
            ),
            SyncWarning::UnbalancedLock { .. } => d.with_note(
                "every execution path should release exactly the locks it \
                 acquires",
                None,
            ),
            SyncWarning::UnprovenBarrier { .. } => d.with_note(
                "the optimistic compilation path inserts a runtime alignment \
                 check here (§5.2)",
                None,
            ),
        }
    }
}

impl fmt::Display for SyncWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncWarning::UnmatchedWait { wait } => {
                write!(
                    f,
                    "wait {wait} has no matching post site (will deadlock if reached)"
                )
            }
            SyncWarning::UnbalancedLock {
                lock,
                acquires,
                releases,
                ..
            } => write!(
                f,
                "lock `{lock}` has {acquires} acquire site(s) but {releases} release site(s)"
            ),
            SyncWarning::UnprovenBarrier { barrier } => write!(
                f,
                "barrier {barrier} is not statically aligned (runtime check will decide)"
            ),
        }
    }
}

/// Computes synchronization warnings for a program.
///
/// The result is deterministically ordered: by anchoring access site,
/// then by code.
pub fn sync_warnings(cfg: &Cfg) -> Vec<SyncWarning> {
    let mut out = Vec::new();

    // Orphaned waits.
    let posts: Vec<&syncopt_ir::access::AccessInfo> = cfg
        .accesses
        .iter()
        .filter(|(_, i)| i.kind == AccessKind::Post)
        .map(|(_, i)| i)
        .collect();
    for (id, info) in cfg.accesses.iter() {
        if info.kind != AccessKind::Wait {
            continue;
        }
        let matched = posts.iter().any(|p| {
            p.var == info.var && may_match_any_proc(p.index.as_ref(), info.index.as_ref())
        });
        if !matched {
            out.push(SyncWarning::UnmatchedWait { wait: id });
        }
    }

    // Unbalanced locks.
    let mut acq: HashMap<_, usize> = HashMap::new();
    let mut rel: HashMap<_, usize> = HashMap::new();
    let mut first_site: HashMap<_, AccessId> = HashMap::new();
    for (id, info) in cfg.accesses.iter() {
        match info.kind {
            AccessKind::LockAcq => {
                *acq.entry(info.var).or_insert(0) += 1;
                first_site.entry(info.var).or_insert(id);
            }
            AccessKind::LockRel => {
                *rel.entry(info.var).or_insert(0) += 1;
                first_site.entry(info.var).or_insert(id);
            }
            _ => {}
        }
    }
    let mut locks: Vec<_> = acq.keys().chain(rel.keys()).copied().collect();
    locks.sort();
    locks.dedup();
    for l in locks {
        let a = acq.get(&l).copied().unwrap_or(0);
        let r = rel.get(&l).copied().unwrap_or(0);
        if a != r {
            out.push(SyncWarning::UnbalancedLock {
                lock: l.map(|v| cfg.vars.info(v).name.clone()).unwrap_or_default(),
                acquires: a,
                releases: r,
                site: first_site[&l],
            });
        }
    }

    // Barriers the static policy refuses.
    let aligned = aligned_barriers(cfg, BarrierPolicy::Static);
    for (id, info) in cfg.accesses.iter() {
        if info.kind == AccessKind::Barrier && !aligned.contains(&id) {
            out.push(SyncWarning::UnprovenBarrier { barrier: id });
        }
    }

    out.sort_by_key(|w| (w.site(), w.code()));
    out
}

/// [`sync_warnings`] as span-carrying [`Diagnostic`]s, in
/// [`crate::diag::sort_diagnostics`] order.
pub fn warning_diagnostics(cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = sync_warnings(cfg)
        .iter()
        .map(|w| w.to_diagnostic(cfg))
        .collect();
    crate::diag::sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn warnings(src: &str) -> Vec<SyncWarning> {
        sync_warnings(&lower_main(&prepare_program(src).unwrap()).unwrap())
    }

    #[test]
    fn clean_program_has_no_warnings() {
        let w = warnings(
            r#"
            shared int X; flag F; lock l;
            fn main() {
                if (MYPROC == 0) { X = 1; post F; } else { wait F; }
                lock l; X = 2; unlock l;
                barrier;
            }
            "#,
        );
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn orphaned_wait_is_reported() {
        let w = warnings("flag F; fn main() { wait F; }");
        assert_eq!(w.len(), 1);
        assert!(matches!(w[0], SyncWarning::UnmatchedWait { .. }));
        assert!(w[0].to_string().contains("deadlock"));
        assert_eq!(w[0].code(), "W001");
        assert_eq!(w[0].severity(), Severity::Warning);
    }

    #[test]
    fn index_disjoint_post_does_not_match() {
        // post f[MYPROC] can never release wait f[MYPROC + PROCS] — out of
        // any processor's post range... but PROCS is unknown statically,
        // so the conservative matcher accepts affine overlaps; use clearly
        // disjoint constants instead.
        let w = warnings("flag F[8]; fn main() { post F[0]; wait F[1]; }");
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(matches!(w[0], SyncWarning::UnmatchedWait { .. }));
    }

    #[test]
    fn unbalanced_lock_is_reported() {
        let w = warnings("lock l; fn main() { lock l; }");
        assert_eq!(w.len(), 1);
        assert!(
            w[0].to_string().contains("1 acquire site(s) but 0"),
            "{}",
            w[0]
        );
        assert_eq!(w[0].code(), "W002");
    }

    #[test]
    fn unproven_barrier_is_reported() {
        let w = warnings("fn main() { if (MYPROC == 0) { barrier; } }");
        assert_eq!(w.len(), 1);
        assert!(matches!(w[0], SyncWarning::UnprovenBarrier { .. }));
        assert_eq!(w[0].severity(), Severity::Note);
    }

    #[test]
    fn warnings_are_deterministically_ordered() {
        let src = r#"
            flag F; lock l;
            fn main() {
                wait F;
                lock l;
                if (MYPROC == 0) { barrier; }
            }
        "#;
        let w = warnings(src);
        assert_eq!(w.len(), 3, "{w:?}");
        for _ in 0..4 {
            assert_eq!(warnings(src), w);
        }
        let mut sites: Vec<_> = w.iter().map(SyncWarning::site).collect();
        let sorted = {
            let mut s = sites.clone();
            s.sort();
            s
        };
        assert_eq!(sites, sorted);
        sites.dedup();
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn diagnostics_carry_spans() {
        let src = "flag F; fn main() { wait F; }";
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let diags = warning_diagnostics(&cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "W001");
        let rendered = diags[0].render(src, "t.ms");
        assert!(rendered.contains("wait F"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn kernels_are_warning_free() {
        for kernel in syncopt_kernels::all_kernels(8) {
            let w = warnings(&kernel.source);
            assert!(w.is_empty(), "{}: {w:?}", kernel.name);
        }
    }
}
