//! Static synchronization diagnostics.
//!
//! The analyses already gather everything needed to warn about the classic
//! SPMD synchronization bugs before running anything: waits that no post
//! can ever release, unbalanced lock usage, and barriers the static
//! alignment analysis refused (which the paper's runtime check would then
//! catch at execution time, §5.2).

use crate::affine::may_match_any_proc;
use crate::barrier::{aligned_barriers, BarrierPolicy};
use std::collections::HashMap;
use std::fmt;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;

/// A diagnostic about the program's synchronization structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncWarning {
    /// A `wait` no post site can match: it will block forever if reached.
    UnmatchablePost {
        /// The orphaned wait.
        wait: AccessId,
    },
    /// A lock with unbalanced acquire/release site counts.
    UnbalancedLock {
        /// Lock variable name.
        lock: String,
        /// Number of acquire sites.
        acquires: usize,
        /// Number of release sites.
        releases: usize,
    },
    /// A barrier the static alignment analysis could not prove aligned —
    /// the optimistic compilation path relies on the runtime check.
    UnprovenBarrier {
        /// The barrier site.
        barrier: AccessId,
    },
}

impl fmt::Display for SyncWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncWarning::UnmatchablePost { wait } => {
                write!(f, "wait {wait} has no matching post site (will deadlock if reached)")
            }
            SyncWarning::UnbalancedLock {
                lock,
                acquires,
                releases,
            } => write!(
                f,
                "lock `{lock}` has {acquires} acquire site(s) but {releases} release site(s)"
            ),
            SyncWarning::UnprovenBarrier { barrier } => write!(
                f,
                "barrier {barrier} is not statically aligned (runtime check will decide)"
            ),
        }
    }
}

/// Computes synchronization warnings for a program.
pub fn sync_warnings(cfg: &Cfg) -> Vec<SyncWarning> {
    let mut out = Vec::new();

    // Orphaned waits.
    let posts: Vec<&syncopt_ir::access::AccessInfo> = cfg
        .accesses
        .iter()
        .filter(|(_, i)| i.kind == AccessKind::Post)
        .map(|(_, i)| i)
        .collect();
    for (id, info) in cfg.accesses.iter() {
        if info.kind != AccessKind::Wait {
            continue;
        }
        let matched = posts.iter().any(|p| {
            p.var == info.var && may_match_any_proc(p.index.as_ref(), info.index.as_ref())
        });
        if !matched {
            out.push(SyncWarning::UnmatchablePost { wait: id });
        }
    }

    // Unbalanced locks.
    let mut acq: HashMap<_, usize> = HashMap::new();
    let mut rel: HashMap<_, usize> = HashMap::new();
    for (_, info) in cfg.accesses.iter() {
        match info.kind {
            AccessKind::LockAcq => *acq.entry(info.var).or_insert(0) += 1,
            AccessKind::LockRel => *rel.entry(info.var).or_insert(0) += 1,
            _ => {}
        }
    }
    let mut locks: Vec<_> = acq.keys().chain(rel.keys()).copied().collect();
    locks.sort();
    locks.dedup();
    for l in locks {
        let a = acq.get(&l).copied().unwrap_or(0);
        let r = rel.get(&l).copied().unwrap_or(0);
        if a != r {
            out.push(SyncWarning::UnbalancedLock {
                lock: l
                    .map(|v| cfg.vars.info(v).name.clone())
                    .unwrap_or_default(),
                acquires: a,
                releases: r,
            });
        }
    }

    // Barriers the static policy refuses.
    let aligned = aligned_barriers(cfg, BarrierPolicy::Static);
    for (id, info) in cfg.accesses.iter() {
        if info.kind == AccessKind::Barrier && !aligned.contains(&id) {
            out.push(SyncWarning::UnprovenBarrier { barrier: id });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn warnings(src: &str) -> Vec<SyncWarning> {
        sync_warnings(&lower_main(&prepare_program(src).unwrap()).unwrap())
    }

    #[test]
    fn clean_program_has_no_warnings() {
        let w = warnings(
            r#"
            shared int X; flag F; lock l;
            fn main() {
                if (MYPROC == 0) { X = 1; post F; } else { wait F; }
                lock l; X = 2; unlock l;
                barrier;
            }
            "#,
        );
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn orphaned_wait_is_reported() {
        let w = warnings("flag F; fn main() { wait F; }");
        assert_eq!(w.len(), 1);
        assert!(matches!(w[0], SyncWarning::UnmatchablePost { .. }));
        assert!(w[0].to_string().contains("deadlock"));
    }

    #[test]
    fn index_disjoint_post_does_not_match() {
        // post f[MYPROC] can never release wait f[MYPROC + PROCS] — out of
        // any processor's post range... but PROCS is unknown statically,
        // so the conservative matcher accepts affine overlaps; use clearly
        // disjoint constants instead.
        let w = warnings(
            "flag F[8]; fn main() { post F[0]; wait F[1]; }",
        );
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(matches!(w[0], SyncWarning::UnmatchablePost { .. }));
    }

    #[test]
    fn unbalanced_lock_is_reported() {
        let w = warnings("lock l; fn main() { lock l; }");
        assert_eq!(w.len(), 1);
        assert!(
            w[0].to_string().contains("1 acquire site(s) but 0"),
            "{}",
            w[0]
        );
    }

    #[test]
    fn unproven_barrier_is_reported() {
        let w = warnings("fn main() { if (MYPROC == 0) { barrier; } }");
        assert_eq!(w.len(), 1);
        assert!(matches!(w[0], SyncWarning::UnprovenBarrier { .. }));
    }

    #[test]
    fn kernels_are_warning_free() {
        for kernel in syncopt_kernels::all_kernels(8) {
            let w = warnings(&kernel.source);
            assert!(w.is_empty(), "{}: {w:?}", kernel.name);
        }
    }
}
