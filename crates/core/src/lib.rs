#![warn(missing_docs)]

//! Delay-set analysis for explicitly parallel SPMD programs.
//!
//! This crate is the reproduction of the analysis half of *Optimizing
//! Parallel Programs with Explicit Synchronization* (Krishnamurthy &
//! Yelick, PLDI 1995):
//!
//! * [`conflict`] — the conflict set `C` with affine subscript
//!   disambiguation ([`affine`]);
//! * [`cycle`] — Shasha–Snir cycle detection specialized to SPMD programs
//!   (the two-copy back-path construction), producing the baseline delay
//!   set `D_SS`;
//! * [`sync`] — the paper's contribution: refining the delay set with
//!   post-wait precedence, barrier alignment ([`barrier`]), and lock
//!   mutual exclusion ([`locks`]).
//!
//! The one-stop entry point is [`analyze`]:
//!
//! ```
//! use syncopt_frontend::prepare_program;
//! use syncopt_ir::lower::lower_main;
//! use syncopt_core::analyze;
//!
//! let src = r#"
//!     shared int X; flag F;
//!     fn main() {
//!         int v;
//!         if (MYPROC == 0) { X = 1; post F; }
//!         else { wait F; v = X; }
//!     }
//! "#;
//! let cfg = lower_main(&prepare_program(src)?)?;
//! let analysis = analyze(&cfg);
//! // Synchronization analysis never grows the delay set.
//! assert!(analysis.delay_sync.is_subset_of(&analysis.delay_ss));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod affine;
pub mod barrier;
pub mod cache;
pub mod conflict;
pub mod corpus;
pub mod cycle;
pub mod delay;
pub mod diag;
#[cfg(test)]
mod difftest;
pub mod explain;
pub mod guards;
pub mod lint;
pub mod locks;
pub mod metrics;
pub mod obs;
pub mod races;
pub mod sync;
pub mod warnings;

pub use barrier::BarrierPolicy;
pub use cache::{ArtifactCache, CacheStats};
pub use conflict::ConflictSet;
pub use cycle::shasha_snir;
pub use delay::DelaySet;
pub use diag::{apply_severity_overrides, sort_diagnostics, Diagnostic, Severity, KNOWN_CODES};
pub use explain::{
    explain, DropReason, DroppedPair, ExplainReport, KeptPair, SyncFact, EXPLAIN_SCHEMA,
};
pub use lint::{run_lints, FenceCheck, LintInput, LintReport, LINT_SCHEMA};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use obs::{Counters, PhaseTimings};
pub use races::{detect_races, race_diagnostics, Confidence, RaceAnalysis, RaceReport};
pub use sync::{analyze_sync, Precedence, SyncAnalysis, SyncOptions};
pub use warnings::{sync_warnings, warning_diagnostics, SyncWarning};

use syncopt_ir::cfg::Cfg;

/// Combined result of running both the baseline and the refined analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The conflict set `C` (unoriented).
    pub conflicts: ConflictSet,
    /// Shasha–Snir delay set (baseline, §4).
    pub delay_ss: DelaySet,
    /// Synchronization-refined delay set (§5).
    pub delay_sync: DelaySet,
    /// The detailed synchronization-analysis artifacts.
    pub sync: SyncAnalysis,
    /// Work counters from every analysis stage (`conflict.*`, `cycle.*`,
    /// `sync.*`, `delay.*` keys), for the pipeline observability report.
    pub metrics: Counters,
}

impl Analysis {
    /// Summary counters for reporting (delay-set sizes per kernel).
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            accesses: self.delay_ss.num_accesses(),
            conflict_pairs: self.conflicts.unordered_pairs().len(),
            delay_ss: self.delay_ss.len(),
            delay_sync: self.delay_sync.len(),
            precedence_pairs: self.sync.precedence.len(),
            aligned_barriers: self.sync.aligned_barriers.len(),
        }
    }
}

/// Summary counters of an [`Analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Number of access sites.
    pub accesses: usize,
    /// Number of unordered conflicting pairs.
    pub conflict_pairs: usize,
    /// Size of the Shasha–Snir delay set.
    pub delay_ss: usize,
    /// Size of the refined delay set.
    pub delay_sync: usize,
    /// Size of the precedence relation.
    pub precedence_pairs: usize,
    /// Number of statically aligned barriers.
    pub aligned_barriers: usize,
}

/// Runs conflict construction, Shasha–Snir cycle detection, and the
/// synchronization-aware refinement with default options.
pub fn analyze(cfg: &Cfg) -> Analysis {
    analyze_with(cfg, &SyncOptions::default())
}

/// [`analyze`] for a program compiled for a fixed machine size: the known
/// processor count enables modular subscript disambiguation.
pub fn analyze_for(cfg: &Cfg, procs: u32) -> Analysis {
    analyze_with(
        cfg,
        &SyncOptions {
            procs: Some(procs),
            ..SyncOptions::default()
        },
    )
}

/// [`analyze`] with explicit options (e.g. the barrier policy).
pub fn analyze_with(cfg: &Cfg, opts: &SyncOptions) -> Analysis {
    let mut metrics = Counters::new();
    let conflicts = ConflictSet::build_bounded(cfg, opts.procs);
    metrics.set("conflict.pairs", conflicts.unordered_pairs().len() as u64);
    metrics.set(
        "conflict.directed_edges",
        conflicts.num_directed_edges() as u64,
    );
    let po = syncopt_ir::order::ProgramOrder::compute(cfg);
    let (delay_ss, ss_stats) = cycle::compute_delay_set_counted(
        cfg,
        &conflicts,
        &po,
        &cycle::DelayOptions {
            threads: opts.threads,
            ..cycle::DelayOptions::default()
        },
    );
    metrics.set("cycle.candidate_pairs", ss_stats.candidates);
    metrics.set("cycle.pruned_candidates", ss_stats.pruned_candidates);
    metrics.set("cycle.backpath_queries", ss_stats.backpath_queries);
    metrics.set("cycle.bfs_fallbacks", ss_stats.bfs_fallbacks);
    metrics.set("cycle.oracle_builds", ss_stats.oracle_builds);
    metrics.set("cycle.sccs", ss_stats.sccs);
    metrics.set("cycle.closure_word_ors", ss_stats.closure_word_ors);
    let sync = analyze_sync(cfg, opts);
    metrics.merge(&sync.counters);
    metrics.set("delay.ss_pairs", delay_ss.len() as u64);
    metrics.set("delay.refined_pairs", sync.delay.len() as u64);
    metrics.set(
        "delay.pairs_dropped",
        (delay_ss.len().saturating_sub(sync.delay.len())) as u64,
    );
    Analysis {
        conflicts,
        delay_ss,
        delay_sync: sync.delay.clone(),
        sync,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    #[test]
    fn analyze_produces_consistent_stats() {
        let src = r#"
            shared int X; shared int Y; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; Y = 2; post F; }
                else { wait F; v = Y; v = X; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let a = analyze(&cfg);
        let s = a.stats();
        assert_eq!(s.accesses, cfg.accesses.len());
        assert!(s.delay_sync <= s.delay_ss);
        assert!(s.precedence_pairs > 0);
        assert!(a.delay_sync.is_subset_of(&a.delay_ss));
    }

    #[test]
    fn barrier_policy_changes_results() {
        // A barrier under a MYPROC branch: Static refuses it, AssumeAligned
        // uses it.
        let src = r#"
            shared int X;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; barrier; } else { barrier; v = X; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conservative = analyze_with(
            &cfg,
            &SyncOptions {
                barrier_policy: BarrierPolicy::Static,
                ..SyncOptions::default()
            },
        );
        let optimistic = analyze_with(
            &cfg,
            &SyncOptions {
                barrier_policy: BarrierPolicy::AssumeAligned,
                ..SyncOptions::default()
            },
        );
        assert_eq!(conservative.stats().aligned_barriers, 0);
        assert_eq!(optimistic.stats().aligned_barriers, 2);
        assert!(optimistic.delay_sync.len() <= conservative.delay_sync.len());
    }
}
