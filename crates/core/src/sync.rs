//! Synchronization-aware delay-set refinement — the paper's main
//! contribution (§5).
//!
//! The algorithm (§5.1, extended with barriers §5.2 and locks §5.3):
//!
//! 1. compute the dominator tree;
//! 2. compute the initial delay set `D1` by restricting back-path detection
//!    to pairs including a synchronization access;
//! 3. seed the precedence relation `R` with matching post→wait edges and
//!    (aligned) barrier episode edges;
//! 4. grow `R` to a fixpoint: transitivity, plus chaining through `D1`
//!    edges anchored by dominance (`a1 dom b1`, `[a1,b1] ∈ D1`,
//!    `(b1,b2) ∈ R`, `[b2,a2] ∈ D1`, `b2 dom a2` ⇒ `(a1,a2) ∈ R`);
//! 5. orient the conflict set: drop direction `a2 → a1` whenever
//!    `(a1, a2) ∈ R`;
//! 6. recompute the delay set on `P ∪ C1`, additionally removing from each
//!    back-path query the accesses that precedence or lock guarding
//!    disqualifies. The final `D` is that union `D1`.
//!
//! **Assumptions inherited from the paper:** each event variable is posted
//! at most once per matching wait (footnote 2 of §5.1), and barriers used
//! for precedence actually line up at runtime (checked dynamically by
//! `syncopt-machine`, mirroring the paper's two-version compilation).

use crate::affine::may_match_any_proc;
use crate::barrier::{aligned_barriers, barrier_precedence_edges, BarrierPolicy};
use crate::conflict::ConflictSet;
use crate::cycle::{compute_delay_set_counted, DelayOptions};
use crate::delay::DelaySet;
use crate::locks::{compute_lock_guards, LockGuards};
use crate::obs::Counters;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::dom::Dominators;
use syncopt_ir::ids::AccessId;
use syncopt_ir::order::{BitMatrix, BitSet, ProgramOrder};

/// The precedence relation `R`: `(a1, a2) ∈ R` means synchronization
/// guarantees `a1`'s instances complete before `a2`'s instances initiate
/// (so the conflict direction `a2 → a1` cannot appear in a race).
#[derive(Debug, Clone)]
pub struct Precedence {
    n: usize,
    m: BitMatrix,
}

impl Precedence {
    /// An empty relation over `n` accesses.
    pub fn new(n: usize) -> Self {
        Precedence {
            n,
            m: BitMatrix::new(n),
        }
    }

    /// Inserts `(a, b)`. Returns whether it was new.
    pub fn insert(&mut self, a: AccessId, b: AccessId) -> bool {
        if self.m.get(a.index(), b.index()) {
            false
        } else {
            self.m.set(a.index(), b.index());
            true
        }
    }

    /// Whether `(a, b)` is present.
    pub fn contains(&self, a: AccessId, b: AccessId) -> bool {
        self.m.get(a.index(), b.index())
    }

    /// All pairs.
    pub fn pairs(&self) -> Vec<(AccessId, AccessId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if self.m.get(i, j) {
                    out.push((AccessId::from_index(i), AccessId::from_index(j)));
                }
            }
        }
        out
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.m.count_ones()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw successor row of `a` (`{w : (a, w) ∈ R}`) as bitset words,
    /// for word-parallel consumers (the step-6 removal callback).
    pub fn row_words(&self, a: AccessId) -> &[u64] {
        self.m.row_words(a.index())
    }

    /// The transposed relation: `(a, b)` present iff `(b, a) ∈ R`. Row `v`
    /// of the transpose is `{w : (w, v) ∈ R}` — the predecessor set the
    /// step-6 removal callback ORs in one pass.
    pub fn transpose(&self) -> Precedence {
        let mut t = Precedence::new(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if self.m.get(i, j) {
                    t.m.set(j, i);
                }
            }
        }
        t
    }
}

/// Options for [`analyze_sync`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncOptions {
    /// How barrier alignment is established.
    pub barrier_policy: BarrierPolicy,
    /// Known processor count, if the program is compiled for a fixed
    /// machine size (enables modular subscript disambiguation).
    pub procs: Option<u32>,
    /// Worker threads for the delay-set candidate loops (0 and 1 both
    /// mean serial; results are bit-identical for every value).
    pub threads: usize,
}

/// Everything the synchronization analysis produces.
#[derive(Debug, Clone)]
pub struct SyncAnalysis {
    /// Step-2 delay set (pairs involving a synchronization access).
    pub d1: DelaySet,
    /// The precedence relation after the fixpoint.
    pub precedence: Precedence,
    /// Barrier sites considered aligned.
    pub aligned_barriers: Vec<AccessId>,
    /// Lock guard information.
    pub guards: LockGuards,
    /// The conflict set after step-5 orientation: a direction `a2 → a1`
    /// is removed whenever `(a1, a2) ∈ R`. Pairs that keep both
    /// directions are the conflicts synchronization could not order —
    /// the raw material of [`crate::races`].
    pub oriented: ConflictSet,
    /// The final, refined delay set (`D1` ∪ step-6 recomputation).
    pub delay: DelaySet,
    /// Work counters for the observability report (`sync.*` keys).
    pub counters: Counters,
}

/// Synchronization sites the analysis must pretend are absent.
///
/// The redundancy probe of the lint engine ([`crate::lint`]) re-runs the
/// §5 pipeline with one site's seed edges withheld and compares the
/// outcome against the full analysis: excluded waits lose their
/// post→wait precedence edges, excluded barriers drop out of the
/// aligned set before the episode edges are built. Seeds only shrink,
/// so the excluded run is conservative: its precedence relation is a
/// subset of the full one, and its delay set a superset.
#[derive(Debug, Clone, Default)]
pub struct SyncExclusion {
    /// Barrier sites removed from the aligned set before step 3.
    pub barriers: Vec<AccessId>,
    /// Wait sites whose post→wait seed edges are withheld.
    pub waits: Vec<AccessId>,
}

impl SyncExclusion {
    /// Whether nothing is excluded (the plain analysis).
    pub fn is_empty(&self) -> bool {
        self.barriers.is_empty() && self.waits.is_empty()
    }
}

/// Runs the full §5 analysis.
pub fn analyze_sync(cfg: &Cfg, opts: &SyncOptions) -> SyncAnalysis {
    analyze_sync_excluding(cfg, opts, &SyncExclusion::default())
}

/// Runs the full §5 analysis with the sites in `excl` withheld from the
/// precedence seeds (see [`SyncExclusion`]).
pub fn analyze_sync_excluding(cfg: &Cfg, opts: &SyncOptions, excl: &SyncExclusion) -> SyncAnalysis {
    let po = ProgramOrder::compute(cfg);
    let dom = Dominators::compute(cfg);
    let conflicts = ConflictSet::build_bounded(cfg, opts.procs);
    let mut counters = Counters::new();

    // Step 2: D1.
    let (d1, d1_stats) = compute_delay_set_counted(
        cfg,
        &conflicts,
        &po,
        &DelayOptions {
            only_sync_pairs: true,
            removals: None,
            threads: opts.threads,
        },
    );
    counters.set("sync.d1_pairs", d1.len() as u64);
    counters.set("sync.d1_backpath_queries", d1_stats.backpath_queries);
    counters.set("sync.d1_pruned_candidates", d1_stats.pruned_candidates);

    // Step 3: seed R.
    let mut r = Precedence::new(cfg.accesses.len());
    let pw: Vec<(AccessId, AccessId)> = post_wait_edges(cfg)
        .into_iter()
        .filter(|(_, w)| !excl.waits.contains(w))
        .collect();
    counters.set("sync.post_wait_edges", pw.len() as u64);
    for (p, w) in pw {
        r.insert(p, w);
    }
    let aligned: Vec<AccessId> = aligned_barriers(cfg, opts.barrier_policy)
        .into_iter()
        .filter(|b| !excl.barriers.contains(b))
        .collect();
    counters.set("sync.aligned_barriers", aligned.len() as u64);
    let be = barrier_precedence_edges(cfg, &po, &aligned);
    counters.set("sync.barrier_edges", be.len() as u64);
    for (b1, b2) in be {
        r.insert(b1, b2);
    }
    let seeded = r.len() as u64;

    // Step 4: fixpoint.
    grow_precedence(cfg, &dom, &d1, &mut r);
    counters.set("sync.precedence_pairs", r.len() as u64);
    counters.set("sync.precedence_derived", r.len() as u64 - seeded);

    // Step 5: orient conflict edges.
    let mut oriented = conflicts.clone();
    let edges_before = oriented.num_directed_edges() as u64;
    for (a1, a2) in r.pairs() {
        oriented.remove_direction(a2, a1);
    }
    counters.set(
        "sync.conflict_directions_removed",
        edges_before - oriented.num_directed_edges() as u64,
    );

    // Lock guards (§5.3).
    let guards = compute_lock_guards(cfg, &dom, &d1);

    // Step 6: final delay set with per-pair removals, assembled
    // word-parallel: successors of u in R, predecessors of v in R
    // (transposed row), and same-lock accesses — with u and v themselves
    // masked back out.
    let r_for_removal = r.clone();
    let r_transposed = r.transpose();
    let guards_for_removal = guards.clone();
    let removals = move |u: AccessId, v: AccessId, out: &mut BitSet| {
        // w always after u, or always before v: cannot lie on a
        // back-path (whose accesses run after v and before u).
        out.union_words(r_for_removal.row_words(u));
        out.union_words(r_transposed.row_words(v));
        guards_for_removal.mark_removable_for_pair(u, v, out);
        out.remove(u.index());
        out.remove(v.index());
    };
    let (mut delay, step6_stats) = compute_delay_set_counted(
        cfg,
        &oriented,
        &po,
        &DelayOptions {
            only_sync_pairs: false,
            removals: Some(Box::new(removals)),
            threads: opts.threads,
        },
    );
    delay.union_with(&d1);
    counters.set("sync.candidate_pairs", step6_stats.candidates);
    counters.set("sync.pruned_candidates", step6_stats.pruned_candidates);
    counters.set("sync.backpath_queries", step6_stats.backpath_queries);
    counters.set(
        "sync.bfs_fallbacks",
        d1_stats.bfs_fallbacks + step6_stats.bfs_fallbacks,
    );
    counters.set("sync.removed_backpath_nodes", step6_stats.removed_nodes);
    counters.set("sync.refined_pairs", delay.len() as u64);
    counters.set(
        "sync.oracle_builds",
        d1_stats.oracle_builds + step6_stats.oracle_builds,
    );
    counters.set("sync.oracle_sccs", d1_stats.sccs + step6_stats.sccs);
    counters.set(
        "sync.closure_word_ors",
        d1_stats.closure_word_ors + step6_stats.closure_word_ors,
    );

    SyncAnalysis {
        d1,
        precedence: r,
        aligned_barriers: aligned,
        guards,
        oriented,
        delay,
        counters,
    }
}

/// Matching post→wait precedence edges (step 3). A wait gets an edge only
/// when exactly one post site can release it — with several candidate
/// producers we cannot tell at compile time which instance will run first.
pub(crate) fn post_wait_edges(cfg: &Cfg) -> Vec<(AccessId, AccessId)> {
    let posts: Vec<(AccessId, &syncopt_ir::access::AccessInfo)> = cfg
        .accesses
        .iter()
        .filter(|(_, i)| i.kind == AccessKind::Post)
        .collect();
    let waits: Vec<(AccessId, &syncopt_ir::access::AccessInfo)> = cfg
        .accesses
        .iter()
        .filter(|(_, i)| i.kind == AccessKind::Wait)
        .collect();
    let mut out = Vec::new();
    for (w, wi) in &waits {
        let matching: Vec<AccessId> = posts
            .iter()
            .filter(|(_, pi)| {
                pi.var == wi.var && may_match_any_proc(pi.index.as_ref(), wi.index.as_ref())
            })
            .map(|(p, _)| *p)
            .collect();
        if let [only] = matching.as_slice() {
            out.push((*only, *w));
        }
    }
    out
}

/// Step-4 fixpoint: transitivity plus dominance-anchored chaining through
/// `D1`.
///
/// The producer-side anchor requires `b1` to **postdominate** `a1`: every
/// execution of `a1` is followed by the synchronization point `b1`, whose
/// delay edge then orders `a1`'s completion before `b1`. (The paper's text
/// says "`a1` dominates `b1`"; for its straight-line Figure 5 both
/// relations coincide, but postdominance is the direction that stays sound
/// when `a1` sits inside a branch — e.g. a guarded boundary read followed
/// by a barrier.) The consumer side keeps dominance: `b2 dom a2` ensures
/// every `a2` execution was preceded by the synchronization `b2`.
fn grow_precedence(cfg: &Cfg, dom: &Dominators, d1: &DelaySet, r: &mut Precedence) {
    let pdom = Dominators::compute_post(cfg);
    let pos = |a: AccessId| cfg.accesses.info(a).pos;
    let pos_postdom = |later: syncopt_ir::ids::Position, earlier: syncopt_ir::ids::Position| {
        if later.block == earlier.block {
            later.instr >= earlier.instr
        } else {
            pdom.dominates(later.block, earlier.block)
        }
    };
    let ids: Vec<AccessId> = cfg.accesses.ids().collect();
    let mut changed = true;
    while changed {
        changed = false;
        // Transitivity.
        for &x in &ids {
            for &z in &ids {
                if !r.contains(x, z) {
                    continue;
                }
                for &y in &ids {
                    if x != y && r.contains(z, y) && r.insert(x, y) {
                        changed = true;
                    }
                }
            }
        }
        // Producer half-rule: a1 →D1 b1 (b1 postdom a1), R(b1, a2).
        for &a1 in &ids {
            for &b1 in &ids {
                if a1 == b1 || !d1.contains(a1, b1) || !pos_postdom(pos(b1), pos(a1)) {
                    continue;
                }
                for &a2 in &ids {
                    if a2 != a1 && r.contains(b1, a2) && r.insert(a1, a2) {
                        changed = true;
                    }
                }
            }
        }
        // Consumer half-rule: R(a1, b2), b2 →D1 a2 (b2 dom a2).
        for &b2 in &ids {
            for &a2 in &ids {
                if b2 == a2 || !d1.contains(b2, a2) || !dom.pos_dominates(pos(b2), pos(a2)) {
                    continue;
                }
                for &a1 in &ids {
                    if a1 != a2 && r.contains(a1, b2) && r.insert(a1, a2) {
                        changed = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::shasha_snir;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn run(src: &str) -> (Cfg, SyncAnalysis, DelaySet) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let ss = shasha_snir(&cfg);
        let sa = analyze_sync(&cfg, &SyncOptions::default());
        (cfg, sa, ss)
    }

    fn find(cfg: &Cfg, kind: AccessKind, var: &str) -> AccessId {
        cfg.accesses
            .iter()
            .find(|(_, i)| {
                i.kind == kind && i.var.map(|v| cfg.vars.info(v).name == var).unwrap_or(false)
            })
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("no {kind:?} access on {var}"))
    }

    /// Figure 5: post-wait synchronization removes the data-access delays.
    #[test]
    fn figure5_postwait_removes_data_delays() {
        let src = r#"
            shared int X; shared int Y; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) {
                    X = 1;      // a1
                    Y = 2;      // a2
                    post F;     // a3
                } else {
                    wait F;     // a4
                    v = Y;      // a5
                    v = X;      // a6
                }
            }
        "#;
        let (cfg, sa, ss) = run(src);
        let a1 = find(&cfg, AccessKind::Write, "X");
        let a2 = find(&cfg, AccessKind::Write, "Y");
        let a3 = find(&cfg, AccessKind::Post, "F");
        let a4 = find(&cfg, AccessKind::Wait, "F");
        let a5 = find(&cfg, AccessKind::Read, "Y");
        let a6 = find(&cfg, AccessKind::Read, "X");

        // Shasha–Snir alone delays the data pairs.
        assert!(ss.contains(a1, a2), "D_SS has the producer data delay");
        assert!(ss.contains(a5, a6), "D_SS has the consumer data delay");

        // D1 keeps the delays against the synchronization accesses.
        assert!(sa.d1.contains(a1, a3));
        assert!(sa.d1.contains(a2, a3));
        assert!(sa.d1.contains(a4, a5));
        assert!(sa.d1.contains(a4, a6));

        // R derives the cross-processor orderings.
        assert!(sa.precedence.contains(a3, a4), "direct post→wait edge");
        assert!(sa.precedence.contains(a1, a5), "inferred write→read");
        assert!(sa.precedence.contains(a1, a6));
        assert!(sa.precedence.contains(a2, a5));

        // The refined delay set drops the data-data delays.
        assert!(
            !sa.delay.contains(a1, a2),
            "pipelining of X,Y writes allowed"
        );
        assert!(!sa.delay.contains(a5, a6), "overlap of Y,X reads allowed");

        // Refinement only removes delays, never invents new ones.
        assert!(sa.delay.is_subset_of(&ss));
        assert!(sa.delay.len() < ss.len());
    }

    /// Barrier phases: accesses in different phases need no delays.
    #[test]
    fn barrier_separates_phases() {
        let src = r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC + 1] = 1;   // phase 1 write (conflicts with reader)
                barrier;
                v = A[MYPROC];       // phase 2 read of neighbor's slot
                v = A[MYPROC + 2];
            }
        "#;
        let (cfg, sa, ss) = run(src);
        let w = find(&cfg, AccessKind::Write, "A");
        let reads: Vec<AccessId> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Read)
            .map(|(id, _)| id)
            .collect();
        // Unrefined analysis delays the write against the barrier and the
        // barrier against the reads (kept in D1)...
        let b = find_barrier(&cfg);
        assert!(sa.d1.contains(w, b));
        // ... and the refined set orders write-before-read through the
        // barrier, so no read→read or write→read data delays remain.
        for &rd in &reads {
            assert!(
                sa.precedence.contains(w, rd),
                "barrier should order {w} before {rd}"
            );
        }
        assert!(sa.delay.is_subset_of(&ss));
        assert!(
            !sa.delay.contains(reads[0], reads[1]),
            "phase-2 reads may overlap"
        );
    }

    fn find_barrier(cfg: &Cfg) -> AccessId {
        cfg.accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Barrier)
            .unwrap()
            .0
    }

    /// §5.3: accesses inside a critical region may overlap with each other.
    #[test]
    fn lock_guarded_accesses_overlap() {
        let src = r#"
            shared int X; shared int Y; lock l;
            fn main() {
                int v;
                lock l;
                v = X;      // guarded read
                Y = v + 1;  // guarded write (different variable)
                X = v + 2;  // guarded write
                unlock l;
            }
        "#;
        let (cfg, sa, ss) = run(src);
        let l = cfg.vars.by_name("l").unwrap();
        assert_eq!(sa.guards.guarded_by(l).len(), 3);
        let ry = find(&cfg, AccessKind::Read, "X");
        let wy = find(&cfg, AccessKind::Write, "Y");
        // Shasha–Snir delays the guarded pair (self-conflicting writes make
        // cycles through other processors' critical sections)...
        assert!(ss.contains(ry, wy));
        // ...but the lock rule removes same-lock accesses from back-paths.
        assert!(
            !sa.delay.contains(ry, wy),
            "guarded accesses should overlap: {:?}",
            sa.delay.pairs()
        );
        assert!(sa.delay.is_subset_of(&ss));
    }

    #[test]
    fn unsynchronized_program_is_unchanged() {
        let src = r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
        "#;
        let (cfg, sa, ss) = run(src);
        // No synchronization constructs: D1 is empty, R is empty, and the
        // refined set equals D_SS.
        assert!(sa.d1.is_empty());
        assert!(sa.precedence.is_empty());
        assert_eq!(sa.delay.pairs(), ss.pairs());
        assert_eq!(cfg.accesses.len(), 4);
    }

    #[test]
    fn multiple_posts_defeat_matching() {
        let src = r#"
            shared int X; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; post F; }
                else if (MYPROC == 1) { X = 2; post F; }
                else { wait F; v = X; }
            }
        "#;
        let (cfg, sa, _ss) = run(src);
        // Two candidate posts: no post→wait precedence edge.
        let w = find(&cfg, AccessKind::Wait, "F");
        let posts: Vec<AccessId> = cfg
            .accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Post)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(posts.len(), 2);
        for p in posts {
            assert!(!sa.precedence.contains(p, w));
        }
    }

    #[test]
    fn flag_array_posts_match_by_index() {
        let src = r#"
            shared int A[64]; flag F[64];
            fn main() {
                int v;
                A[MYPROC] = 1;
                post F[MYPROC];
                wait F[MYPROC + 1];
                v = A[MYPROC + 1];
            }
        "#;
        let (cfg, sa, ss) = run(src);
        let p = find(&cfg, AccessKind::Post, "F");
        let w = find(&cfg, AccessKind::Wait, "F");
        assert!(sa.precedence.contains(p, w));
        let wr = find(&cfg, AccessKind::Write, "A");
        let rd = find(&cfg, AccessKind::Read, "A");
        assert!(sa.precedence.contains(wr, rd));
        assert!(sa.delay.is_subset_of(&ss));
        // Producer may pipeline its write with the post's... no: the write
        // must complete before the post (that is exactly D1).
        assert!(sa.delay.contains(wr, p));
        // But the consumer's read needs no delay against its own write.
        assert!(!sa.delay.contains(wr, rd) || ss.contains(wr, rd));
    }

    /// Figure 6: synchronization analysis disqualifies accesses from
    /// appearing in back-paths. The producer writes X then posts; the
    /// consumer waits then writes Y and finally X. Without the removal
    /// rule, the consumer's trailing X-write gives the producer pair
    /// (WriteX, Post) extra back-paths; with R computed, accesses ordered
    /// after the post cannot appear on a path that must *precede* it.
    #[test]
    fn figure6_accesses_disqualified_from_back_paths() {
        let src = r#"
            shared int X; shared int Y; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) {
                    X = 1;       // a1
                    v = Y;       // a2 (read Y)
                    post F;      // a3
                } else {
                    wait F;      // a4
                    Y = 2;       // a5 (conflicts with a2)
                    X = 3;       // a6 (conflicts with a1)
                }
            }
        "#;
        let (cfg, sa, ss) = run(src);
        let a1 = find(&cfg, AccessKind::Write, "X");
        let a2 = find(&cfg, AccessKind::Read, "Y");
        let a5 = find(&cfg, AccessKind::Write, "Y");
        let a6 = cfg
            .accesses
            .iter()
            .filter(|(_, i)| {
                i.kind == AccessKind::Write
                    && i.var.map(|v| cfg.vars.info(v).name == "X").unwrap_or(false)
            })
            .map(|(id, _)| id)
            .nth(1)
            .unwrap();
        // R orders the producer accesses before the consumer's.
        assert!(sa.precedence.contains(a1, a6));
        assert!(sa.precedence.contains(a2, a5) || sa.precedence.contains(a1, a5));
        // The producer's data pair (a1, a2) needed a delay under D_SS
        // (back-path through the consumer's writes)...
        assert!(ss.contains(a1, a2), "D_SS: {:?}", ss.pairs());
        // ...which the refined analysis removes: the consumer accesses are
        // ordered after the post and cannot appear in a back-path to a1.
        assert!(
            !sa.delay.contains(a1, a2),
            "refined: {:?}",
            sa.delay.pairs()
        );
    }

    #[test]
    fn refined_delay_is_always_subset_of_shasha_snir() {
        for src in [
            "shared int X; fn main() { int v; X = 1; v = X; barrier; X = 2; }",
            r#"
            shared int X; shared int Y; flag F; lock l;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; }
                lock l; Y = 1; unlock l;
                barrier;
                v = Y;
            }
            "#,
            r#"
            shared double G[128];
            fn main() {
                int i; double t;
                for (i = 0; i < 4; i = i + 1) {
                    t = G[MYPROC + i];
                    G[MYPROC] = t;
                    barrier;
                }
            }
            "#,
        ] {
            let (_cfg, sa, ss) = run(src);
            assert!(sa.delay.is_subset_of(&ss), "refinement must shrink: {src}");
        }
    }
}
