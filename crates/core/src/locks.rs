//! Lock-based synchronization analysis (§5.3).
//!
//! Locks imply no precedence, only mutual exclusion. An access `a` is
//! *guarded* by lock `l` when:
//!
//! 1. `a` is dominated by a `lock l` operation `b1` with no intervening
//!    `unlock l` (we establish this with a must-hold dataflow analysis);
//! 2. `a` dominates an `unlock l` operation `b2`;
//! 3. `[b1, a] ∈ D1` and `[a, b2] ∈ D1`.
//!
//! When checking for a back-path between two accesses guarded by the same
//! lock, every *other* access guarded by that lock can be removed: a
//! violation sequence through them would have to run while the lock is held
//! by two processors at once.

use crate::delay::DelaySet;
use std::collections::{HashMap, HashSet};
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::{Cfg, Instr};
use syncopt_ir::dom::Dominators;
use syncopt_ir::ids::{AccessId, VarId};
use syncopt_ir::vars::VarKind;

/// Guard information: which accesses each lock protects.
#[derive(Debug, Clone, Default)]
pub struct LockGuards {
    /// lock variable → accesses guarded by it.
    guarded: HashMap<VarId, Vec<AccessId>>,
}

impl LockGuards {
    /// The accesses guarded by `lock`.
    pub fn guarded_by(&self, lock: VarId) -> &[AccessId] {
        self.guarded.get(&lock).map_or(&[], |v| v.as_slice())
    }

    /// All locks that guard at least one access.
    pub fn locks(&self) -> impl Iterator<Item = VarId> + '_ {
        self.guarded.keys().copied()
    }

    /// The locks guarding `access`.
    pub fn locks_guarding(&self, access: AccessId) -> Vec<VarId> {
        self.guarded
            .iter()
            .filter(|(_, accs)| accs.contains(&access))
            .map(|(l, _)| *l)
            .collect()
    }

    /// If `a` and `b` are guarded by a common lock, the other accesses
    /// guarded by that lock (candidates for removal in the back-path
    /// check). Empty otherwise.
    pub fn removable_for_pair(&self, a: AccessId, b: AccessId) -> Vec<AccessId> {
        let mut out = Vec::new();
        for (_, accs) in self.guarded.iter() {
            if accs.contains(&a) && accs.contains(&b) {
                for &x in accs {
                    if x != a && x != b && !out.contains(&x) {
                        out.push(x);
                    }
                }
            }
        }
        out
    }

    /// [`LockGuards::removable_for_pair`] as a bitset fill — the
    /// allocation-free form the hot delay-set loop uses. Inserts `a` and
    /// `b` too when they share a lock; callers mask the pair out once at
    /// the end of their removal set.
    pub fn mark_removable_for_pair(
        &self,
        a: AccessId,
        b: AccessId,
        out: &mut syncopt_ir::order::BitSet,
    ) {
        for (_, accs) in self.guarded.iter() {
            if accs.contains(&a) && accs.contains(&b) {
                for &x in accs {
                    out.insert(x.index());
                }
            }
        }
    }
}

/// Computes the must-hold lock set at entry of every block.
fn must_hold_in(cfg: &Cfg, locks: &[VarId]) -> Vec<HashSet<VarId>> {
    let nb = cfg.num_blocks();
    let full: HashSet<VarId> = locks.iter().copied().collect();
    let mut in_sets: Vec<HashSet<VarId>> = vec![full.clone(); nb];
    in_sets[cfg.entry.index()] = HashSet::new();
    let preds = cfg.predecessors();
    let rpo = cfg.reverse_postorder();
    let transfer = |cfg: &Cfg, b: syncopt_ir::ids::BlockId, mut held: HashSet<VarId>| {
        for instr in &cfg.block(b).instrs {
            match instr {
                Instr::LockAcq { lock, .. } => {
                    held.insert(*lock);
                }
                Instr::LockRel { lock, .. } => {
                    held.remove(lock);
                }
                _ => {}
            }
        }
        held
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if b == cfg.entry {
                continue;
            }
            let mut inb: Option<HashSet<VarId>> = None;
            for &p in &preds[b.index()] {
                let outp = transfer(cfg, p, in_sets[p.index()].clone());
                inb = Some(match inb {
                    None => outp,
                    Some(cur) => cur.intersection(&outp).copied().collect(),
                });
            }
            let inb = inb.unwrap_or_default();
            if inb != in_sets[b.index()] {
                in_sets[b.index()] = inb;
                changed = true;
            }
        }
    }
    in_sets
}

/// Computes which accesses are guarded by which locks.
pub fn compute_lock_guards(cfg: &Cfg, dom: &Dominators, d1: &DelaySet) -> LockGuards {
    let locks: Vec<VarId> = cfg
        .vars
        .iter()
        .filter(|(_, info)| info.kind == VarKind::Lock)
        .map(|(id, _)| id)
        .collect();
    if locks.is_empty() {
        return LockGuards::default();
    }
    let in_sets = must_hold_in(cfg, &locks);

    // Lock operations by lock variable.
    let mut acqs: HashMap<VarId, Vec<AccessId>> = HashMap::new();
    let mut rels: HashMap<VarId, Vec<AccessId>> = HashMap::new();
    for (id, info) in cfg.accesses.iter() {
        match info.kind {
            AccessKind::LockAcq => acqs.entry(info.var.unwrap()).or_default().push(id),
            AccessKind::LockRel => rels.entry(info.var.unwrap()).or_default().push(id),
            _ => {}
        }
    }

    // Must-hold at an access position: simulate the block prefix.
    let held_at = |pos: syncopt_ir::ids::Position| -> HashSet<VarId> {
        let mut held = in_sets[pos.block.index()].clone();
        for (i, instr) in cfg.block(pos.block).instrs.iter().enumerate() {
            if i >= pos.instr {
                break;
            }
            match instr {
                Instr::LockAcq { lock, .. } => {
                    held.insert(*lock);
                }
                Instr::LockRel { lock, .. } => {
                    held.remove(lock);
                }
                _ => {}
            }
        }
        held
    };

    let mut guards = LockGuards::default();
    for (a, info) in cfg.accesses.iter() {
        if !info.kind.is_data() {
            continue;
        }
        let held = held_at(info.pos);
        for &l in &held {
            let has_b1 = acqs.get(&l).is_some_and(|sites| {
                sites.iter().any(|&b1| {
                    dom.pos_dominates(cfg.accesses.info(b1).pos, info.pos) && d1.contains(b1, a)
                })
            });
            let has_b2 = rels.get(&l).is_some_and(|sites| {
                sites.iter().any(|&b2| {
                    dom.pos_dominates(info.pos, cfg.accesses.info(b2).pos) && d1.contains(a, b2)
                })
            });
            if has_b1 && has_b2 {
                guards.guarded.entry(l).or_default().push(a);
            }
        }
    }
    guards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::ConflictSet;
    use crate::cycle::{compute_delay_set, DelayOptions};
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;
    use syncopt_ir::order::ProgramOrder;

    fn analyzed(src: &str) -> (Cfg, LockGuards) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        let d1 = compute_delay_set(
            &cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs: true,
                ..DelayOptions::default()
            },
        );
        let dom = Dominators::compute(&cfg);
        let guards = compute_lock_guards(&cfg, &dom, &d1);
        (cfg, guards)
    }

    #[test]
    fn critical_section_accesses_are_guarded() {
        let (cfg, guards) = analyzed(
            r#"
            shared int X; lock l;
            fn main() {
                int v;
                lock l;
                v = X;
                X = v + 1;
                unlock l;
            }
            "#,
        );
        let l = cfg.vars.by_name("l").unwrap();
        let guarded = guards.guarded_by(l);
        assert_eq!(guarded.len(), 2, "read and write of X: {guarded:?}");
        for &a in guarded {
            assert!(cfg.accesses.info(a).kind.is_data());
            assert_eq!(guards.locks_guarding(a), vec![l]);
        }
    }

    #[test]
    fn accesses_outside_critical_section_are_not_guarded() {
        let (cfg, guards) = analyzed(
            r#"
            shared int X; lock l;
            fn main() {
                X = 1;
                lock l;
                X = 2;
                unlock l;
                X = 3;
            }
            "#,
        );
        let l = cfg.vars.by_name("l").unwrap();
        assert_eq!(guards.guarded_by(l).len(), 1);
    }

    #[test]
    fn conditional_unlock_defeats_guarding() {
        // The access dominates no unlock on the taken path structure.
        let (cfg, guards) = analyzed(
            r#"
            shared int X; lock l;
            fn main() {
                lock l;
                if (MYPROC == 0) { unlock l; }
                X = 1;
            }
            "#,
        );
        let l = cfg.vars.by_name("l").unwrap();
        // `X = 1` does not dominate any unlock, and must-hold fails anyway.
        assert!(guards.guarded_by(l).is_empty());
    }

    #[test]
    fn removable_for_pair_requires_common_lock() {
        let (cfg, guards) = analyzed(
            r#"
            shared int X; shared int Y; shared int Z; lock l;
            fn main() {
                lock l;
                X = 1;
                Y = 2;
                Z = 3;
                unlock l;
            }
            "#,
        );
        let l = cfg.vars.by_name("l").unwrap();
        let guarded = guards.guarded_by(l).to_vec();
        assert_eq!(guarded.len(), 3);
        let removable = guards.removable_for_pair(guarded[0], guarded[2]);
        assert_eq!(removable, vec![guarded[1]]);
        // Pair with an unguarded access removes nothing.
        let outside: Vec<AccessId> = cfg
            .accesses
            .ids()
            .filter(|a| !guarded.contains(a) && cfg.accesses.info(*a).kind.is_data())
            .collect();
        assert!(outside.is_empty()); // all data accesses are guarded here
    }

    #[test]
    fn two_locks_guard_independently() {
        let (cfg, guards) = analyzed(
            r#"
            shared int X; shared int Y; lock l1; lock l2;
            fn main() {
                lock l1; X = 1; unlock l1;
                lock l2; Y = 1; unlock l2;
            }
            "#,
        );
        let l1 = cfg.vars.by_name("l1").unwrap();
        let l2 = cfg.vars.by_name("l2").unwrap();
        assert_eq!(guards.guarded_by(l1).len(), 1);
        assert_eq!(guards.guarded_by(l2).len(), 1);
        assert_ne!(guards.guarded_by(l1), guards.guarded_by(l2));
        let all_locks: Vec<VarId> = guards.locks().collect();
        assert_eq!(all_locks.len(), 2);
    }

    #[test]
    fn nested_locks_guard_inner_access_twice() {
        let (cfg, guards) = analyzed(
            r#"
            shared int X; lock l1; lock l2;
            fn main() {
                lock l1;
                lock l2;
                X = 1;
                unlock l2;
                unlock l1;
            }
            "#,
        );
        let l1 = cfg.vars.by_name("l1").unwrap();
        let l2 = cfg.vars.by_name("l2").unwrap();
        assert_eq!(guards.guarded_by(l1).len(), 1);
        assert_eq!(guards.guarded_by(l2).len(), 1);
        let x_write = guards.guarded_by(l1)[0];
        assert_eq!(guards.locks_guarding(x_write).len(), 2);
    }
}
