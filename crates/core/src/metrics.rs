//! Concurrent service metrics: atomic counters, gauges, and fixed-bucket
//! latency histograms behind one registry.
//!
//! [`crate::obs::Counters`] is the right tool for *pipeline* work
//! accounting: single-threaded, deterministic, merged into one report at
//! the end of a run. A long-running service needs the opposite shape —
//! many threads recording concurrently, snapshots taken while requests
//! are in flight — so this module provides the same stable-key /
//! std-only-JSON discipline over atomics:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`.
//! * [`Gauge`] — a signed up/down value (`AtomicI64`): in-flight
//!   requests, open connections.
//! * [`Histogram`] — a fixed-bucket latency histogram (power-of-four
//!   microsecond rungs, like the simulator's power-of-two cycle
//!   histogram) with count / sum / min / max.
//! * [`MetricsRegistry`] — a name → metric map. Registration takes a
//!   lock once; the returned `Arc` handles are lock-free on the hot
//!   path. Snapshots iterate in sorted key order, so two snapshots of
//!   the same state are byte-identical.
//!
//! Keys use the dotted `stage.metric` convention, optionally followed by
//! a `{label="value"}` suffix (see [`labeled`]) so one logical metric can
//! fan out per operation (`rpc.requests_total{op="check"}`).
//!
//! Two renderings exist: [`MetricsRegistry::to_json`] (a std-only JSON
//! object, with a **deterministic-scrub mode** that zeroes every
//! timing-derived field while pinning the structure, for golden tests)
//! and [`MetricsRegistry::prometheus_text`] (Prometheus text exposition
//! format, for scraping).

use crate::diag::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter. All operations are relaxed
/// atomics: totals are exact, cross-metric ordering is not promised.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up/down value (in-flight requests, open connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of microsecond latencies.
///
/// `buckets[i]` counts samples in `[BOUNDS[i-1], BOUNDS[i])`; the last
/// bucket is unbounded. The power-of-four rungs span 64 µs to ~1 s —
/// request latencies below the first rung and above the last one are
/// still counted (in the first and overflow buckets), so `count` is
/// always the exact number of observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; Histogram::BOUNDS.len() + 1],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Upper bucket boundaries, in microseconds.
    pub const BOUNDS: [u64; 8] = [64, 256, 1024, 4096, 16384, 65536, 262144, 1048576];

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Default::default(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (microseconds).
    pub fn observe(&self, us: u64) {
        let i = Histogram::BOUNDS
            .iter()
            .position(|&b| us < b)
            .unwrap_or(Histogram::BOUNDS.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.min.fetch_min(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in microseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, lowest rung first, overflow last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The human label of bucket `i` (`"<64us"`, `">=1048576us"`).
    pub fn bucket_label(i: usize) -> String {
        if i < Histogram::BOUNDS.len() {
            format!("<{}us", Histogram::BOUNDS[i])
        } else {
            format!(">={}us", Histogram::BOUNDS[Histogram::BOUNDS.len() - 1])
        }
    }

    /// The histogram as JSON. In scrub mode every timing-derived field —
    /// the per-bucket distribution, sum, min, max — is zeroed while
    /// `count` (a pure request count) stays exact, so goldens can pin
    /// structure and totals without pinning wall-clock behavior.
    pub fn to_json(&self, scrub: bool) -> json::Value {
        let z = |v: u64| json::Value::Int(if scrub { 0 } else { v as i64 });
        json::Value::Obj(vec![
            ("count".to_string(), json::Value::Int(self.count() as i64)),
            ("sum_us".to_string(), z(self.sum())),
            ("min_us".to_string(), z(self.min())),
            ("max_us".to_string(), z(self.max())),
            (
                "buckets".to_string(),
                json::Value::Arr(self.bucket_counts().into_iter().map(z).collect()),
            ),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Builds a labeled metric key: `labeled("rpc.requests_total", "op",
/// "check")` → `rpc.requests_total{op="check"}`. The base name (before
/// `{`) is what glossaries document; the label picks the series.
pub fn labeled(name: &str, label: &str, value: &str) -> String {
    format!("{name}{{{label}=\"{value}\"}}")
}

/// The base name of a (possibly labeled) metric key.
pub fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A concurrent name → metric registry.
///
/// `counter`/`gauge`/`histogram` register on first use and return the
/// existing handle afterwards; callers keep the `Arc` and update it
/// lock-free. Asking for an existing name with a different kind is a
/// programming error and panics (names are static in practice).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self
            .metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return m.clone();
        }
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is already registered with another kind"),
        }
    }

    /// The gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is already registered with another kind"),
        }
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is already registered with another kind"),
        }
    }

    /// All registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// The registry as one JSON object: `counters` and `gauges` are flat
    /// key → value maps, `histograms` maps each key to its
    /// [`Histogram::to_json`] object. Keys are sorted, so two snapshots
    /// of identical state are byte-identical. `scrub` zeroes every
    /// timing-derived value (histogram distributions/sums/extrema) while
    /// keeping counts, for golden tests.
    pub fn to_json(&self, scrub: bool) -> json::Value {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => {
                    counters.push((name.clone(), json::Value::Int(c.get() as i64)));
                }
                Metric::Gauge(g) => gauges.push((name.clone(), json::Value::Int(g.get()))),
                Metric::Histogram(h) => histograms.push((name.clone(), h.to_json(scrub))),
            }
        }
        json::Value::Obj(vec![
            ("counters".to_string(), json::Value::Obj(counters)),
            ("gauges".to_string(), json::Value::Obj(gauges)),
            ("histograms".to_string(), json::Value::Obj(histograms)),
        ])
    }

    /// The registry in Prometheus text exposition format.
    ///
    /// Dotted names become underscored and gain the `prefix`
    /// (`rpc.requests_total{op="check"}` with prefix `syncopt` →
    /// `syncopt_rpc_requests_total{op="check"}`). Histograms expand to
    /// the conventional `_bucket{le=...}` / `_sum` / `_count` series
    /// (bounds are microseconds). A `# TYPE` comment precedes the first
    /// series of every family.
    pub fn prometheus_text(&self, prefix: &str) -> String {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, m) in metrics.iter() {
            let (family, labels) = prom_name(prefix, key);
            let kind = match m {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.clone();
            }
            match m {
                Metric::Counter(c) => {
                    out.push_str(&format!("{family}{labels} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{family}{labels} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, n) in h.bucket_counts().into_iter().enumerate() {
                        cumulative += n;
                        let le = Histogram::BOUNDS
                            .get(i)
                            .map_or("+Inf".to_string(), u64::to_string);
                        out.push_str(&format!(
                            "{family}_bucket{} {cumulative}\n",
                            with_label(&labels, "le", &le)
                        ));
                    }
                    out.push_str(&format!("{family}_sum{labels} {}\n", h.sum()));
                    out.push_str(&format!("{family}_count{labels} {}\n", h.count()));
                }
            }
        }
        out
    }
}

/// Splits a registry key into its Prometheus family name and label set.
fn prom_name(prefix: &str, key: &str) -> (String, String) {
    let (base, labels) = match key.find('{') {
        Some(i) => (&key[..i], key[i..].to_string()),
        None => (key, String::new()),
    };
    (format!("{prefix}_{}", base.replace('.', "_")), labels)
}

/// Adds `label="value"` to an existing (possibly empty) `{...}` set.
fn with_label(labels: &str, label: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{label}=\"{value}\"}}")
    } else {
        format!(
            "{},{label}=\"{value}\"}}",
            labels.strip_suffix('}').unwrap_or(labels)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("rpc.requests_total");
        let b = reg.counter("rpc.requests_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("rpc.requests_total").get(), 3);
        let g = reg.gauge("rpc.in_flight");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(reg.gauge("rpc.in_flight").get(), 1);
    }

    #[test]
    fn histogram_buckets_and_extrema() {
        let h = Histogram::new();
        h.observe(10);
        h.observe(100);
        h.observe(2_000_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 2_000_110);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 2_000_000);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1, "10us lands below the first rung");
        assert_eq!(buckets[1], 1, "100us lands in [64, 256)");
        assert_eq!(*buckets.last().unwrap(), 1, "2s overflows the ladder");
        assert_eq!(buckets.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn snapshot_is_sorted_and_scrub_pins_structure() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").add(41);
        reg.histogram("c.latency_us").observe(123);
        let json = reg.to_json(false).to_string();
        assert!(json.find("a.first").unwrap() < json.find("b.second").unwrap());
        let scrubbed = reg.to_json(true);
        let hist = scrubbed
            .get("histograms")
            .and_then(|h| h.get("c.latency_us"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(json::Value::as_int), Some(1));
        assert_eq!(hist.get("sum_us").and_then(json::Value::as_int), Some(0));
        assert_eq!(hist.get("max_us").and_then(json::Value::as_int), Some(0));
        // Scrubbing a second snapshot of the same state is byte-stable.
        assert_eq!(scrubbed.to_string(), reg.to_json(true).to_string());
    }

    #[test]
    fn labeled_keys_round_trip_base_names() {
        let key = labeled("rpc.requests_total", "op", "check");
        assert_eq!(key, "rpc.requests_total{op=\"check\"}");
        assert_eq!(base_name(&key), "rpc.requests_total");
        assert_eq!(base_name("rpc.bytes_in"), "rpc.bytes_in");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter(&labeled("rpc.requests_total", "op", "check"))
            .add(5);
        reg.counter(&labeled("rpc.requests_total", "op", "lint"))
            .add(2);
        reg.gauge("rpc.in_flight").set(1);
        reg.histogram(&labeled("rpc.request_latency_us", "op", "check"))
            .observe(100);
        let text = reg.prometheus_text("syncopt");
        assert!(text.contains("# TYPE syncopt_rpc_requests_total counter"));
        assert_eq!(
            text.matches("# TYPE syncopt_rpc_requests_total counter")
                .count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("syncopt_rpc_requests_total{op=\"check\"} 5"));
        assert!(text.contains("syncopt_rpc_requests_total{op=\"lint\"} 2"));
        assert!(text.contains("# TYPE syncopt_rpc_in_flight gauge"));
        assert!(text.contains("syncopt_rpc_request_latency_us_bucket{op=\"check\",le=\"256\"} 1"));
        assert!(text.contains("syncopt_rpc_request_latency_us_bucket{op=\"check\",le=\"+Inf\"} 1"));
        assert!(text.contains("syncopt_rpc_request_latency_us_sum{op=\"check\"} 100"));
        assert!(text.contains("syncopt_rpc_request_latency_us_count{op=\"check\"} 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty() && value.parse::<i64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("t.total");
                    let h = reg.histogram("t.latency_us");
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("t.total").get(), 8000);
        assert_eq!(reg.histogram("t.latency_us").count(), 8000);
        let buckets = reg.histogram("t.latency_us").bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 8000);
    }
}
