//! The delay set `D` (§3): ordered pairs of access sites `(u, v)` such that
//! `v` must not be issued until `u` has completed.

use syncopt_ir::ids::AccessId;
use syncopt_ir::order::BitMatrix;

/// A set of ordered delay pairs over `n` access sites.
#[derive(Debug, Clone)]
pub struct DelaySet {
    n: usize,
    m: BitMatrix,
    count: usize,
}

impl DelaySet {
    /// An empty delay set over `n` access sites.
    pub fn new(n: usize) -> Self {
        DelaySet {
            n,
            m: BitMatrix::new(n),
            count: 0,
        }
    }

    /// Number of access sites covered.
    pub fn num_accesses(&self) -> usize {
        self.n
    }

    /// Inserts the delay `(u, v)`: `v` waits for `u`'s completion.
    pub fn insert(&mut self, u: AccessId, v: AccessId) {
        if !self.m.get(u.index(), v.index()) {
            self.m.set(u.index(), v.index());
            self.count += 1;
        }
    }

    /// Whether the delay `(u, v)` is present.
    pub fn contains(&self, u: AccessId, v: AccessId) -> bool {
        self.m.get(u.index(), v.index())
    }

    /// Number of delay pairs.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// All delay pairs in `(u, v)` index order.
    pub fn pairs(&self) -> Vec<(AccessId, AccessId)> {
        let mut out = Vec::with_capacity(self.count);
        for u in 0..self.n {
            for v in 0..self.n {
                if self.m.get(u, v) {
                    out.push((AccessId::from_index(u), AccessId::from_index(v)));
                }
            }
        }
        out
    }

    /// Inserts every pair of `other`.
    pub fn union_with(&mut self, other: &DelaySet) {
        assert_eq!(self.n, other.n, "delay sets over different access tables");
        for (u, v) in other.pairs() {
            self.insert(u, v);
        }
    }

    /// Whether every pair of `self` is in `other`.
    pub fn is_subset_of(&self, other: &DelaySet) -> bool {
        self.pairs().iter().all(|&(u, v)| other.contains(u, v))
    }

    /// The delays whose *first* component is `u` (completions `v` must wait
    /// for are found with [`DelaySet::delays_into`]).
    pub fn delays_from(&self, u: AccessId) -> Vec<AccessId> {
        (0..self.n)
            .filter(|&v| self.m.get(u.index(), v))
            .map(AccessId::from_index)
            .collect()
    }

    /// The accesses `u` that must complete before `v` issues.
    pub fn delays_into(&self, v: AccessId) -> Vec<AccessId> {
        (0..self.n)
            .filter(|&u| self.m.get(u, v.index()))
            .map(AccessId::from_index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AccessId {
        AccessId(i)
    }

    #[test]
    fn insert_and_query() {
        let mut d = DelaySet::new(4);
        assert!(d.is_empty());
        d.insert(a(0), a(1));
        d.insert(a(0), a(1)); // idempotent
        d.insert(a(2), a(3));
        assert_eq!(d.len(), 2);
        assert!(d.contains(a(0), a(1)));
        assert!(!d.contains(a(1), a(0)), "delays are ordered");
        assert_eq!(d.pairs(), vec![(a(0), a(1)), (a(2), a(3))]);
    }

    #[test]
    fn union_and_subset() {
        let mut d1 = DelaySet::new(3);
        d1.insert(a(0), a(1));
        let mut d2 = DelaySet::new(3);
        d2.insert(a(1), a(2));
        let mut u = d1.clone();
        u.union_with(&d2);
        assert_eq!(u.len(), 2);
        assert!(d1.is_subset_of(&u));
        assert!(d2.is_subset_of(&u));
        assert!(!u.is_subset_of(&d1));
    }

    #[test]
    fn directional_queries() {
        let mut d = DelaySet::new(4);
        d.insert(a(0), a(2));
        d.insert(a(0), a(3));
        d.insert(a(1), a(3));
        assert_eq!(d.delays_from(a(0)), vec![a(2), a(3)]);
        assert_eq!(d.delays_into(a(3)), vec![a(0), a(1)]);
        assert!(d.delays_into(a(0)).is_empty());
    }
}
