//! Shared diagnostics framework for the static analyses.
//!
//! Every static finding — synchronization warnings ([`crate::warnings`])
//! and data-race reports ([`crate::races`]) — is rendered through one
//! [`Diagnostic`] type carrying a stable code, a severity, a primary
//! source [`Span`], and attached notes. Two renderers are provided:
//!
//! * [`Diagnostic::render`] — a rustc-style human format with the source
//!   line and a caret underline;
//! * [`Diagnostic::to_json`] — a machine format built on the std-only
//!   JSON [`json::Value`] (no serde), used by `syncoptc check --format
//!   json`.
//!
//! Diagnostic codes are documented, with minimal triggering programs, in
//! `docs/DIAGNOSTICS.md`.

use std::fmt;
use syncopt_frontend::error::FrontendErrorKind;
use syncopt_frontend::span::Span;
use syncopt_frontend::FrontendError;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never affects the exit status.
    Note,
    /// Suspicious but not certainly wrong; fails `--strict` runs.
    Warning,
    /// Definitely wrong; `syncoptc check` exits nonzero.
    Error,
}

impl Severity {
    /// The lowercase label used in both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a [`Severity::label`] back (for JSON round-trips).
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A secondary message attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// The note text.
    pub message: String,
    /// An optional source location the note refers to.
    pub span: Option<Span>,
}

/// One finding of a static analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`W...` for warnings, `R...` for
    /// races); see `docs/DIAGNOSTICS.md`.
    pub code: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// Primary human-readable message.
    pub message: String,
    /// Primary source location.
    pub span: Span,
    /// Secondary locations and explanations.
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Creates a diagnostic with no notes.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        span: Span,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a note (builder style).
    #[must_use]
    pub fn with_note(mut self, message: impl Into<String>, span: Option<Span>) -> Self {
        self.notes.push(Note {
            message: message.into(),
            span,
        });
        self
    }

    /// Renders the diagnostic rustc-style against the original source:
    ///
    /// ```text
    /// error[R001]: write-write race on `Data`
    ///   --> programs/racy.ms:4:5
    ///    |
    ///  4 |     Data = MYPROC;
    ///    |     ^^^^^^^^^^^^^
    ///    = note: the racing instance executes on a different processor
    /// ```
    pub fn render(&self, src: &str, file: &str) -> String {
        let mut out = String::new();
        let (line, col) = self.span.line_col(src);
        out.push_str(&format!(
            "{}[{}]: {}\n  --> {}:{}:{}\n",
            self.severity, self.code, self.message, file, line, col
        ));
        render_snippet(&mut out, src, self.span);
        for note in &self.notes {
            match note.span {
                Some(s) => {
                    let (nl, nc) = s.line_col(src);
                    out.push_str(&format!(
                        "   = note: {} ({}:{}:{})\n",
                        note.message, file, nl, nc
                    ));
                    render_snippet(&mut out, src, s);
                }
                None => out.push_str(&format!("   = note: {}\n", note.message)),
            }
        }
        out
    }

    /// Converts the diagnostic to the JSON object emitted by
    /// `syncoptc check --format json`. Line/column fields are resolved
    /// against `src` so consumers need not re-read the source.
    pub fn to_json(&self, src: &str) -> json::Value {
        let notes = self
            .notes
            .iter()
            .map(|n| {
                let mut fields = vec![("message".to_string(), json::Value::Str(n.message.clone()))];
                if let Some(s) = n.span {
                    fields.push(("span".to_string(), span_to_json(s, src)));
                }
                json::Value::Obj(fields)
            })
            .collect();
        json::Value::Obj(vec![
            ("code".to_string(), json::Value::Str(self.code.to_string())),
            (
                "severity".to_string(),
                json::Value::Str(self.severity.label().to_string()),
            ),
            (
                "message".to_string(),
                json::Value::Str(self.message.clone()),
            ),
            ("span".to_string(), span_to_json(self.span, src)),
            ("notes".to_string(), json::Value::Arr(notes)),
        ])
    }
}

/// A span as a JSON object with both byte offsets and line/column.
fn span_to_json(span: Span, src: &str) -> json::Value {
    let (line, col) = span.line_col(src);
    json::Value::Obj(vec![
        ("start".to_string(), json::Value::Int(i64::from(span.start))),
        ("end".to_string(), json::Value::Int(i64::from(span.end))),
        ("line".to_string(), json::Value::Int(line as i64)),
        ("col".to_string(), json::Value::Int(col as i64)),
    ])
}

/// Appends the `NN | <source line>` + caret-underline gutter for `span`.
fn render_snippet(out: &mut String, src: &str, span: Span) {
    let start = (span.start as usize).min(src.len());
    let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[line_start..]
        .find('\n')
        .map_or(src.len(), |i| line_start + i);
    let line_text = &src[line_start..line_end];
    let line_no = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
    let col = start - line_start;
    // Caret width: clamp the span to the first line it touches; zero-width
    // (synthesized) spans still get one caret.
    let width = (span.end as usize)
        .min(line_end)
        .saturating_sub(start)
        .max(1);
    let gutter = line_no.to_string().len().max(2);
    out.push_str(&format!("{:gutter$} |\n", "", gutter = gutter));
    out.push_str(&format!(
        "{:>gutter$} | {}\n",
        line_no,
        line_text,
        gutter = gutter
    ));
    out.push_str(&format!(
        "{:gutter$} | {}{}\n",
        "",
        " ".repeat(col),
        "^".repeat(width),
        gutter = gutter
    ));
}

/// Routes a [`FrontendError`] through the shared diagnostic framework, so
/// frontend failures render with the same rustc-style snippets as the
/// static analyses (codes `E001`–`E004`, one per frontend stage).
pub fn frontend_diagnostic(e: &FrontendError) -> Diagnostic {
    let code = match e.kind() {
        FrontendErrorKind::Lex => "E001",
        FrontendErrorKind::Parse => "E002",
        FrontendErrorKind::Type => "E003",
        FrontendErrorKind::Inline => "E004",
    };
    Diagnostic::new(
        code,
        Severity::Error,
        format!("{}: {}", e.kind(), e.message()),
        e.span(),
    )
}

/// Routes an AST→CFG lowering error through the diagnostic framework
/// (code `E005`).
pub fn lower_diagnostic(e: &syncopt_ir::lower::LowerError) -> Diagnostic {
    Diagnostic::new(
        "E005",
        Severity::Error,
        format!("lowering error: {}", e.message()),
        e.span(),
    )
}

/// Sorts diagnostics deterministically: by severity (errors first), then
/// source position, then code.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.span.cmp(&b.span))
            .then(a.code.cmp(b.code))
    });
}

/// Every stable diagnostic code any workspace component can emit, in
/// family order. The CLI validates `--deny`/`--allow` arguments against
/// this list, and the drift test asserts each entry is documented in
/// `docs/DIAGNOSTICS.md`.
pub const KNOWN_CODES: &[&str] = &[
    // Frontend / pipeline errors.
    "E001", "E002", "E003", "E004", "E005", "E006", // Races.
    "R001", "R002", // Synchronization shape warnings.
    "W001", "W002", "W003", // Provenance notes.
    "P001", "P002", // Lint engine: deadlock, redundancy, fence coverage.
    "D001", "D002", "D003", "L001", "L002", "F001", "F002",
];

/// Applies per-code severity overrides from the CLI: codes in `deny` are
/// forced to [`Severity::Error`], codes in `allow` are demoted to
/// [`Severity::Note`]. `deny` wins when a code appears in both lists.
/// Callers apply this *before* any blanket `--strict` promotion, so an
/// allowed code stays a note even under strict mode.
pub fn apply_severity_overrides(diags: &mut [Diagnostic], deny: &[String], allow: &[String]) {
    for d in diags.iter_mut() {
        if deny.iter().any(|c| c == d.code) {
            d.severity = Severity::Error;
        } else if allow.iter().any(|c| c == d.code) {
            d.severity = Severity::Note;
        }
    }
}

pub mod json {
    //! A minimal JSON value: hand-rolled emitter **and** parser, std-only.
    //!
    //! The emitter produces canonical output (no whitespace ambiguity),
    //! and the parser accepts exactly the JSON this crate emits plus
    //! ordinary whitespace — enough to round-trip `syncoptc check
    //! --format json` output without serde.

    use std::fmt;

    /// A JSON value. Numbers are restricted to `i64`: every quantity the
    /// diagnostics pipeline emits (offsets, lines, counts) is integral.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// An integer number.
        Int(i64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object; insertion order is preserved.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The integer payload, if this is a number.
        pub fn as_int(&self) -> Option<i64> {
            match self {
                Value::Int(n) => Some(*n),
                _ => None,
            }
        }

        /// The element list, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// Parses a JSON document.
        ///
        /// # Errors
        ///
        /// Returns a description of the first syntax error.
        pub fn parse(text: &str) -> Result<Value, String> {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            let v = p.value()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(format!("trailing input at byte {}", p.pos));
            }
            Ok(v)
        }
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::Int(n) => write!(f, "{n}"),
                Value::Str(s) => write_escaped(f, s),
                Value::Arr(items) => {
                    f.write_str("[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str("]")
                }
                Value::Obj(fields) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write_escaped(f, k)?;
                        write!(f, ":{v}")?;
                    }
                    f.write_str("}")
                }
            }
        }
    }

    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        f.write_str("\"")?;
        for c in s.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.bytes.get(self.pos) {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.bytes.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Int)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("bad \\u escape")?;
                                out.push(char::from_u32(hex).ok_or("bad \\u codepoint")?);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 character verbatim.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest.chars().next().expect("non-empty by get()");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[test]
    fn severity_ordering_and_labels() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        for s in [Severity::Error, Severity::Warning, Severity::Note] {
            assert_eq!(Severity::from_label(s.label()), Some(s));
        }
        assert_eq!(Severity::from_label("fatal"), None);
    }

    #[test]
    fn render_points_caret_at_span() {
        let src = "shared int X;\nfn main() { X = 1; }\n";
        let span = Span::new(26, 31); // `X = 1`
        let d = Diagnostic::new("R001", Severity::Error, "write-write race on `X`", span)
            .with_note(
                "the racing instance executes on a different processor",
                None,
            );
        let r = d.render(src, "test.ms");
        assert!(r.contains("error[R001]: write-write race on `X`"), "{r}");
        assert!(r.contains("--> test.ms:2:13"), "{r}");
        assert!(r.contains("2 | fn main() { X = 1; }"), "{r}");
        assert!(r.contains("|             ^^^^^"), "{r}");
        assert!(r.contains("= note: the racing instance"), "{r}");
    }

    #[test]
    fn render_handles_dummy_span() {
        let d = Diagnostic::new("W001", Severity::Warning, "msg", Span::dummy());
        let r = d.render("x\ny\n", "f.ms");
        assert!(r.contains("--> f.ms:1:1"), "{r}");
        assert!(r.contains('^'), "{r}");
    }

    #[test]
    fn sort_is_deterministic_and_severity_major() {
        let mut diags = vec![
            Diagnostic::new("W003", Severity::Note, "n", Span::new(0, 1)),
            Diagnostic::new("R001", Severity::Error, "e", Span::new(9, 10)),
            Diagnostic::new("W001", Severity::Warning, "w", Span::new(5, 6)),
            Diagnostic::new("R002", Severity::Error, "e2", Span::new(2, 3)),
        ];
        sort_diagnostics(&mut diags);
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["R002", "R001", "W001", "W003"]);
    }

    #[test]
    fn json_round_trips() {
        let v = Value::Obj(vec![
            ("file".to_string(), Value::Str("a \"b\"\n\\ μ".to_string())),
            (
                "diagnostics".to_string(),
                Value::Arr(vec![
                    Value::Int(-42),
                    Value::Bool(true),
                    Value::Null,
                    Value::Obj(vec![]),
                    Value::Arr(vec![]),
                ]),
            ),
        ]);
        let text = v.to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        // Canonical output is a fixpoint.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "\"abc", "{\"a\" 1}", "12x", "nul"] {
            assert!(Value::parse(bad).is_err(), "{bad}");
        }
        // Whitespace tolerated.
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn diagnostic_to_json_shape() {
        let src = "flag F; fn main() { wait F; }";
        let d = Diagnostic::new(
            "W001",
            Severity::Warning,
            "unmatched wait",
            Span::new(20, 27),
        )
        .with_note("no post site matches", Some(Span::new(0, 4)));
        let j = d.to_json(src);
        assert_eq!(j.get("code").unwrap().as_str(), Some("W001"));
        assert_eq!(j.get("severity").unwrap().as_str(), Some("warning"));
        let span = j.get("span").unwrap();
        assert_eq!(span.get("start").unwrap().as_int(), Some(20));
        assert_eq!(span.get("line").unwrap().as_int(), Some(1));
        assert_eq!(span.get("col").unwrap().as_int(), Some(21));
        assert_eq!(j.get("notes").unwrap().as_arr().unwrap().len(), 1);
        // And it survives a parse round-trip.
        assert_eq!(Value::parse(&j.to_string()).unwrap(), j);
    }
}
