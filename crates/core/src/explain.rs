//! Delay-set provenance — *why* each Shasha–Snir delay pair survived
//! refinement or was removed by it (`syncoptc explain`).
//!
//! The paper's argument is causal: a delay `(u, v)` exists because a
//! back-path witnesses an SC violation (§4), and it disappears because a
//! post→wait edge, an aligned barrier, or a lock section breaks every such
//! path (§5). [`explain`] reconstructs that reasoning per pair, as a
//! dedicated pass over the finished [`Analysis`] — the hot delay-set loops
//! and their counters are untouched:
//!
//! * every **kept** pair carries a replayable back-path witness — the
//!   concrete mirror-copy access chain, found on the *refined* graph
//!   (oriented conflicts, step-6 removals) when the pair survives step 6,
//!   or on the unrefined graph for pairs contributed by `D1`;
//! * every **dropped** pair carries exactly one removal reason — the first
//!   synchronization fact that breaks its canonical `D_SS` witness: a
//!   chain node ordered after `u` or before `v` by the precedence relation
//!   `R` (traced back to its seeding post→wait edge or aligned-barrier
//!   pair when it is one), a chain node excluded by the §5.3 lock rule, or
//!   a conflict edge whose direction step 5 removed.
//!
//! Because the dropped pair's refined back-path query returned false,
//! *every* path is broken — so walking the canonical witness always finds
//! a breaking fact, and the reason is deterministic (shortest witness,
//! ascending-id BFS, first break along the chain).

use crate::barrier::{aligned_barriers, barrier_precedence_edges};
use crate::cycle::BackPathOracle;
use crate::diag::json::Value;
use crate::diag::{Diagnostic, Severity};
use crate::sync::{post_wait_edges, SyncOptions};
use crate::Analysis;
use std::collections::HashSet;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::{AccessId, VarId};
use syncopt_ir::order::ProgramOrder;

/// The stable schema identifier of [`ExplainReport::to_json`].
pub const EXPLAIN_SCHEMA: &str = "syncopt.explain.v1";

/// The synchronization fact behind one precedence pair `(before, after)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncFact {
    /// A step-3 seed: `before` is the unique post releasing the wait
    /// `after`.
    PostWait {
        /// The post site.
        post: AccessId,
        /// The wait site it releases.
        wait: AccessId,
    },
    /// A step-3 seed: both sides are statically aligned barrier episodes
    /// (`before` = `after` for the self-pair of a single site).
    AlignedBarrier {
        /// The earlier barrier site.
        before: AccessId,
        /// The later barrier site.
        after: AccessId,
    },
    /// Derived by the step-4 fixpoint (transitivity or dominance-anchored
    /// chaining through `D1`) from the seeds.
    Derived {
        /// The earlier access.
        before: AccessId,
        /// The later access.
        after: AccessId,
    },
}

impl SyncFact {
    fn label(&self) -> &'static str {
        match self {
            SyncFact::PostWait { .. } => "post_wait",
            SyncFact::AlignedBarrier { .. } => "aligned_barrier",
            SyncFact::Derived { .. } => "derived",
        }
    }

    pub(crate) fn pair(&self) -> (AccessId, AccessId) {
        match *self {
            SyncFact::PostWait { post, wait } => (post, wait),
            SyncFact::AlignedBarrier { before, after } => (before, after),
            SyncFact::Derived { before, after } => (before, after),
        }
    }
}

/// Why one `D_SS` pair is absent from the refined delay set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A witness-chain node runs after `u` completes (`(u, node) ∈ R`), so
    /// it cannot lie on a back-path that must precede `u`.
    NodeOrderedAfterFirst {
        /// The disqualified chain node.
        node: AccessId,
        /// Where `(u, node)` came from.
        fact: SyncFact,
    },
    /// A witness-chain node runs before `v` initiates (`(node, v) ∈ R`).
    NodeOrderedBeforeSecond {
        /// The disqualified chain node.
        node: AccessId,
        /// Where `(node, v)` came from.
        fact: SyncFact,
    },
    /// A witness-chain node shares a lock section with `u` and `v` (§5.3):
    /// a violation through it would need the lock held twice at once.
    NodeLockGuarded {
        /// The disqualified chain node.
        node: AccessId,
        /// The common lock.
        lock: VarId,
    },
    /// A conflict edge of the witness lost its direction in step 5
    /// (`(to, from) ∈ R` removed `from → to`).
    EdgeUnoriented {
        /// Edge source.
        from: AccessId,
        /// Edge target.
        to: AccessId,
        /// Where `(to, from)` came from.
        fact: SyncFact,
    },
    /// Should not occur: the canonical witness survived refinement (the
    /// property tests assert this variant never appears).
    Unexplained,
}

/// How two consecutive witness-chain accesses are connected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A directed conflict edge (crossing processors).
    Conflict,
    /// A program-order edge inside the mirror copy.
    Program,
}

/// A delay pair that survived refinement, with its back-path witness.
#[derive(Debug, Clone)]
pub struct KeptPair {
    /// Delay source (`v` must wait for `u`'s completion).
    pub u: AccessId,
    /// Delay target.
    pub v: AccessId,
    /// The full back-path chain `[v, m₁, …, mₖ, u]`.
    pub witness: Vec<AccessId>,
    /// Edge kinds between consecutive chain entries
    /// (`witness.len() - 1` entries).
    pub edges: Vec<EdgeKind>,
    /// Whether the witness had to fall back to the unrefined graph — the
    /// pair is kept through `D1` rather than the step-6 recomputation.
    pub via_d1: bool,
}

/// A `D_SS` pair the refinement removed, with its removal reason.
#[derive(Debug, Clone)]
pub struct DroppedPair {
    /// Delay source of the removed pair.
    pub u: AccessId,
    /// Delay target of the removed pair.
    pub v: AccessId,
    /// The canonical unrefined witness that used to justify the pair.
    pub witness: Vec<AccessId>,
    /// The first synchronization fact breaking that witness.
    pub reason: DropReason,
}

/// Everything [`explain`] derives: one entry per `D_SS` pair.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Pairs surviving into the refined set, in `(u, v)` index order.
    pub kept: Vec<KeptPair>,
    /// Pairs the refinement removed, in `(u, v)` index order.
    pub dropped: Vec<DroppedPair>,
}

/// Reconstructs per-pair provenance for a finished analysis. `opts` must
/// be the options `analysis` was computed with (the barrier policy decides
/// which seeds exist).
pub fn explain(cfg: &Cfg, analysis: &Analysis, opts: &SyncOptions) -> ExplainReport {
    let po = ProgramOrder::compute(cfg);
    let n = cfg.accesses.len();
    let oracle_ss = BackPathOracle::new(cfg, &analysis.conflicts, &po);
    let oracle_refined = BackPathOracle::new(cfg, &analysis.sync.oriented, &po);

    // Seed facts, for classifying precedence pairs.
    let pw: HashSet<(AccessId, AccessId)> = post_wait_edges(cfg).into_iter().collect();
    let aligned = aligned_barriers(cfg, opts.barrier_policy);
    let be: HashSet<(AccessId, AccessId)> = barrier_precedence_edges(cfg, &po, &aligned)
        .into_iter()
        .collect();
    let classify = |before: AccessId, after: AccessId| -> SyncFact {
        if pw.contains(&(before, after)) {
            SyncFact::PostWait {
                post: before,
                wait: after,
            }
        } else if be.contains(&(before, after)) {
            SyncFact::AlignedBarrier { before, after }
        } else {
            SyncFact::Derived { before, after }
        }
    };

    // The step-6 removal set for a pair, as the slice form the witness
    // search takes (endpoints masked out, like the hot loop).
    let removal_for = |u: AccessId, v: AccessId| -> Vec<AccessId> {
        let r = &analysis.sync.precedence;
        let mut out: Vec<AccessId> = (0..n)
            .map(AccessId::from_index)
            .filter(|&w| w != u && w != v && (r.contains(u, w) || r.contains(w, v)))
            .collect();
        for w in analysis.sync.guards.removable_for_pair(u, v) {
            if !out.contains(&w) {
                out.push(w);
            }
        }
        out
    };

    let edge_kinds = |u: AccessId, v: AccessId, chain: &[AccessId]| -> Vec<EdgeKind> {
        let full: Vec<AccessId> = std::iter::once(v)
            .chain(chain.iter().copied())
            .chain(std::iter::once(u))
            .collect();
        full.windows(2)
            .map(|w| {
                // Interior hops may ride program order; the first and last
                // hop cross copies and are conflict edges by construction.
                if w[0] != v && w[1] != u && po.access_precedes(cfg, w[0], w[1]) {
                    EdgeKind::Program
                } else {
                    EdgeKind::Conflict
                }
            })
            .collect()
    };

    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    for (u, v) in analysis.delay_ss.pairs() {
        if analysis.delay_sync.contains(u, v) {
            let (chain, via_d1) = match oracle_refined.witness(u, v, &removal_for(u, v)) {
                Some(c) => (c, false),
                // Not reachable under step-6 rules: the pair is kept
                // through D1, whose query ran unrefined.
                None => (
                    oracle_ss
                        .witness(u, v, &[])
                        .expect("kept pair must have a D_SS back-path"),
                    true,
                ),
            };
            let edges = edge_kinds(u, v, &chain);
            let mut witness = vec![v];
            witness.extend(chain);
            witness.push(u);
            kept.push(KeptPair {
                u,
                v,
                witness,
                edges,
                via_d1,
            });
        } else {
            let chain = oracle_ss
                .witness(u, v, &[])
                .expect("D_SS pair must have a back-path");
            let reason = first_break(cfg, &po, analysis, &classify, u, v, &chain);
            let mut witness = vec![v];
            witness.extend(chain);
            witness.push(u);
            dropped.push(DroppedPair {
                u,
                v,
                witness,
                reason,
            });
        }
    }
    ExplainReport { kept, dropped }
}

/// Walks the canonical witness `v → chain → u` and returns the first
/// synchronization fact that breaks it under refinement. Shared with the
/// redundancy pass of [`crate::lint`], which replays the walk against an
/// analysis computed with one synchronization site excluded.
pub(crate) fn first_break(
    cfg: &Cfg,
    po: &ProgramOrder,
    analysis: &Analysis,
    classify: &dyn Fn(AccessId, AccessId) -> SyncFact,
    u: AccessId,
    v: AccessId,
    chain: &[AccessId],
) -> DropReason {
    let r = &analysis.sync.precedence;
    let guards = &analysis.sync.guards;
    let lock_removed: Vec<AccessId> = guards.removable_for_pair(u, v);
    let common_lock = |node: AccessId| -> Option<VarId> {
        let mut locks: Vec<VarId> = guards
            .locks()
            .filter(|&l| {
                let g = guards.guarded_by(l);
                g.contains(&u) && g.contains(&v) && g.contains(&node)
            })
            .collect();
        locks.sort_by_key(|l| l.index());
        locks.first().copied()
    };
    let full: Vec<AccessId> = std::iter::once(v)
        .chain(chain.iter().copied())
        .chain(std::iter::once(u))
        .collect();
    for (i, pair) in full.windows(2).enumerate() {
        let (from, to) = (pair[0], pair[1]);
        // Interior node disqualification first: `from` is a mirror node
        // for every hop but the first.
        if i > 0 {
            if r.contains(u, from) {
                return DropReason::NodeOrderedAfterFirst {
                    node: from,
                    fact: classify(u, from),
                };
            }
            if r.contains(from, v) {
                return DropReason::NodeOrderedBeforeSecond {
                    node: from,
                    fact: classify(from, v),
                };
            }
            if lock_removed.contains(&from) {
                if let Some(lock) = common_lock(from) {
                    return DropReason::NodeLockGuarded { node: from, lock };
                }
            }
        }
        // Edge disqualification: a hop with no program-order alternative
        // whose conflict direction step 5 removed.
        let has_program_edge =
            from != v && to != u && from != to && po.access_precedes(cfg, from, to);
        if !has_program_edge
            && analysis.conflicts.edge(from, to)
            && !analysis.sync.oriented.edge(from, to)
        {
            return DropReason::EdgeUnoriented {
                from,
                to,
                fact: classify(to, from),
            };
        }
    }
    DropReason::Unexplained
}

/// Checks that a kept-pair witness chain replays on the given conflict
/// set: first and last hops are directed conflict edges, and every
/// interior hop is a program-order or directed conflict edge.
pub fn validate_witness(
    cfg: &Cfg,
    conflicts: &crate::conflict::ConflictSet,
    witness: &[AccessId],
) -> bool {
    if witness.len() < 3 {
        return false;
    }
    let po = ProgramOrder::compute(cfg);
    let last = witness.len() - 1;
    witness.windows(2).enumerate().all(|(i, w)| {
        let (from, to) = (w[0], w[1]);
        if i == 0 || i == last - 1 {
            conflicts.edge(from, to)
        } else {
            conflicts.edge(from, to) || (from != to && po.access_precedes(cfg, from, to))
        }
    })
}

// ---- rendering ---------------------------------------------------------

fn access_json(cfg: &Cfg, src: &str, a: AccessId) -> Value {
    let info = cfg.accesses.info(a);
    let (line, col) = info.span.line_col(src);
    Value::Obj(vec![
        ("id".to_string(), Value::Int(a.index() as i64)),
        ("kind".to_string(), Value::Str(format!("{:?}", info.kind))),
        (
            "var".to_string(),
            match info.var {
                Some(v) => Value::Str(cfg.vars.info(v).name.clone()),
                None => Value::Null,
            },
        ),
        ("line".to_string(), Value::Int(line as i64)),
        ("col".to_string(), Value::Int(col as i64)),
    ])
}

fn fact_json(fact: &SyncFact) -> Value {
    let (before, after) = fact.pair();
    Value::Obj(vec![
        ("kind".to_string(), Value::Str(fact.label().to_string())),
        ("before".to_string(), Value::Int(before.index() as i64)),
        ("after".to_string(), Value::Int(after.index() as i64)),
    ])
}

fn reason_json(cfg: &Cfg, reason: &DropReason) -> Value {
    match reason {
        DropReason::NodeOrderedAfterFirst { node, fact } => Value::Obj(vec![
            (
                "kind".to_string(),
                Value::Str("node_ordered_after_first".to_string()),
            ),
            ("node".to_string(), Value::Int(node.index() as i64)),
            ("fact".to_string(), fact_json(fact)),
        ]),
        DropReason::NodeOrderedBeforeSecond { node, fact } => Value::Obj(vec![
            (
                "kind".to_string(),
                Value::Str("node_ordered_before_second".to_string()),
            ),
            ("node".to_string(), Value::Int(node.index() as i64)),
            ("fact".to_string(), fact_json(fact)),
        ]),
        DropReason::NodeLockGuarded { node, lock } => Value::Obj(vec![
            (
                "kind".to_string(),
                Value::Str("node_lock_guarded".to_string()),
            ),
            ("node".to_string(), Value::Int(node.index() as i64)),
            (
                "lock".to_string(),
                Value::Str(cfg.vars.info(*lock).name.clone()),
            ),
        ]),
        DropReason::EdgeUnoriented { from, to, fact } => Value::Obj(vec![
            (
                "kind".to_string(),
                Value::Str("edge_unoriented".to_string()),
            ),
            ("from".to_string(), Value::Int(from.index() as i64)),
            ("to".to_string(), Value::Int(to.index() as i64)),
            ("fact".to_string(), fact_json(fact)),
        ]),
        DropReason::Unexplained => Value::Obj(vec![(
            "kind".to_string(),
            Value::Str("unexplained".to_string()),
        )]),
    }
}

impl ExplainReport {
    /// Deterministic, diffable JSON (`syncopt.explain.v1`): pairs in
    /// `(u, v)` index order, ids as integers, no wall-clock anywhere.
    pub fn to_json(&self, cfg: &Cfg, src: &str) -> Value {
        let kept = self
            .kept
            .iter()
            .map(|k| {
                Value::Obj(vec![
                    ("u".to_string(), access_json(cfg, src, k.u)),
                    ("v".to_string(), access_json(cfg, src, k.v)),
                    (
                        "witness".to_string(),
                        Value::Arr(
                            k.witness
                                .iter()
                                .map(|a| Value::Int(a.index() as i64))
                                .collect(),
                        ),
                    ),
                    (
                        "edges".to_string(),
                        Value::Arr(
                            k.edges
                                .iter()
                                .map(|e| {
                                    Value::Str(
                                        match e {
                                            EdgeKind::Conflict => "C",
                                            EdgeKind::Program => "P",
                                        }
                                        .to_string(),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    ("via_d1".to_string(), Value::Bool(k.via_d1)),
                ])
            })
            .collect();
        let dropped = self
            .dropped
            .iter()
            .map(|d| {
                Value::Obj(vec![
                    ("u".to_string(), access_json(cfg, src, d.u)),
                    ("v".to_string(), access_json(cfg, src, d.v)),
                    (
                        "witness".to_string(),
                        Value::Arr(
                            d.witness
                                .iter()
                                .map(|a| Value::Int(a.index() as i64))
                                .collect(),
                        ),
                    ),
                    ("reason".to_string(), reason_json(cfg, &d.reason)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(EXPLAIN_SCHEMA.to_string())),
            (
                "accesses".to_string(),
                Value::Int(cfg.accesses.len() as i64),
            ),
            ("kept".to_string(), Value::Arr(kept)),
            ("dropped".to_string(), Value::Arr(dropped)),
        ])
    }

    /// One diagnostic per pair for the rustc-style renderer: kept pairs as
    /// notes carrying the witness chain, dropped pairs as notes naming the
    /// removing fact, all span-annotated.
    pub fn to_diagnostics(&self, cfg: &Cfg) -> Vec<Diagnostic> {
        let desc = |a: AccessId| {
            let info = cfg.accesses.info(a);
            let var = info
                .var
                .map(|v| format!(" `{}`", cfg.vars.info(v).name))
                .unwrap_or_default();
            format!("{a} ({:?}{var})", info.kind)
        };
        let span_of = |a: AccessId| cfg.accesses.info(a).span;
        let mut out = Vec::new();
        for k in &self.kept {
            let chain = k
                .witness
                .iter()
                .map(|&a| a.to_string())
                .collect::<Vec<_>>()
                .join(" → ");
            let mut d = Diagnostic::new(
                "P001",
                Severity::Note,
                format!(
                    "delay kept: {} → {} (back-path {chain}{})",
                    desc(k.u),
                    desc(k.v),
                    if k.via_d1 { ", via D1" } else { "" }
                ),
                span_of(k.u),
            );
            d = d.with_note(format!("second access {}", desc(k.v)), Some(span_of(k.v)));
            for &m in &k.witness[1..k.witness.len() - 1] {
                d = d.with_note(format!("back-path through {}", desc(m)), Some(span_of(m)));
            }
            out.push(d);
        }
        for dr in &self.dropped {
            let (msg, fact_span) = match &dr.reason {
                DropReason::NodeOrderedAfterFirst { node, fact } => (
                    format!(
                        "back-path node {} is ordered after {} by {}",
                        desc(*node),
                        desc(dr.u),
                        fact_desc(fact)
                    ),
                    Some(span_of(fact.pair().0)),
                ),
                DropReason::NodeOrderedBeforeSecond { node, fact } => (
                    format!(
                        "back-path node {} is ordered before {} by {}",
                        desc(*node),
                        desc(dr.v),
                        fact_desc(fact)
                    ),
                    Some(span_of(fact.pair().0)),
                ),
                DropReason::NodeLockGuarded { node, lock } => (
                    format!(
                        "back-path node {} shares lock `{}` with the pair (§5.3)",
                        desc(*node),
                        cfg.vars.info(*lock).name
                    ),
                    Some(span_of(*node)),
                ),
                DropReason::EdgeUnoriented { from, to, fact } => (
                    format!(
                        "conflict direction {} → {} removed by {}",
                        desc(*from),
                        desc(*to),
                        fact_desc(fact)
                    ),
                    Some(span_of(fact.pair().0)),
                ),
                DropReason::Unexplained => ("removed by refinement".to_string(), None),
            };
            let d = Diagnostic::new(
                "P002",
                Severity::Note,
                format!("delay dropped: {} → {}", desc(dr.u), desc(dr.v)),
                span_of(dr.u),
            )
            .with_note(format!("second access {}", desc(dr.v)), Some(span_of(dr.v)))
            .with_note(msg, fact_span);
            out.push(d);
        }
        out
    }
}

pub(crate) fn fact_desc(fact: &SyncFact) -> String {
    match fact {
        SyncFact::PostWait { post, wait } => format!("post→wait edge {post} → {wait}"),
        SyncFact::AlignedBarrier { before, after } if before == after => {
            format!("aligned barrier {before}")
        }
        SyncFact::AlignedBarrier { before, after } => {
            format!("aligned barriers {before} → {after}")
        }
        SyncFact::Derived { before, after } => {
            format!("derived precedence {before} → {after}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_with;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn explained(src: &str) -> (Cfg, Analysis, ExplainReport) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let opts = SyncOptions::default();
        let analysis = analyze_with(&cfg, &opts);
        let report = explain(&cfg, &analysis, &opts);
        (cfg, analysis, report)
    }

    const FIGURE5: &str = r#"
        shared int X; shared int Y; flag F;
        fn main() {
            int v;
            if (MYPROC == 0) { X = 1; Y = 2; post F; }
            else { wait F; v = Y; v = X; }
        }
    "#;

    #[test]
    fn every_ss_pair_is_classified_exactly_once() {
        for src in [
            FIGURE5,
            "shared int Data; shared int Flag;
             fn main() { int v;
                 if (MYPROC == 0) { Data = 1; Flag = 1; }
                 else { v = Flag; v = Data; } }",
            "shared int X; shared int Y; lock l;
             fn main() { int v; lock l; v = X; Y = v + 1; X = v + 2; unlock l; }",
            "shared int A[64];
             fn main() { int v; A[MYPROC + 1] = 1; barrier; v = A[MYPROC]; }",
        ] {
            let (_cfg, analysis, report) = explained(src);
            assert_eq!(report.kept.len(), analysis.delay_sync.len(), "{src}");
            assert_eq!(
                report.dropped.len(),
                analysis.delay_ss.len() - analysis.delay_sync.len(),
                "{src}"
            );
            assert_eq!(
                report.dropped.len() as u64,
                analysis.metrics.get("delay.pairs_dropped"),
                "{src}"
            );
        }
    }

    #[test]
    fn kept_pairs_carry_replayable_witnesses() {
        let (cfg, analysis, report) = explained(FIGURE5);
        assert!(!report.kept.is_empty());
        for k in &report.kept {
            assert_eq!(k.witness.first(), Some(&k.v), "chain starts at v");
            assert_eq!(k.witness.last(), Some(&k.u), "chain ends at u");
            assert_eq!(k.edges.len(), k.witness.len() - 1);
            // Replay on the graph the witness was found on.
            let conflicts = if k.via_d1 {
                &analysis.conflicts
            } else {
                &analysis.sync.oriented
            };
            assert!(
                validate_witness(&cfg, conflicts, &k.witness),
                "witness {:?} does not replay",
                k.witness
            );
        }
    }

    #[test]
    fn figure5_drops_name_the_post_wait_chain() {
        let (cfg, _analysis, report) = explained(FIGURE5);
        assert!(!report.dropped.is_empty(), "figure 5 drops the data pairs");
        let is_data = |a: AccessId| cfg.accesses.info(a).kind.is_data();
        // The producer's X,Y write pair is dropped; its reason must bottom
        // out in real synchronization, not an Unexplained fallback.
        for d in &report.dropped {
            assert_ne!(d.reason, DropReason::Unexplained, "({}, {})", d.u, d.v);
        }
        assert!(report.dropped.iter().any(|d| is_data(d.u) && is_data(d.v)));
    }

    #[test]
    fn lock_sections_produce_lock_guard_reasons() {
        let src = "shared int X; shared int Y; lock l;
             fn main() { int v; lock l; v = X; Y = v + 1; X = v + 2; unlock l; }";
        let (cfg, _analysis, report) = explained(src);
        let lock_reasons = report
            .dropped
            .iter()
            .filter(|d| matches!(d.reason, DropReason::NodeLockGuarded { .. }))
            .count();
        assert!(
            lock_reasons > 0,
            "expected a §5.3 lock reason, got {:?}",
            report.dropped.iter().map(|d| d.reason).collect::<Vec<_>>()
        );
        if let Some(DropReason::NodeLockGuarded { lock, .. }) = report
            .dropped
            .iter()
            .map(|d| d.reason)
            .find(|r| matches!(r, DropReason::NodeLockGuarded { .. }))
        {
            assert_eq!(cfg.vars.info(lock).name, "l");
        }
    }

    #[test]
    fn json_is_deterministic_and_carries_schema() {
        let (cfg, analysis, report) = explained(FIGURE5);
        let opts = SyncOptions::default();
        let again = explain(&cfg, &analysis, &opts);
        let src = FIGURE5;
        let a = report.to_json(&cfg, src).to_string();
        let b = again.to_json(&cfg, src).to_string();
        assert_eq!(a, b);
        let parsed = Value::parse(&a).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(EXPLAIN_SCHEMA));
        assert_eq!(
            parsed.get("kept").unwrap().as_arr().unwrap().len(),
            report.kept.len()
        );
    }

    #[test]
    fn diagnostics_render_with_source_spans() {
        let (cfg, _analysis, report) = explained(FIGURE5);
        let diags = report.to_diagnostics(&cfg);
        assert_eq!(diags.len(), report.kept.len() + report.dropped.len());
        let rendered: String = diags
            .iter()
            .map(|d| d.render(FIGURE5, "figure5.ms"))
            .collect();
        assert!(rendered.contains("delay kept"));
        assert!(rendered.contains("delay dropped"));
        assert!(rendered.contains("figure5.ms:"));
    }
}
