//! Observability primitives shared by every pipeline stage.
//!
//! Two std-only building blocks:
//!
//! * [`Counters`] — a deterministic named-counter registry. Analysis and
//!   optimization passes report *what they did* (pairs considered,
//!   back-path searches, edges kept/dropped per refinement rule) into one
//!   of these; the facade merges them into the `PipelineReport`.
//! * [`PhaseTimings`] — phase-scoped wall-clock timers. Timings are
//!   inherently nondeterministic, so they are kept separate from the
//!   counters: consumers that need reproducible output (golden tests,
//!   report diffing) compare counters exactly and scrub or ratio the
//!   timings.
//!
//! Both types convert to the std-only JSON [`crate::diag::json::Value`],
//! with keys in a stable order.

use crate::diag::json;
use std::collections::BTreeMap;
use std::time::Instant;

/// A deterministic registry of named `u64` counters.
///
/// Keys use dotted `stage.metric` names (`"cycle.backpath_queries"`,
/// `"sync.post_wait_edges"`); iteration and JSON emission are sorted by
/// key, so two runs over the same input produce identical output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.values.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increments `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets `name` to `n`, overwriting any previous value.
    pub fn set(&mut self, name: &str, n: u64) {
        self.values.insert(name.to_string(), n);
    }

    /// The value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges another registry into this one (summing shared keys).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// The registry as a JSON object, keys sorted.
    pub fn to_json(&self) -> json::Value {
        json::Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), json::Value::Int(v as i64)))
                .collect(),
        )
    }
}

/// Phase-scoped wall-clock timers, recorded in microseconds.
///
/// Phases keep their insertion order (the pipeline order), and a disabled
/// collector records every phase with a zero duration so the *schema* of
/// emitted reports does not depend on whether timing was requested.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    enabled: bool,
    phases: Vec<(String, u64)>,
}

impl PhaseTimings {
    /// A collector; `enabled = false` records zeros (schema-stable no-op).
    pub fn new(enabled: bool) -> Self {
        PhaseTimings {
            enabled,
            phases: Vec::new(),
        }
    }

    /// Whether durations are actually measured.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Runs `f` as phase `name`, recording its duration.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            self.phases.push((name.to_string(), 0));
            return f();
        }
        let start = Instant::now();
        let out = f();
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.phases.push((name.to_string(), micros));
        out
    }

    /// Records an externally measured phase duration.
    pub fn record(&mut self, name: &str, micros: u64) {
        self.phases
            .push((name.to_string(), if self.enabled { micros } else { 0 }));
    }

    /// All `(phase, micros)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The duration of `name` (zero if absent or disabled).
    pub fn get(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of all recorded phase durations, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.phases.iter().map(|(_, v)| v).sum()
    }

    /// The timings as a JSON object in pipeline order; every value is the
    /// phase duration in microseconds (all zeros when disabled).
    pub fn to_json(&self) -> json::Value {
        json::Value::Obj(
            self.iter()
                .map(|(k, v)| (format!("{k}_us"), json::Value::Int(v as i64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut c = Counters::new();
        c.inc("b.second");
        c.add("a.first", 41);
        c.inc("a.first");
        assert_eq!(c.get("a.first"), 42);
        assert_eq!(c.get("missing"), 0);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "b.second"]);
        assert_eq!(c.to_json().to_string(), r#"{"a.first":42,"b.second":1}"#);
    }

    #[test]
    fn counters_merge_sums_shared_keys() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn disabled_timings_record_zeros_with_stable_schema() {
        let mut t = PhaseTimings::new(false);
        let out = t.time("parse", || 7);
        assert_eq!(out, 7);
        t.record("simulate", 1234);
        assert!(!t.enabled());
        assert_eq!(t.get("parse"), 0);
        assert_eq!(t.get("simulate"), 0);
        assert_eq!(t.to_json().to_string(), r#"{"parse_us":0,"simulate_us":0}"#);
    }

    #[test]
    fn enabled_timings_measure_and_preserve_order() {
        let mut t = PhaseTimings::new(true);
        t.time("first", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        t.record("second", 99);
        assert!(t.get("first") >= 1000, "slept 2ms: {}", t.get("first"));
        assert_eq!(t.get("second"), 99);
        let keys: Vec<&str> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["first", "second"]);
        assert_eq!(t.total_micros(), t.get("first") + 99);
    }
}
