//! Seeded random-program corpus shared by the differential tests and
//! the lint-engine sweeps.
//!
//! The generator is SplitMix64-seeded and fully deterministic: the same
//! seed always yields the same source text, so every consumer (the
//! back-path differential tests in `difftest.rs`, the lint no-panic /
//! determinism sweep in `tests/lint_integration.rs`) exercises the
//! identical ≥200 programs with no external crates and no flakiness.

use std::fmt::Write;

/// Number of seeds in the standing corpus (`0..CORPUS_SEEDS`).
pub const CORPUS_SEEDS: u64 = 220;

/// Seeded PRNG (SplitMix64), the same generator the litmus explorer uses.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits one random statement (possibly a compound one) at `depth`.
fn gen_stmt(rng: &mut SplitMix64, out: &mut String, indent: usize, depth: usize) {
    let pad = "    ".repeat(indent);
    let choice = rng.below(if depth > 0 { 12 } else { 9 });
    match choice {
        0 => writeln!(out, "{pad}X = {};", rng.below(9) + 1).unwrap(),
        1 => writeln!(out, "{pad}v = X;").unwrap(),
        2 => writeln!(out, "{pad}Y = {};", rng.below(9) + 1).unwrap(),
        3 => writeln!(out, "{pad}v = Y;").unwrap(),
        4 => writeln!(out, "{pad}A[MYPROC] = {};", rng.below(9)).unwrap(),
        5 => writeln!(out, "{pad}v = A[MYPROC + 1];").unwrap(),
        6 => writeln!(out, "{pad}post F;").unwrap(),
        7 => writeln!(out, "{pad}wait F;").unwrap(),
        8 => writeln!(out, "{pad}barrier;").unwrap(),
        9 => {
            // Balanced critical section.
            writeln!(out, "{pad}lock l;").unwrap();
            for _ in 0..=rng.below(2) {
                gen_stmt(rng, out, indent, 0);
            }
            writeln!(out, "{pad}unlock l;").unwrap();
        }
        10 => {
            writeln!(out, "{pad}if (MYPROC == 0) {{").unwrap();
            for _ in 0..=rng.below(3) {
                gen_stmt(rng, out, indent + 1, depth - 1);
            }
            writeln!(out, "{pad}}} else {{").unwrap();
            for _ in 0..=rng.below(3) {
                gen_stmt(rng, out, indent + 1, depth - 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
        _ => {
            writeln!(out, "{pad}for (i = 0; i < 2; i = i + 1) {{").unwrap();
            for _ in 0..=rng.below(2) {
                gen_stmt(rng, out, indent + 1, depth - 1);
            }
            writeln!(out, "{pad}}}").unwrap();
        }
    }
}

/// A random synchronization-heavy SPMD program for `seed`.
pub fn corpus_program(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed);
    let mut s = String::new();
    s.push_str("shared int X; shared int Y; shared int A[64];\n");
    s.push_str("flag F; lock l;\n");
    s.push_str("fn main() {\n    int v; int i;\n");
    let stmts = 3 + rng.below(8);
    for _ in 0..stmts {
        gen_stmt(&mut rng, &mut s, 1, 2);
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(corpus_program(42), corpus_program(42));
        assert_ne!(corpus_program(1), corpus_program(2));
    }
}
