//! The synchronization lint engine: a multi-pass static checker layered
//! on the §5 analysis and the §9 fence planner.
//!
//! Three pass families, each producing [`crate::diag::Diagnostic`]s:
//!
//! - **deadlock** (`D001`–`D003`): lock-order cycles from a may-hold
//!   dataflow, barriers reachable by only some processors of a
//!   processor-dependent branch, and waits that provably precede every
//!   post that could release them;
//! - **redundant-sync** (`L001`/`L002`): barriers and post→wait pairs
//!   whose cross-processor orderings the rest of the precedence closure
//!   already implies — established by re-running the §5 pipeline with
//!   the site excluded ([`crate::sync::analyze_sync_excluding`]) and
//!   checking nothing else changes;
//! - **fence-coverage** (`F001`/`F002`): a soundness cross-check on
//!   codegen output — every live refined delay pair must be cut by an
//!   implicit synchronization point or a planned fence on *all* CFG
//!   paths, and every planned fence must be justified by some pair.
//!
//! Passes are registered in [`passes`] and run in order by
//! [`run_lints`], which assembles a [`LintReport`] carrying the sorted
//! findings, per-pass summaries, and the versioned
//! `syncopt.lint.v1` JSON form.

mod deadlock;
mod fence_cover;
mod redundant;

use crate::delay::DelaySet;
use crate::diag::{json, sort_diagnostics, Diagnostic, Severity};
use crate::sync::SyncOptions;
use crate::Analysis;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::Position;

/// Schema marker of the JSON lint report.
pub const LINT_SCHEMA: &str = "syncopt.lint.v1";

/// One fence-verification target: an optimized CFG, the delay pairs
/// still live on it, and the fences the planner emitted for it.
#[derive(Debug)]
pub struct FenceCheck<'a> {
    /// Display label of the optimization level (e.g. `"pipelined"`).
    pub label: &'a str,
    /// The optimized (target-IR) CFG the fences were planned on.
    pub cfg: &'a Cfg,
    /// Refined delay pairs restricted to accesses still present in
    /// `cfg` (elimination passes may have removed some).
    pub delay: &'a DelaySet,
    /// Planned memory-fence sites, sorted.
    pub fences: &'a [Position],
}

/// Everything the lint passes read.
#[derive(Debug)]
pub struct LintInput<'a> {
    /// The source-level CFG the analysis ran on.
    pub cfg: &'a Cfg,
    /// The finished delay-set analysis for `cfg`.
    pub analysis: &'a Analysis,
    /// The options `analysis` was computed with.
    pub opts: &'a SyncOptions,
    /// One fence-verification target per optimization level (may be
    /// empty when the caller only wants the source-level passes).
    pub fence_checks: &'a [FenceCheck<'a>],
}

/// A registered lint pass.
pub struct LintPass {
    /// Stable pass name (appears in the JSON report).
    pub name: &'static str,
    /// The diagnostic codes this pass can emit.
    pub codes: &'static [&'static str],
    /// The pass body: appends findings to the output vector.
    pub run: fn(&LintInput<'_>, &mut Vec<Diagnostic>),
}

const PASSES: &[LintPass] = &[
    LintPass {
        name: "deadlock",
        codes: &["D001", "D002", "D003"],
        run: deadlock::run,
    },
    LintPass {
        name: "redundant-sync",
        codes: &["L001", "L002"],
        run: redundant::run,
    },
    LintPass {
        name: "fence-coverage",
        codes: &["F001", "F002"],
        run: fence_cover::run,
    },
];

/// The registered passes, in execution order.
pub fn passes() -> &'static [LintPass] {
    PASSES
}

/// Findings of one pass, for the report summary.
#[derive(Debug, Clone)]
pub struct PassSummary {
    /// Pass name.
    pub name: &'static str,
    /// Codes the pass can emit.
    pub codes: &'static [&'static str],
    /// How many findings it produced on this input.
    pub findings: usize,
}

/// Per-level fence-verification numbers, for the report summary.
#[derive(Debug, Clone)]
pub struct FenceLevelSummary {
    /// Optimization-level label.
    pub label: String,
    /// Live delay pairs verified.
    pub delay_pairs: usize,
    /// Fences the planner emitted.
    pub fences: usize,
}

/// The result of a full lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by [`sort_diagnostics`].
    pub diagnostics: Vec<Diagnostic>,
    /// One summary per registered pass, in execution order.
    pub passes: Vec<PassSummary>,
    /// One summary per fence-verification target.
    pub fence_levels: Vec<FenceLevelSummary>,
}

impl LintReport {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// The versioned `syncopt.lint.v1` JSON form. `src` is the program
    /// source (for line/column resolution), `file` the display name.
    pub fn to_json(&self, src: &str, file: &str, procs: u32) -> json::Value {
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(LINT_SCHEMA.into())),
            ("file".into(), json::Value::Str(file.into())),
            ("procs".into(), json::Value::Int(i64::from(procs))),
            (
                "passes".into(),
                json::Value::Arr(
                    self.passes
                        .iter()
                        .map(|p| {
                            json::Value::Obj(vec![
                                ("name".into(), json::Value::Str(p.name.into())),
                                (
                                    "codes".into(),
                                    json::Value::Arr(
                                        p.codes
                                            .iter()
                                            .map(|c| json::Value::Str((*c).into()))
                                            .collect(),
                                    ),
                                ),
                                ("findings".into(), json::Value::Int(p.findings as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fence_levels".into(),
                json::Value::Arr(
                    self.fence_levels
                        .iter()
                        .map(|f| {
                            json::Value::Obj(vec![
                                ("level".into(), json::Value::Str(f.label.clone())),
                                ("delay_pairs".into(), json::Value::Int(f.delay_pairs as i64)),
                                ("fences".into(), json::Value::Int(f.fences as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary".into(),
                json::Value::Obj(vec![
                    (
                        "errors".into(),
                        json::Value::Int(self.count(Severity::Error) as i64),
                    ),
                    (
                        "warnings".into(),
                        json::Value::Int(self.count(Severity::Warning) as i64),
                    ),
                    (
                        "notes".into(),
                        json::Value::Int(self.count(Severity::Note) as i64),
                    ),
                ]),
            ),
            (
                "diagnostics".into(),
                json::Value::Arr(self.diagnostics.iter().map(|d| d.to_json(src)).collect()),
            ),
        ])
    }
}

/// Runs every registered pass over `input` and assembles the report.
/// Deterministic: identical input yields a byte-identical report
/// regardless of analysis thread count.
pub fn run_lints(input: &LintInput<'_>) -> LintReport {
    let mut diagnostics = Vec::new();
    let mut pass_summaries = Vec::new();
    for pass in PASSES {
        let before = diagnostics.len();
        (pass.run)(input, &mut diagnostics);
        pass_summaries.push(PassSummary {
            name: pass.name,
            codes: pass.codes,
            findings: diagnostics.len() - before,
        });
    }
    sort_diagnostics(&mut diagnostics);
    let fence_levels = input
        .fence_checks
        .iter()
        .map(|c| FenceLevelSummary {
            label: c.label.to_string(),
            delay_pairs: c.delay.len(),
            fences: c.fences.len(),
        })
        .collect();
    LintReport {
        diagnostics,
        passes: pass_summaries,
        fence_levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_with;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    pub(super) fn lint_source(src: &str) -> LintReport {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let opts = SyncOptions::default();
        let analysis = analyze_with(&cfg, &opts);
        run_lints(&LintInput {
            cfg: &cfg,
            analysis: &analysis,
            opts: &opts,
            fence_checks: &[],
        })
    }

    pub(super) fn codes_of(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_lints_clean() {
        let report = lint_source(
            "shared int X; flag F;
             fn main() { int v;
                 if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; } }",
        );
        assert!(report.diagnostics.is_empty(), "{:?}", codes_of(&report));
        assert_eq!(report.passes.len(), 3);
        assert!(report.passes.iter().all(|p| p.findings == 0));
    }

    #[test]
    fn report_json_has_schema_and_round_trips() {
        let src = "shared int X; fn main() { X = 1; barrier; }";
        let report = lint_source(src);
        let v = report.to_json(src, "test.ms", 4);
        assert_eq!(
            v.get("schema").and_then(json::Value::as_str),
            Some(LINT_SCHEMA)
        );
        let text = v.to_string();
        let parsed = json::Value::parse(&text).expect("canonical JSON parses");
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn registry_codes_are_known() {
        for pass in passes() {
            for code in pass.codes {
                assert!(
                    crate::diag::KNOWN_CODES.contains(code),
                    "{code} missing from KNOWN_CODES"
                );
            }
        }
    }
}
