//! Static deadlock detection (`D001`–`D003`).
//!
//! - `D001`: lock-order cycles. A forward may-hold dataflow computes, for
//!   every acquire site, which locks may already be held; the resulting
//!   held→acquired edges form the lock-order graph, and any cycle means
//!   two processors can interleave their critical sections into a
//!   circular wait (or one processor can re-acquire a held lock).
//! - `D002`: barrier divergence. A branch whose condition depends on
//!   `MYPROC` (or shared data) can evaluate differently across
//!   processors; if exactly one of its arms must cross a barrier before
//!   the join, the processors that take the other arm never arrive.
//! - `D003`: post/wait divergence. A wait with matching posts, all of
//!   which it dominates, can never be released: the first processor to
//!   reach the wait blocks before *any* processor can execute a post.

use super::LintInput;
use crate::affine::may_match_any_proc;
use crate::barrier::{proc_dependent_locals, tainted_branches};
use crate::diag::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::{Cfg, Instr};
use syncopt_ir::dom::Dominators;
use syncopt_ir::ids::{AccessId, BlockId, VarId};

pub(super) fn run(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    lock_cycles(input.cfg, out);
    barrier_divergence(input.cfg, out);
    post_wait_divergence(input.cfg, out);
}

/// `D001`: cycles in the lock-order graph.
fn lock_cycles(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    // Forward may-hold dataflow: union over predecessors, transfer
    // through acquire/release instructions.
    let n = cfg.num_blocks();
    let mut held_in: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n];
    let rpo = cfg.reverse_postorder();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let mut cur = held_in[b.index()].clone();
            for instr in &cfg.block(b).instrs {
                match instr {
                    Instr::LockAcq { lock, .. } => {
                        cur.insert(*lock);
                    }
                    Instr::LockRel { lock, .. } => {
                        cur.remove(lock);
                    }
                    _ => {}
                }
            }
            for s in cfg.successors(b) {
                for &l in &cur {
                    if held_in[s.index()].insert(l) {
                        changed = true;
                    }
                }
            }
        }
    }

    // Lock-order edges held → acquired, each with its earliest witness
    // acquire site.
    let mut edges: BTreeMap<(VarId, VarId), AccessId> = BTreeMap::new();
    for b in cfg.block_ids() {
        let mut cur = held_in[b.index()].clone();
        for instr in &cfg.block(b).instrs {
            match instr {
                Instr::LockAcq { access, lock } => {
                    for &h in &cur {
                        edges.entry((h, *lock)).or_insert(*access);
                    }
                    cur.insert(*lock);
                }
                Instr::LockRel { lock, .. } => {
                    cur.remove(lock);
                }
                _ => {}
            }
        }
    }
    if edges.is_empty() {
        return;
    }

    let locks: BTreeSet<VarId> = edges.keys().flat_map(|&(a, b)| [a, b]).collect();
    let mut reported: BTreeSet<VarId> = BTreeSet::new();
    for &start in &locks {
        if reported.contains(&start) {
            continue;
        }
        let Some(cycle) = shortest_cycle(start, &edges) else {
            continue;
        };
        reported.extend(cycle.iter().copied());
        let name = |l: VarId| cfg.vars.info(l).name.clone();
        let rendered: Vec<String> = cycle
            .iter()
            .chain(std::iter::once(&cycle[0]))
            .map(|&l| format!("`{}`", name(l)))
            .collect();
        let message = if cycle.len() == 1 {
            format!(
                "potential deadlock: lock `{}` may be re-acquired while already held",
                name(cycle[0])
            )
        } else {
            format!(
                "potential deadlock: lock-order cycle {}",
                rendered.join(" → ")
            )
        };
        let anchor = edges[&(cycle[0], cycle[if cycle.len() == 1 { 0 } else { 1 }])];
        let mut d = Diagnostic::new(
            "D001",
            Severity::Warning,
            message,
            cfg.accesses.info(anchor).span,
        );
        for (i, &from) in cycle.iter().enumerate() {
            let to = cycle[(i + 1) % cycle.len()];
            let site = edges[&(from, to)];
            d = d.with_note(
                format!(
                    "lock `{}` acquired here while `{}` is held",
                    name(to),
                    name(from)
                ),
                Some(cfg.accesses.info(site).span),
            );
        }
        d = d.with_note(
            "two processors interleaving these acquisitions wait on each other forever",
            None,
        );
        out.push(d);
    }
}

/// Shortest cycle through `start` in the lock-order graph, as the node
/// sequence `[start, …]` (a self-loop yields `[start]`).
fn shortest_cycle(start: VarId, edges: &BTreeMap<(VarId, VarId), AccessId>) -> Option<Vec<VarId>> {
    // BFS from each successor of `start` back to `start`; BTreeMap
    // iteration keeps expansion order deterministic.
    if edges.contains_key(&(start, start)) {
        return Some(vec![start]);
    }
    let succs = |l: VarId| edges.keys().filter(move |(a, _)| *a == l).map(|&(_, b)| b);
    let mut parent: BTreeMap<VarId, VarId> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<VarId> = succs(start).collect();
    for s in queue.iter() {
        parent.entry(*s).or_insert(start);
    }
    while let Some(l) = queue.pop_front() {
        if l == start {
            // Reconstruct start → … → start.
            let mut path = vec![];
            let mut cur = *parent.get(&start).expect("reached via parent");
            while cur != start {
                path.push(cur);
                cur = parent[&cur];
            }
            path.push(start);
            path.reverse();
            return Some(path);
        }
        for s in succs(l) {
            // `start` has no seeded parent entry, so reaching it back
            // here records the closing hop exactly once.
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(l);
                queue.push_back(s);
            }
        }
    }
    None
}

/// `D002`: a processor-dependent branch where exactly one arm must cross
/// a barrier before the join.
fn barrier_divergence(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let barrier_block: Vec<bool> = cfg
        .block_ids()
        .map(|b| {
            cfg.block(b)
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::Barrier { .. }))
        })
        .collect();
    if !barrier_block.iter().any(|&x| x) {
        return;
    }
    let tainted = proc_dependent_locals(cfg);
    let mut branches = tainted_branches(cfg, &tainted);
    branches.sort_by_key(|b| b.index());
    if branches.is_empty() {
        return;
    }
    let pdom = Dominators::compute_post(cfg);
    let avoid = |b: BlockId| barrier_block[b.index()];
    let mut flagged: BTreeSet<AccessId> = BTreeSet::new();
    for t in branches {
        // The join is the branch block's immediate postdominator; past
        // it both arms execute the same code again.
        let Some(join) = pdom.idom(t) else { continue };
        let succs = cfg.successors(t);
        if succs.len() != 2 || succs[0] == succs[1] {
            continue;
        }
        let bypass: Vec<Option<Vec<BlockId>>> = succs
            .iter()
            .map(|&s| cfg.block_path_avoiding(s, join, &avoid))
            .collect();
        let (must_arm, free_path) = match (&bypass[0], &bypass[1]) {
            (None, Some(p)) => (succs[0], p),
            (Some(p), None) => (succs[1], p),
            _ => continue, // both arms cross, or neither does: aligned
        };
        // Barriers in the diverging region: reachable from the trapped
        // arm without entering the join.
        let region = region_barriers(cfg, must_arm, join);
        let Some((&first, rest)) = region.split_first() else {
            continue;
        };
        if !flagged.insert(first) {
            continue;
        }
        let path_text = free_path
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(" → ");
        let mut d = Diagnostic::new(
            "D002",
            Severity::Warning,
            "barrier may deadlock: a processor-dependent branch lets some processors bypass it"
                .to_string(),
            cfg.accesses.info(first).span,
        )
        .with_note(
            format!(
                "the branch at {t} depends on MYPROC or shared data, so processors can disagree \
                 on which arm to take"
            ),
            None,
        )
        .with_note(
            format!("bypassing arm rejoins at {join} without crossing any barrier: {path_text}"),
            None,
        );
        for &b in rest {
            d = d.with_note(
                "another barrier in the same diverging region",
                Some(cfg.accesses.info(b).span),
            );
        }
        out.push(d);
    }
}

/// Barrier sites reachable from `from` without entering `join`, in
/// deterministic BFS order.
fn region_barriers(cfg: &Cfg, from: BlockId, join: BlockId) -> Vec<AccessId> {
    let mut out = Vec::new();
    let mut visited = vec![false; cfg.num_blocks()];
    let mut queue = std::collections::VecDeque::new();
    if from != join {
        visited[from.index()] = true;
        queue.push_back(from);
    }
    while let Some(b) = queue.pop_front() {
        for instr in &cfg.block(b).instrs {
            if let Instr::Barrier { access } = instr {
                out.push(*access);
            }
        }
        for s in cfg.successors(b) {
            if s != join && !visited[s.index()] {
                visited[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    out
}

/// `D003`: a wait that dominates every post that could release it.
fn post_wait_divergence(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let dom = Dominators::compute(cfg);
    let posts: Vec<(AccessId, &syncopt_ir::access::AccessInfo)> = cfg
        .accesses
        .iter()
        .filter(|(_, i)| i.kind == AccessKind::Post)
        .collect();
    for (_w, wi) in cfg.accesses.iter() {
        if wi.kind != AccessKind::Wait {
            continue;
        }
        let matching: Vec<(AccessId, &syncopt_ir::access::AccessInfo)> = posts
            .iter()
            .filter(|(_, pi)| {
                pi.var == wi.var && may_match_any_proc(pi.index.as_ref(), wi.index.as_ref())
            })
            .copied()
            .collect();
        // Zero matches is W001's territory (wait blocks forever).
        if matching.is_empty() {
            continue;
        }
        if !matching
            .iter()
            .all(|(_, pi)| dom.pos_dominates(wi.pos, pi.pos))
        {
            continue;
        }
        let var = wi
            .var
            .map(|v| cfg.vars.info(v).name.clone())
            .unwrap_or_else(|| "?".into());
        let mut d = Diagnostic::new(
            "D003",
            Severity::Error,
            format!(
                "deadlock: this `wait {var}` can never be released — every matching `post` is \
                 reachable only after it"
            ),
            wi.span,
        )
        .with_note(
            "the first processor to arrive blocks here before any processor can post",
            None,
        );
        for (p, pi) in &matching {
            d = d.with_note(format!("matching post site {p}"), Some(pi.span));
        }
        out.push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{codes_of, lint_source};

    #[test]
    fn opposite_lock_orders_trigger_d001() {
        let report = lint_source(
            "shared int X; shared int Y; lock a; lock b;
             fn main() {
                 if (MYPROC == 0) { lock a; lock b; X = 1; unlock b; unlock a; }
                 else { lock b; lock a; Y = 1; unlock a; unlock b; }
             }",
        );
        assert!(
            codes_of(&report).contains(&"D001"),
            "{:?}",
            codes_of(&report)
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "D001")
            .unwrap();
        assert!(d.message.contains("lock-order cycle"), "{}", d.message);
        assert!(
            d.notes.iter().any(|n| n.message.contains("acquired here")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn nested_same_order_locks_are_clean() {
        let report = lint_source(
            "shared int X; lock a; lock b;
             fn main() { lock a; lock b; X = 1; unlock b; unlock a; }",
        );
        assert!(
            !codes_of(&report).contains(&"D001"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn reacquired_lock_triggers_self_cycle() {
        let report = lint_source(
            "shared int X; lock a;
             fn main() { lock a; lock a; X = 1; unlock a; unlock a; }",
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "D001")
            .unwrap();
        assert!(d.message.contains("re-acquired"), "{}", d.message);
    }

    #[test]
    fn one_sided_barrier_triggers_d002() {
        let report = lint_source(
            "shared int X;
             fn main() { if (MYPROC == 0) { X = 1; barrier; } }",
        );
        assert!(
            codes_of(&report).contains(&"D002"),
            "{:?}",
            codes_of(&report)
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "D002")
            .unwrap();
        assert!(
            d.notes
                .iter()
                .any(|n| n.message.contains("without crossing")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn barrier_on_both_arms_is_clean() {
        let report = lint_source(
            "shared int X;
             fn main() {
                 if (MYPROC == 0) { X = 1; barrier; } else { barrier; }
             }",
        );
        assert!(
            !codes_of(&report).contains(&"D002"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn uniform_branch_with_barrier_is_clean() {
        let report = lint_source(
            "shared int X;
             fn main() { int i;
                 for (i = 0; i < 2; i = i + 1) { X = 1; barrier; }
             }",
        );
        assert!(
            !codes_of(&report).contains(&"D002"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn wait_before_its_only_post_triggers_d003() {
        let report = lint_source("flag F; fn main() { wait F; post F; }");
        assert!(
            codes_of(&report).contains(&"D003"),
            "{:?}",
            codes_of(&report)
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "D003")
            .unwrap();
        assert!(
            d.notes
                .iter()
                .any(|n| n.message.contains("matching post site")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn post_then_wait_is_clean() {
        let report = lint_source("flag F; fn main() { post F; wait F; }");
        assert!(
            !codes_of(&report).contains(&"D003"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn cross_branch_post_wait_is_clean() {
        let report = lint_source(
            "shared int X; flag F;
             fn main() { int v;
                 if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; } }",
        );
        assert!(
            !codes_of(&report).contains(&"D003"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn unmatched_wait_is_not_d003() {
        // Zero matching posts is W001's territory.
        let report = lint_source("flag F; fn main() { wait F; }");
        assert!(
            !codes_of(&report).contains(&"D003"),
            "{:?}",
            codes_of(&report)
        );
    }
}
