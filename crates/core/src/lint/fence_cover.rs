//! Fence-coverage verification (`F001`/`F002`) — the soundness
//! cross-check closing the analysis↔codegen loop.
//!
//! For each optimization level the caller supplies a [`FenceCheck`]:
//! the optimized CFG, the refined delay pairs still live on it, and the
//! fences the §9 planner emitted. The verifier is independent of the
//! planner's reasoning — it checks *all* CFG paths, not just the
//! straight-line segment the planner argues about:
//!
//! - `F001` (error): a delay pair `(u, v)` with some path from `u` to
//!   `v` crossing neither an implicit fence (blocking sync op) nor a
//!   planned fence — the hardware could reorder the pair;
//! - `F002` (warning): a planned fence that stabs no pair's legal
//!   placement interval — a write-buffer drain bought nothing.

use super::{FenceCheck, LintInput};
use crate::diag::{Diagnostic, Severity};
use syncopt_frontend::span::Span;
use syncopt_ir::cfg::{Cfg, Instr};
use syncopt_ir::ids::{AccessId, BlockId, Position};

pub(super) fn run(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    for check in input.fence_checks {
        verify_level(check, out);
    }
}

/// Whether an instruction acts as an implicit full fence (must agree
/// with the planner's notion in `syncopt-codegen`).
fn implicit_fence(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Barrier { .. }
            | Instr::Wait { .. }
            | Instr::Post { .. }
            | Instr::LockAcq { .. }
            | Instr::LockRel { .. }
            | Instr::SyncCtr { .. }
    )
}

fn verify_level(check: &FenceCheck<'_>, out: &mut Vec<Diagnostic>) {
    let cfg = check.cfg;
    // A block is an uncut transit block when crossing it end-to-end
    // meets neither an implicit fence nor a planned fence.
    let block_cut: Vec<bool> = cfg
        .block_ids()
        .map(|b| {
            cfg.block(b).instrs.iter().any(implicit_fence)
                || check.fences.iter().any(|f| f.block == b)
        })
        .collect();

    // F001: every live pair must be cut on all paths.
    for (u, v) in check.delay.pairs() {
        if let Err(path) = pair_covered(cfg, check.fences, &block_cut, u, v) {
            let pu = cfg.accesses.info(u).pos;
            let path_text = path
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(" → ");
            out.push(
                Diagnostic::new(
                    "F001",
                    Severity::Error,
                    format!(
                        "missing fence: delay {u} → {v} is not cut on every path \
                         ({} level)",
                        check.label
                    ),
                    cfg.accesses.info(v).span,
                )
                .with_note(
                    format!("first access {u} at {}:{}", pu.block, pu.instr),
                    Some(cfg.accesses.info(u).span),
                )
                .with_note(format!("uncut path: {path_text}"), None),
            );
        }
    }

    // F002: every planned fence must stab some pair's interval.
    for &f in check.fences {
        let justified = check.delay.pairs().into_iter().any(|(u, v)| {
            let (Some(_), Some(_)) = (cfg.instr_for_access(u), cfg.instr_for_access(v)) else {
                return false;
            };
            let pu = cfg.accesses.info(u).pos;
            let pv = cfg.accesses.info(v).pos;
            if implicit_fence(&cfg.block(pu.block).instrs[pu.instr])
                || implicit_fence(&cfg.block(pv.block).instrs[pv.instr])
            {
                return false;
            }
            if pv.block != f.block {
                return false;
            }
            let lo = if pu.block == pv.block && pu.instr < pv.instr {
                pu.instr + 1
            } else {
                0
            };
            lo <= f.instr && f.instr <= pv.instr
        });
        if !justified {
            out.push(
                Diagnostic::new(
                    "F002",
                    Severity::Warning,
                    format!(
                        "unjustified fence at {}:{}: no delay pair needs it ({} level)",
                        f.block, f.instr, check.label
                    ),
                    fence_span(cfg, f),
                )
                .with_note(
                    "a fence is a full write-buffer drain; this one buys nothing",
                    None,
                ),
            );
        }
    }
}

/// Whether every path from `u` to `v` crosses a cut (implicit fence or
/// planned fence). On failure returns the uncut block path as witness.
fn pair_covered(
    cfg: &Cfg,
    fences: &[Position],
    block_cut: &[bool],
    u: AccessId,
    v: AccessId,
) -> Result<(), Vec<BlockId>> {
    let pu = cfg.accesses.info(u).pos;
    let pv = cfg.accesses.info(v).pos;
    let instr_at = |b: BlockId, i: usize| &cfg.block(b).instrs[i];
    // Blocking endpoints order themselves.
    if implicit_fence(instr_at(pu.block, pu.instr)) || implicit_fence(instr_at(pv.block, pv.instr))
    {
        return Ok(());
    }
    let fence_at = |b: BlockId, i: usize| fences.iter().any(|f| f.block == b && f.instr == i);

    // Direct same-block segment u…v.
    if pu.block == pv.block && pu.instr < pv.instr {
        let cut = ((pu.instr + 1)..pv.instr).any(|i| implicit_fence(instr_at(pv.block, i)))
            || ((pu.instr + 1)..=pv.instr).any(|i| fence_at(pv.block, i));
        if !cut {
            return Err(vec![pv.block]);
        }
    }

    // Paths that leave `u`'s block and (re-)enter `v`'s block.
    let exit_cut = ((pu.instr + 1)..cfg.block(pu.block).instrs.len())
        .any(|i| implicit_fence(instr_at(pu.block, i)))
        || ((pu.instr + 1)..cfg.block(pu.block).instrs.len()).any(|i| fence_at(pu.block, i));
    if exit_cut {
        return Ok(());
    }
    let entry_cut = (0..pv.instr).any(|i| implicit_fence(instr_at(pv.block, i)))
        || (0..=pv.instr).any(|i| fence_at(pv.block, i));
    if entry_cut {
        return Ok(());
    }
    // Neither end is cut: any route through uncut transit blocks is a
    // violation. The destination block's own prefix was just checked, so
    // it is exempt from the transit predicate.
    let avoid = |b: BlockId| block_cut[b.index()];
    for s in cfg.successors(pu.block) {
        if let Some(path) = cfg.block_path_avoiding(s, pv.block, &avoid) {
            let mut witness = vec![pu.block];
            witness.extend(path);
            return Err(witness);
        }
    }
    Ok(())
}

/// A display span for a fence position: the nearest access at or after
/// it in its block (fences sit between instructions and have no span of
/// their own).
fn fence_span(cfg: &Cfg, f: Position) -> Span {
    let block = cfg.block(f.block);
    for instr in block.instrs.iter().skip(f.instr) {
        if let Some(a) = instr.access_id() {
            return cfg.accesses.info(a).span;
        }
    }
    Span::dummy()
}

#[cfg(test)]
mod tests {
    use super::super::{run_lints, FenceCheck, LintInput};
    use super::*;
    use crate::analyze_with;
    use crate::sync::SyncOptions;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    const RACY: &str = "shared int Data; shared int Flag;
         fn main() { int v; int w;
             if (MYPROC == 0) { Data = 1; Flag = 1; }
             else { v = Flag; w = Data; } }";

    fn lint_with_fences(src: &str, fences: Vec<Position>) -> Vec<&'static str> {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let opts = SyncOptions::default();
        let analysis = analyze_with(&cfg, &opts);
        let checks = [FenceCheck {
            label: "blocking",
            cfg: &cfg,
            delay: &analysis.delay_sync,
            fences: &fences,
        }];
        let report = run_lints(&LintInput {
            cfg: &cfg,
            analysis: &analysis,
            opts: &opts,
            fence_checks: &checks,
        });
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn planned_fences(src: &str) -> (Vec<Position>, usize) {
        // A tiny greedy planner mirror for tests: place a fence directly
        // before every delay target with a non-blocking source. This
        // over-fences (some become F002 candidates) but always covers.
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let analysis = analyze_with(&cfg, &SyncOptions::default());
        let mut fences: Vec<Position> = Vec::new();
        for (u, v) in analysis.delay_sync.pairs() {
            let pu = cfg.accesses.info(u).pos;
            let pv = cfg.accesses.info(v).pos;
            let imp = |p: Position| implicit_fence(&cfg.block(p.block).instrs[p.instr]);
            if !imp(pu) && !imp(pv) {
                fences.push(pv);
            }
        }
        fences.sort();
        fences.dedup();
        let n = fences.len();
        (fences, n)
    }

    #[test]
    fn uncovered_delay_pair_is_f001() {
        let codes = lint_with_fences(RACY, vec![]);
        assert!(codes.contains(&"F001"), "{codes:?}");
    }

    #[test]
    fn covering_fences_silence_f001() {
        let (fences, n) = planned_fences(RACY);
        assert!(n > 0);
        let codes = lint_with_fences(RACY, fences);
        assert!(!codes.contains(&"F001"), "{codes:?}");
    }

    #[test]
    fn bogus_fence_is_f002() {
        // A sync-covered program needs no fences at all; injecting one
        // anyway must be flagged as unjustified.
        let src = "shared int X; flag F;
             fn main() { int v;
                 if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; } }";
        let codes = lint_with_fences(src, vec![Position::new(BlockId::from_index(0), 0)]);
        assert!(codes.contains(&"F002"), "{codes:?}");
        assert!(!codes.contains(&"F001"), "{codes:?}");
    }

    #[test]
    fn sync_covered_program_needs_no_fences() {
        let src = "shared int X; flag F;
             fn main() { int v;
                 if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; } }";
        let codes = lint_with_fences(src, vec![]);
        assert!(!codes.contains(&"F001"), "{codes:?}");
        assert!(!codes.contains(&"F002"), "{codes:?}");
    }
}
