//! Redundant-synchronization analysis (`L001`/`L002`).
//!
//! A synchronization site is *redundant* when the rest of the program's
//! synchronization already implies every cross-processor ordering it
//! provides. The probe is direct: re-run the §5 pipeline with the site's
//! precedence seeds withheld ([`analyze_sync_excluding`]) and compare.
//! Seeds only shrink, so the excluded run can only *add* delay pairs and
//! conflict directions — the site is redundant exactly when nothing
//! changed for any pair not involving the site itself (pairs touching
//! the site disappear with it and carry no information).
//!
//! Each finding reports a covering witness: a `D_SS` delay pair that the
//! full analysis drops *because of* this site, shown to stay dropped in
//! the excluded run together with the synchronization fact that still
//! covers it (computed by replaying the provenance walk of
//! [`crate::explain`] against the excluded analysis).

use super::LintInput;
use crate::barrier::{aligned_barriers, barrier_precedence_edges};
use crate::cycle::BackPathOracle;
use crate::diag::{Diagnostic, Severity};
use crate::explain::{fact_desc, first_break, DropReason, SyncFact};
use crate::obs::Counters;
use crate::sync::{analyze_sync_excluding, post_wait_edges, SyncAnalysis, SyncExclusion};
use crate::Analysis;
use std::collections::HashSet;
use syncopt_frontend::span::Span;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;
use syncopt_ir::order::ProgramOrder;

pub(super) fn run(input: &LintInput<'_>, out: &mut Vec<Diagnostic>) {
    let cfg = input.cfg;
    let full = &input.analysis.sync;
    let barrier_cands: Vec<AccessId> = full.aligned_barriers.clone();
    let wait_cands: Vec<(AccessId, AccessId)> = post_wait_edges(cfg);
    if barrier_cands.is_empty() && wait_cands.is_empty() {
        return;
    }
    let mut witnesses = WitnessCtx::new(input);
    for &b in &barrier_cands {
        let excl = SyncExclusion {
            barriers: vec![b],
            waits: vec![],
        };
        let alt = analyze_sync_excluding(cfg, input.opts, &excl);
        if !unchanged_excluding(input.analysis, &alt, b) {
            continue;
        }
        let mut d = Diagnostic::new(
            "L001",
            Severity::Note,
            "redundant barrier: the remaining synchronization already implies every \
             cross-processor ordering it provides"
                .to_string(),
            cfg.accesses.info(b).span,
        );
        let (msg, span) = witnesses.covering_note(b, &excl, &alt);
        d = d.with_note(msg, span);
        out.push(d);
    }
    for &(p, w) in &wait_cands {
        let excl = SyncExclusion {
            barriers: vec![],
            waits: vec![w],
        };
        let alt = analyze_sync_excluding(cfg, input.opts, &excl);
        if !unchanged_excluding(input.analysis, &alt, w) {
            continue;
        }
        let mut d = Diagnostic::new(
            "L002",
            Severity::Note,
            "redundant post→wait synchronization: the remaining synchronization already \
             implies every cross-processor ordering it provides"
                .to_string(),
            cfg.accesses.info(w).span,
        )
        .with_note(
            format!("released by the post site {p}"),
            Some(cfg.accesses.info(p).span),
        );
        let (msg, span) = witnesses.covering_note(w, &excl, &alt);
        d = d.with_note(msg, span);
        out.push(d);
    }
}

/// Whether the excluded analysis agrees with the full one on every delay
/// pair and every conflict direction not involving `site`. Monotonicity
/// (seeds only shrink) means only the `excluded \ full` direction needs
/// checking.
fn unchanged_excluding(full: &Analysis, alt: &SyncAnalysis, site: AccessId) -> bool {
    for (x, y) in alt.delay.pairs() {
        if x != site && y != site && !full.sync.delay.contains(x, y) {
            return false;
        }
    }
    let n = full.conflicts.num_accesses();
    for i in 0..n {
        let x = AccessId::from_index(i);
        if x == site {
            continue;
        }
        for j in 0..n {
            let y = AccessId::from_index(j);
            if y == site {
                continue;
            }
            if alt.oriented.edge(x, y) && !full.sync.oriented.edge(x, y) {
                return false;
            }
        }
    }
    true
}

/// One `D_SS` pair the full analysis drops, with its canonical witness
/// chain and the full-run removal reason.
struct DroppedInfo {
    u: AccessId,
    v: AccessId,
    chain: Vec<AccessId>,
    reason: DropReason,
}

/// Lazily-built provenance context shared by all candidate probes.
struct WitnessCtx<'a> {
    input: &'a LintInput<'a>,
    po: ProgramOrder,
    dropped: Option<Vec<DroppedInfo>>,
}

impl<'a> WitnessCtx<'a> {
    fn new(input: &'a LintInput<'a>) -> Self {
        WitnessCtx {
            input,
            po: ProgramOrder::compute(input.cfg),
            dropped: None,
        }
    }

    /// The full-run dropped pairs with their canonical witness chains
    /// and removal reasons (computed once, on first redundant site).
    fn dropped(&mut self) -> &[DroppedInfo] {
        if self.dropped.is_none() {
            let cfg = self.input.cfg;
            let analysis = self.input.analysis;
            let oracle = BackPathOracle::new(cfg, &analysis.conflicts, &self.po);
            let classify =
                seed_classifier(cfg, &self.po, self.input.opts, &SyncExclusion::default());
            let mut infos = Vec::new();
            for (u, v) in analysis.delay_ss.pairs() {
                if analysis.delay_sync.contains(u, v) {
                    continue;
                }
                let chain = oracle
                    .witness(u, v, &[])
                    .expect("D_SS pair must have a back-path");
                let reason = first_break(cfg, &self.po, analysis, &classify, u, v, &chain);
                infos.push(DroppedInfo {
                    u,
                    v,
                    chain,
                    reason,
                });
            }
            self.dropped = Some(infos);
        }
        self.dropped.as_ref().unwrap().as_slice()
    }

    /// The covering-witness note for a redundant `site`: the first
    /// dropped pair whose full-run removal reason cites the site, shown
    /// to stay removed in the excluded analysis `alt` — with the fact
    /// that now covers it. Falls back to a generic note for sites no
    /// dropped pair depends on.
    fn covering_note(
        &mut self,
        site: AccessId,
        excl: &SyncExclusion,
        alt: &SyncAnalysis,
    ) -> (String, Option<Span>) {
        let cfg = self.input.cfg;
        let opts = self.input.opts;
        let representative = self
            .dropped()
            .iter()
            .position(|di| reason_cites(&di.reason, site));
        let Some(idx) = representative else {
            return (
                "it removes no delay pair on its own: every ordering it seeds is already \
                 derived from the other synchronization sites"
                    .to_string(),
                None,
            );
        };
        let (u, v, chain) = {
            let di = &self.dropped()[idx];
            (di.u, di.v, di.chain.clone())
        };
        let alt_analysis = Analysis {
            conflicts: self.input.analysis.conflicts.clone(),
            delay_ss: self.input.analysis.delay_ss.clone(),
            delay_sync: alt.delay.clone(),
            sync: alt.clone(),
            metrics: Counters::new(),
        };
        let classify = seed_classifier(cfg, &self.po, opts, excl);
        let reason = first_break(cfg, &self.po, &alt_analysis, &classify, u, v, &chain);
        let covered_by = reason_text(cfg, &reason);
        (
            format!("covering path: delay pair {u} → {v} stays removed without it — {covered_by}"),
            reason_span(cfg, &reason),
        )
    }
}

/// The step-3 seed classifier for an analysis run with `excl` withheld
/// (mirrors the closure in [`crate::explain::explain`]).
fn seed_classifier(
    cfg: &Cfg,
    po: &ProgramOrder,
    opts: &crate::sync::SyncOptions,
    excl: &SyncExclusion,
) -> impl Fn(AccessId, AccessId) -> SyncFact {
    let pw: HashSet<(AccessId, AccessId)> = post_wait_edges(cfg)
        .into_iter()
        .filter(|(_, w)| !excl.waits.contains(w))
        .collect();
    let aligned: Vec<AccessId> = aligned_barriers(cfg, opts.barrier_policy)
        .into_iter()
        .filter(|b| !excl.barriers.contains(b))
        .collect();
    let be: HashSet<(AccessId, AccessId)> = barrier_precedence_edges(cfg, po, &aligned)
        .into_iter()
        .collect();
    move |before: AccessId, after: AccessId| -> SyncFact {
        if pw.contains(&(before, after)) {
            SyncFact::PostWait {
                post: before,
                wait: after,
            }
        } else if be.contains(&(before, after)) {
            SyncFact::AlignedBarrier { before, after }
        } else {
            SyncFact::Derived { before, after }
        }
    }
}

/// Whether a removal reason's synchronization fact involves `site`.
fn reason_cites(reason: &DropReason, site: AccessId) -> bool {
    let fact = match reason {
        DropReason::NodeOrderedAfterFirst { fact, .. }
        | DropReason::NodeOrderedBeforeSecond { fact, .. }
        | DropReason::EdgeUnoriented { fact, .. } => fact,
        DropReason::NodeLockGuarded { .. } | DropReason::Unexplained => return false,
    };
    let (a, b) = fact.pair();
    a == site || b == site
}

/// Renders a removal reason as note text (vocabulary shared with the
/// `P002` provenance notes).
fn reason_text(cfg: &Cfg, reason: &DropReason) -> String {
    match reason {
        DropReason::NodeOrderedAfterFirst { node, fact } => {
            format!(
                "back-path node {node} is ordered after the pair by {}",
                fact_desc(fact)
            )
        }
        DropReason::NodeOrderedBeforeSecond { node, fact } => {
            format!(
                "back-path node {node} is ordered before the pair by {}",
                fact_desc(fact)
            )
        }
        DropReason::NodeLockGuarded { node, lock } => format!(
            "back-path node {node} shares lock `{}` with the pair (§5.3)",
            cfg.vars.info(*lock).name
        ),
        DropReason::EdgeUnoriented { from, to, fact } => {
            format!(
                "conflict direction {from} → {to} removed by {}",
                fact_desc(fact)
            )
        }
        DropReason::Unexplained => "removed by refinement".to_string(),
    }
}

/// The source anchor of a removal reason's covering fact.
fn reason_span(cfg: &Cfg, reason: &DropReason) -> Option<Span> {
    match reason {
        DropReason::NodeOrderedAfterFirst { fact, .. }
        | DropReason::NodeOrderedBeforeSecond { fact, .. }
        | DropReason::EdgeUnoriented { fact, .. } => Some(cfg.accesses.info(fact.pair().0).span),
        DropReason::NodeLockGuarded { node, .. } => Some(cfg.accesses.info(*node).span),
        DropReason::Unexplained => None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{codes_of, lint_source};

    #[test]
    fn double_barrier_flags_both_as_redundant() {
        let report = lint_source(
            "shared int A[64];
             fn main() { int v;
                 A[MYPROC] = 1;
                 barrier;
                 barrier;
                 v = A[MYPROC + 1];
             }",
        );
        let l001: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L001")
            .collect();
        assert_eq!(l001.len(), 2, "{:?}", codes_of(&report));
        // Each finding carries a rendered witness note.
        for d in &l001 {
            assert!(!d.notes.is_empty(), "{:?}", d.message);
        }
    }

    #[test]
    fn single_needed_barrier_is_not_redundant() {
        let report = lint_source(
            "shared int A[64];
             fn main() { int v;
                 A[MYPROC] = 1;
                 barrier;
                 v = A[MYPROC + 1];
             }",
        );
        assert!(
            !codes_of(&report).contains(&"L001"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn wait_covered_by_barrier_is_redundant() {
        let report = lint_source(
            "shared int X; flag F;
             fn main() { int v;
                 X = 1;
                 post F;
                 barrier;
                 wait F;
                 v = X;
             }",
        );
        assert!(
            codes_of(&report).contains(&"L002"),
            "{:?}",
            codes_of(&report)
        );
    }

    #[test]
    fn load_bearing_post_wait_is_not_redundant() {
        let report = lint_source(
            "shared int X; flag F;
             fn main() { int v;
                 if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; } }",
        );
        assert!(
            !codes_of(&report).contains(&"L002"),
            "{:?}",
            codes_of(&report)
        );
    }
}
