//! Content-addressed artifact cache for incremental analysis.
//!
//! The session API (`syncopt::AnalysisSession`) keys every expensive
//! pipeline artifact — parsed AST, per-function check verdicts, lowered
//! CFG, delay-set analysis, optimized programs, lint reports, simulation
//! results — by a [`Fingerprint`] of its inputs plus a short `kind` tag.
//! Identical inputs therefore share one artifact, and editing one
//! function of a program only recomputes the artifacts whose inputs
//! actually changed.
//!
//! The cache is a plain LRU over `(kind, fingerprint)` keys storing
//! type-erased `Arc`s. It keeps deterministic hit/miss/eviction counters
//! (total and per kind, via [`Counters`]) so reports and tests can prove
//! that a warm re-analysis reused artifacts instead of rebuilding them.
//! The cache itself never affects analysis *results* — only how much
//! work it took to produce them.

use crate::obs::Counters;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use syncopt_frontend::Fingerprint;

/// Default maximum number of cached artifacts.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Cumulative cache activity counters.
///
/// Snapshots are `Copy`, and [`CacheStats::since`] computes a per-request
/// delta, which is how the RPC layer reports how much of one request was
/// served from cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the artifact.
    pub misses: u64,
    /// Artifacts dropped to stay within capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// The activity between an `earlier` snapshot and this one.
    #[must_use]
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Total lookups (hits plus misses).
    pub fn lookups(self) -> u64 {
        self.hits + self.misses
    }
}

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    last_used: u64,
}

/// A content-addressed LRU artifact store.
///
/// Keys are `(kind, fingerprint)` pairs: the `kind` tag (`"ast"`,
/// `"analysis"`, `"lint"`, …) namespaces artifact types so two artifact
/// kinds derived from the same input text cannot collide, and the
/// [`Fingerprint`] is a stable hash of everything the artifact depends
/// on. Values are type-erased `Arc`s; [`ArtifactCache::get_or_try`] is
/// the typed entry point.
///
/// ```
/// use std::sync::Arc;
/// use syncopt_core::cache::ArtifactCache;
/// use syncopt_frontend::Fingerprint;
///
/// let mut cache = ArtifactCache::new(16);
/// let key = Fingerprint::of("shared int X;");
/// let cold: Arc<usize> = cache.get_or("len", key, || 13);
/// let warm: Arc<usize> = cache.get_or("len", key, || unreachable!());
/// assert_eq!(*cold, *warm);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct ArtifactCache {
    capacity: usize,
    entries: HashMap<(&'static str, Fingerprint), Entry>,
    tick: u64,
    stats: CacheStats,
    by_kind: Counters,
}

impl ArtifactCache {
    /// An empty cache holding at most `capacity` artifacts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            by_kind: Counters::new(),
        }
    }

    /// Looks up an artifact, counting a hit or a miss.
    ///
    /// A stored value whose type does not match `T` counts as a miss
    /// (the subsequent insert replaces it); with disciplined one-type-
    /// per-kind usage this never happens.
    pub fn get<T: Any + Send + Sync>(
        &mut self,
        kind: &'static str,
        fp: Fingerprint,
    ) -> Option<Arc<T>> {
        self.tick += 1;
        let found = self
            .entries
            .get_mut(&(kind, fp))
            .map(|entry| {
                entry.last_used = self.tick;
                Arc::clone(&entry.value)
            })
            .and_then(|value| value.downcast::<T>().ok());
        match &found {
            Some(_) => {
                self.stats.hits += 1;
                self.by_kind.inc(&format!("cache.{kind}.hits"));
            }
            None => {
                self.stats.misses += 1;
                self.by_kind.inc(&format!("cache.{kind}.misses"));
            }
        }
        found
    }

    /// Stores an artifact, evicting the least recently used entry if the
    /// cache is full.
    pub fn insert<T: Any + Send + Sync>(&mut self, kind: &'static str, fp: Fingerprint, value: T) {
        self.insert_arc(kind, fp, Arc::new(value));
    }

    /// [`insert`](ArtifactCache::insert) for an already-shared artifact.
    pub fn insert_arc<T: Any + Send + Sync>(
        &mut self,
        kind: &'static str,
        fp: Fingerprint,
        value: Arc<T>,
    ) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&(kind, fp)) {
            self.evict_lru();
        }
        self.tick += 1;
        self.entries.insert(
            (kind, fp),
            Entry {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Returns the cached artifact for `(kind, fp)`, building and
    /// storing it with `build` on a miss.
    pub fn get_or<T: Any + Send + Sync>(
        &mut self,
        kind: &'static str,
        fp: Fingerprint,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        match self.get_or_try::<T, std::convert::Infallible>(kind, fp, || Ok(build())) {
            Ok(value) => value,
        }
    }

    /// Fallible [`get_or`](ArtifactCache::get_or): a build error is
    /// returned to the caller and nothing is cached, so errors are
    /// re-diagnosed (with fresh spans and messages) on every request.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error on a cache miss.
    pub fn get_or_try<T: Any + Send + Sync, E>(
        &mut self,
        kind: &'static str,
        fp: Fingerprint,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if let Some(value) = self.get::<T>(kind, fp) {
            return Ok(value);
        }
        let value = Arc::new(build()?);
        self.insert_arc(kind, fp, Arc::clone(&value));
        Ok(value)
    }

    fn evict_lru(&mut self) {
        // `last_used` values are unique (every touch bumps the tick), so
        // the minimum is well defined and eviction is deterministic.
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(key, _)| *key)
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
            self.by_kind.inc(&format!("cache.{}.evictions", key.0));
        }
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Per-kind activity as dotted counters
    /// (`cache.<kind>.hits|misses|evictions`), mergeable into the obs
    /// layer's pipeline counters.
    pub fn kind_counters(&self) -> &Counters {
        &self.by_kind
    }

    /// Number of artifacts currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every artifact (counters are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_same_artifact() {
        let mut cache = ArtifactCache::new(8);
        let fp = Fingerprint::of("x");
        let a = cache.get_or("s", fp, || String::from("artifact"));
        let b = cache.get_or("s", fp, || String::from("rebuilt"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn kinds_namespace_the_same_fingerprint() {
        let mut cache = ArtifactCache::new(8);
        let fp = Fingerprint::of("x");
        let a = cache.get_or("a", fp, || 1usize);
        let b = cache.get_or("b", fp, || 2usize);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ArtifactCache::new(2);
        let (f1, f2, f3) = (
            Fingerprint::of("1"),
            Fingerprint::of("2"),
            Fingerprint::of("3"),
        );
        cache.get_or("n", f1, || 1usize);
        cache.get_or("n", f2, || 2usize);
        // Touch f1 so f2 is the LRU entry.
        cache.get_or::<usize>("n", f1, || unreachable!());
        cache.get_or("n", f3, || 3usize);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // f1 survived; f2 was evicted.
        assert!(cache.get::<usize>("n", f1).is_some());
        assert!(cache.get::<usize>("n", f2).is_none());
    }

    #[test]
    fn errors_are_not_cached() {
        let mut cache = ArtifactCache::new(8);
        let fp = Fingerprint::of("bad");
        let err: Result<Arc<usize>, &str> = cache.get_or_try("n", fp, || Err("boom"));
        assert!(err.is_err());
        // The retry rebuilds (a second miss), then succeeds.
        let ok = cache.get_or_try::<usize, &str>("n", fp, || Ok(7)).unwrap();
        assert_eq!(*ok, 7);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stats_since_computes_request_delta() {
        let mut cache = ArtifactCache::new(8);
        let fp = Fingerprint::of("x");
        cache.get_or("n", fp, || 1usize);
        let before = cache.stats();
        cache.get_or::<usize>("n", fp, || unreachable!());
        let delta = cache.stats().since(before);
        assert_eq!(
            delta,
            CacheStats {
                hits: 1,
                misses: 0,
                evictions: 0
            }
        );
        assert_eq!(delta.lookups(), 1);
    }

    #[test]
    fn per_kind_counters_track_activity() {
        let mut cache = ArtifactCache::new(8);
        let fp = Fingerprint::of("x");
        cache.get_or("ast", fp, || 1usize);
        cache.get_or::<usize>("ast", fp, || unreachable!());
        assert_eq!(cache.kind_counters().get("cache.ast.misses"), 1);
        assert_eq!(cache.kind_counters().get("cache.ast.hits"), 1);
    }
}
