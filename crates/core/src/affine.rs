//! Affine analysis of array subscripts.
//!
//! The conflict set needs to decide whether two array accesses *could* touch
//! the same element when executed by **different** processors. The paper
//! notes that a conservative approximation of the conflict set is always
//! sound (§6), so we only disambiguate the common SPMD pattern: subscripts
//! of the form `c0 + c1·MYPROC` (plus terms in locals, which defeat the
//! analysis conservatively).

use std::collections::BTreeMap;
use syncopt_frontend::ast::{BinOp, UnOp};
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::VarId;

/// An affine subscript `konst + myproc·MYPROC + Σ coeffs[v]·v`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Constant term.
    pub konst: i64,
    /// Coefficient of `MYPROC`.
    pub myproc: i64,
    /// Coefficients of local variables (loop indices etc.).
    pub coeffs: BTreeMap<VarId, i64>,
}

impl Affine {
    /// The affine constant `c`.
    pub fn constant(c: i64) -> Self {
        Affine {
            konst: c,
            ..Default::default()
        }
    }

    /// Whether the form has any local-variable terms.
    pub fn has_locals(&self) -> bool {
        self.coeffs.values().any(|&c| c != 0)
    }

    fn add(mut self, other: &Affine) -> Self {
        self.konst += other.konst;
        self.myproc += other.myproc;
        for (v, c) in &other.coeffs {
            *self.coeffs.entry(*v).or_insert(0) += c;
        }
        self.coeffs.retain(|_, c| *c != 0);
        self
    }

    fn negate(mut self) -> Self {
        self.konst = -self.konst;
        self.myproc = -self.myproc;
        for c in self.coeffs.values_mut() {
            *c = -*c;
        }
        self
    }

    fn scale(mut self, k: i64) -> Self {
        self.konst *= k;
        self.myproc *= k;
        for c in self.coeffs.values_mut() {
            *c *= k;
        }
        self.coeffs.retain(|_, c| *c != 0);
        self
    }
}

/// Tries to put `expr` in affine form. Returns `None` for anything the
/// analysis cannot handle exactly (division, modulo, comparisons, local
/// array elements, `PROCS`, …).
pub fn to_affine(expr: &Expr) -> Option<Affine> {
    match expr {
        Expr::Int(v) => Some(Affine::constant(*v)),
        Expr::MyProc => Some(Affine {
            myproc: 1,
            ..Default::default()
        }),
        Expr::Local(v) => {
            let mut coeffs = BTreeMap::new();
            coeffs.insert(*v, 1);
            Some(Affine {
                konst: 0,
                myproc: 0,
                coeffs,
            })
        }
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => Some(to_affine(expr)?.negate()),
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Add => Some(to_affine(lhs)?.add(&to_affine(rhs)?)),
            BinOp::Sub => Some(to_affine(lhs)?.add(&to_affine(rhs)?.negate())),
            BinOp::Mul => {
                let l = to_affine(lhs)?;
                let r = to_affine(rhs)?;
                if l.myproc == 0 && l.coeffs.is_empty() {
                    Some(r.scale(l.konst))
                } else if r.myproc == 0 && r.coeffs.is_empty() {
                    Some(l.scale(r.konst))
                } else {
                    None
                }
            }
            _ => None,
        },
        _ => None,
    }
}

/// Could subscript `e1` evaluated on processor `p` equal subscript `e2`
/// evaluated on a **different** processor `q`? Conservative: `true` unless
/// provably disjoint.
///
/// The provable cases assume nothing about `PROCS` beyond `PROCS ≥ 2` and
/// processor ids in `0..PROCS`.
pub fn may_conflict_cross_proc(e1: Option<&Expr>, e2: Option<&Expr>) -> bool {
    may_conflict_cross_proc_bounded(e1, e2, None)
}

/// [`may_conflict_cross_proc`] with an optional known processor count.
///
/// Knowing `PROCS` enables a *modular* disambiguation for loop-variant
/// subscripts: if every local-variable coefficient in both subscripts is a
/// multiple of `m`, then a collision requires
/// `c0 + c1·p ≡ c0' + c1'·q (mod m)` for some `p ≠ q` in `0..PROCS`. The
/// canonical SPMD scatter `A[q·B + MYPROC]` (with `B ≥ PROCS`) is thereby
/// proven per-processor-disjoint even though `q` is a loop variable.
pub fn may_conflict_cross_proc_bounded(
    e1: Option<&Expr>,
    e2: Option<&Expr>,
    procs: Option<u32>,
) -> bool {
    let (Some(e1), Some(e2)) = (e1, e2) else {
        // Scalars (no subscript) always alias themselves.
        return true;
    };
    let (Some(a1), Some(a2)) = (to_affine(e1), to_affine(e2)) else {
        return true;
    };
    if a1.has_locals() || a2.has_locals() {
        // Loop-variant subscripts: try the modular argument, otherwise
        // stay conservative.
        if let Some(procs) = procs {
            let m = local_coeff_gcd(&a1, &a2);
            if m > 1 {
                let collision = (0..procs as i64).any(|p| {
                    (0..procs as i64).any(|q| {
                        p != q
                            && (a1.konst + a1.myproc * p - a2.konst - a2.myproc * q).rem_euclid(m)
                                == 0
                    })
                });
                return collision;
            }
        }
        return true;
    }
    // e1(p) = k1 + a·p, e2(q) = k2 + b·q; conflict iff ∃ p ≠ q: equal.
    let (k1, a) = (a1.konst, a1.myproc);
    let (k2, b) = (a2.konst, a2.myproc);
    let d = k2 - k1; // need a·p − b·q = d
    if a == b {
        if a == 0 {
            // Constant subscripts: same element iff equal constants.
            return d == 0;
        }
        // a·(p − q) = d with p ≠ q: impossible when d = 0; otherwise
        // needs d divisible by a with nonzero quotient.
        return d != 0 && d % a == 0;
    }
    // Different coefficients: some (p, q) pair generally exists (we know
    // nothing about PROCS). One more provable-disjoint case: one side
    // constant, other side strided — disjoint iff non-divisible offset.
    if a == 0 && b != 0 {
        return d.rem_euclid(b.abs()) == 0;
    }
    if b == 0 && a != 0 {
        return (-d).rem_euclid(a.abs()) == 0;
    }
    true
}

/// Public alias of [`local_coeff_gcd`] for sibling modules.
pub(crate) fn local_coeff_gcd_pub(a1: &Affine, a2: &Affine) -> i64 {
    local_coeff_gcd(a1, a2)
}

/// The gcd of all local-variable coefficients across both affine forms
/// (0 when there are none).
fn local_coeff_gcd(a1: &Affine, a2: &Affine) -> i64 {
    fn gcd(a: i64, b: i64) -> i64 {
        if b == 0 {
            a.abs()
        } else {
            gcd(b, a % b)
        }
    }
    let mut m = 0;
    for c in a1.coeffs.values().chain(a2.coeffs.values()) {
        m = gcd(m, *c);
    }
    m
}

/// Could subscript `e1` evaluated on processor `p` equal subscript `e2`
/// evaluated on **any** processor `q` (including `q = p`)? Used for
/// matching `post f[·]` sites against `wait f[·]` sites. Conservative:
/// `true` unless provably disjoint for every `(p, q)`.
pub fn may_match_any_proc(e1: Option<&Expr>, e2: Option<&Expr>) -> bool {
    let (Some(e1), Some(e2)) = (e1, e2) else {
        return true;
    };
    let (Some(a1), Some(a2)) = (to_affine(e1), to_affine(e2)) else {
        return true;
    };
    if a1.has_locals() || a2.has_locals() {
        return true;
    }
    let (k1, a) = (a1.konst, a1.myproc);
    let (k2, b) = (a2.konst, a2.myproc);
    let d = k2 - k1; // need a·p − b·q = d for some p, q ≥ 0
    if a == 0 && b == 0 {
        return d == 0;
    }
    if a == b {
        return d % a == 0;
    }
    if a == 0 {
        return d.rem_euclid(b.abs()) == 0;
    }
    if b == 0 {
        return (-d).rem_euclid(a.abs()) == 0;
    }
    true
}

/// Could subscript `e1` equal `e2` when evaluated on the **same** processor
/// and at the same point (identical local state)? Used for matching
/// post/wait sites and redundant-access detection. Conservative: `true`
/// unless provably disjoint.
pub fn may_equal_same_proc(e1: Option<&Expr>, e2: Option<&Expr>) -> bool {
    let (Some(e1), Some(e2)) = (e1, e2) else {
        return true;
    };
    let (Some(a1), Some(a2)) = (to_affine(e1), to_affine(e2)) else {
        return true;
    };
    // Difference must be identically zero to be *provably equal*; here we
    // ask the opposite — provably different: difference is a nonzero
    // constant once variable parts cancel.
    let diff = a1.add(&a2.negate());
    if diff.myproc == 0 && diff.coeffs.is_empty() {
        return diff.konst == 0;
    }
    true
}

/// Are the two subscripts *provably equal* on the same processor with the
/// same local state? (Stronger than [`may_equal_same_proc`].)
pub fn provably_equal_same_proc(e1: Option<&Expr>, e2: Option<&Expr>) -> bool {
    match (e1, e2) {
        (None, None) => true,
        (Some(e1), Some(e2)) => {
            let (Some(a1), Some(a2)) = (to_affine(e1), to_affine(e2)) else {
                return false;
            };
            a1 == a2
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::ast::BinOp;

    fn myproc_plus(k: i64) -> Expr {
        Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::MyProc),
            rhs: Box::new(Expr::Int(k)),
        }
    }

    fn myproc_times(k: i64) -> Expr {
        Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::MyProc),
            rhs: Box::new(Expr::Int(k)),
        }
    }

    #[test]
    fn affine_of_linear_forms() {
        let a = to_affine(&myproc_plus(3)).unwrap();
        assert_eq!(a.konst, 3);
        assert_eq!(a.myproc, 1);
        let b = to_affine(&myproc_times(4)).unwrap();
        assert_eq!(b.myproc, 4);
        let c = to_affine(&Expr::Binary {
            op: BinOp::Sub,
            lhs: Box::new(myproc_times(4)),
            rhs: Box::new(myproc_plus(1)),
        })
        .unwrap();
        assert_eq!(c.myproc, 3);
        assert_eq!(c.konst, -1);
    }

    #[test]
    fn affine_rejects_nonlinear() {
        assert!(to_affine(&Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::MyProc),
            rhs: Box::new(Expr::MyProc),
        })
        .is_none());
        assert!(to_affine(&Expr::Binary {
            op: BinOp::Rem,
            lhs: Box::new(Expr::MyProc),
            rhs: Box::new(Expr::Int(2)),
        })
        .is_none());
        assert!(to_affine(&Expr::Procs).is_none());
    }

    #[test]
    fn same_myproc_subscript_never_conflicts_cross_proc() {
        // A[MYPROC] on p vs A[MYPROC] on q ≠ p: disjoint.
        let e = Expr::MyProc;
        assert!(!may_conflict_cross_proc(Some(&e), Some(&e)));
    }

    #[test]
    fn neighbor_exchange_conflicts() {
        // A[MYPROC] vs A[MYPROC + 1]: p = q + 1 collides.
        let e1 = Expr::MyProc;
        let e2 = myproc_plus(1);
        assert!(may_conflict_cross_proc(Some(&e1), Some(&e2)));
    }

    #[test]
    fn strided_blocks_disjoint_when_offset_within_stride() {
        // A[4·MYPROC] vs A[4·MYPROC + 1]: never equal across processors.
        let e1 = myproc_times(4);
        let e2 = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(myproc_times(4)),
            rhs: Box::new(Expr::Int(1)),
        };
        assert!(!may_conflict_cross_proc(Some(&e1), Some(&e2)));
        // But offset 4 is another processor's slot.
        let e3 = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(myproc_times(4)),
            rhs: Box::new(Expr::Int(4)),
        };
        assert!(may_conflict_cross_proc(Some(&e1), Some(&e3)));
    }

    #[test]
    fn constant_subscripts() {
        let c3 = Expr::Int(3);
        let c4 = Expr::Int(4);
        assert!(may_conflict_cross_proc(Some(&c3), Some(&c3)));
        assert!(!may_conflict_cross_proc(Some(&c3), Some(&c4)));
    }

    #[test]
    fn constant_vs_strided() {
        // A[6] vs A[4·MYPROC + 2]: 6 = 4q + 2 ⇒ q = 1: conflict.
        let c6 = Expr::Int(6);
        let strided = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(myproc_times(4)),
            rhs: Box::new(Expr::Int(2)),
        };
        assert!(may_conflict_cross_proc(Some(&c6), Some(&strided)));
        // A[5] vs same: 5 = 4q + 2 has no integer solution: disjoint.
        let c5 = Expr::Int(5);
        assert!(!may_conflict_cross_proc(Some(&c5), Some(&strided)));
    }

    #[test]
    fn loop_variables_are_conservative() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Local(VarId(7))),
            rhs: Box::new(Expr::MyProc),
        };
        assert!(may_conflict_cross_proc(Some(&e), Some(&e)));
    }

    #[test]
    fn scalars_always_conflict() {
        assert!(may_conflict_cross_proc(None, None));
    }

    #[test]
    fn same_proc_equality() {
        let e1 = myproc_plus(1);
        let e2 = myproc_plus(2);
        assert!(!may_equal_same_proc(Some(&e1), Some(&e2)));
        assert!(may_equal_same_proc(Some(&e1), Some(&e1)));
        assert!(provably_equal_same_proc(Some(&e1), Some(&e1)));
        assert!(!provably_equal_same_proc(Some(&e1), Some(&e2)));
        assert!(provably_equal_same_proc(None, None));
        // Loop variable: may be equal, not provably so against a constant.
        let v = Expr::Local(VarId(1));
        assert!(may_equal_same_proc(Some(&v), Some(&Expr::Int(0))));
        assert!(!provably_equal_same_proc(Some(&v), Some(&Expr::Int(0))));
        assert!(provably_equal_same_proc(Some(&v), Some(&v)));
    }
}
