//! Static data-race detection via may-happen-in-parallel classification.
//!
//! The §5 synchronization analysis already computes everything a race
//! detector needs: the conflict set `C` enumerates every pair of access
//! sites two processors could aim at the same location (with at least one
//! write), the precedence relation `R` captures cross-processor ordering
//! established by post-wait edges and (aligned) barrier phases, and the
//! lock-guard analysis captures mutual exclusion. A conflicting **data**
//! pair is *may-happen-in-parallel* (MHP) exactly when none of those
//! mechanisms covers it:
//!
//! * `(a, b) ∈ R` or `(b, a) ∈ R` — synchronization orders every instance
//!   of one site against every instance of the other (post-wait
//!   precedence, or barrier phases chained through the step-4 fixpoint);
//! * `a` and `b` are guarded by a common lock — instances are mutually
//!   exclusive (no ordering, but no concurrent access either).
//!
//! Everything else is reported as a potential race. The verdict carries a
//! confidence: when the program contains **no synchronization operations
//! at all** the pair is *proven* racy (there is nothing that could order
//! it — both sites execute on distinct processors by construction of
//! `C`); otherwise the pair is *unproven-ordered* — the conservative
//! analysis could not cover it, but a mechanism it models imprecisely
//! (e.g. multiple candidate posts, unaligned barriers) might.
//!
//! This is the same decomposition used for race-freedom checking of
//! clocked X10 programs (Yuki et al.) — the delay-set refinement and the
//! race check are two readings of one MHP relation.

use crate::conflict::ConflictSet;
use crate::diag::{Diagnostic, Severity};
use crate::sync::{analyze_sync, SyncAnalysis, SyncOptions};
use crate::BarrierPolicy;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::{AccessId, VarId};

/// The flavor of a racy (or ordered) conflicting data pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaceKind {
    /// Two writes to the same location.
    WriteWrite,
    /// A read and a write of the same location.
    ReadWrite,
}

impl RaceKind {
    /// Human label (`write-write` / `read-write`).
    pub fn label(self) -> &'static str {
        match self {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
        }
    }
}

/// Why an ordered pair is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvidence {
    /// `(first, second) ∈ R`: every instance of `first` completes before
    /// any instance of `second` initiates. `via_barriers` tells whether
    /// the edge survives only thanks to aligned barriers (it disappears
    /// under [`BarrierPolicy::Disabled`]).
    Precedence {
        /// The site ordered first.
        first: AccessId,
        /// The site ordered second.
        second: AccessId,
        /// Whether aligned-barrier edges are needed to derive the order.
        via_barriers: bool,
    },
    /// Both sites hold this lock: instances never overlap.
    MutualExclusion {
        /// The common lock.
        lock: VarId,
    },
}

/// The synchronization mechanisms the detector examined for a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvidenceKind {
    /// Post-wait precedence edges (§5.1).
    PostWaitPrecedence,
    /// Aligned-barrier phase ordering (§5.2).
    BarrierPhases,
    /// Lock mutual exclusion (§5.3).
    LockMutualExclusion,
}

impl EvidenceKind {
    /// Human label for messages.
    pub fn label(self) -> &'static str {
        match self {
            EvidenceKind::PostWaitPrecedence => "post-wait precedence",
            EvidenceKind::BarrierPhases => "barrier phases",
            EvidenceKind::LockMutualExclusion => "lock mutual exclusion",
        }
    }
}

/// How sure the detector is that a reported pair actually races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// The program contains no synchronization operations: nothing can
    /// order the pair, so (assuming both sites execute) the race is real.
    ProvenRacy,
    /// Synchronization exists but none that the analysis can prove covers
    /// this pair; may be a false positive of the conservative analysis.
    UnprovenOrdered,
}

/// One potentially racy pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The conflicting sites, in access-id order. A self-pair `(a, a)`
    /// means two *processors* race through the same statement.
    pub pair: (AccessId, AccessId),
    /// Write-write or read-write.
    pub kind: RaceKind,
    /// The synchronization mechanisms present in the program that the
    /// detector considered (and found insufficient). Empty exactly for
    /// [`Confidence::ProvenRacy`] reports.
    pub considered: Vec<EvidenceKind>,
    /// Proven racy vs unproven-ordered.
    pub confidence: Confidence,
}

/// One conflicting pair the detector proved ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedPair {
    /// The conflicting sites, in access-id order.
    pub pair: (AccessId, AccessId),
    /// Write-write or read-write.
    pub kind: RaceKind,
    /// The ordering (or exclusion) evidence.
    pub evidence: SyncEvidence,
}

/// The race detector's classification of every conflicting data pair.
#[derive(Debug, Clone, Default)]
pub struct RaceAnalysis {
    /// Pairs no synchronization covers, i.e. potential data races.
    pub races: Vec<RaceReport>,
    /// Pairs proven ordered (or mutually excluded), with evidence.
    pub ordered: Vec<OrderedPair>,
}

impl RaceAnalysis {
    /// Whether no racy pair was found.
    pub fn race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// Number of proven (not merely unproven-ordered) races.
    pub fn proven(&self) -> usize {
        self.races
            .iter()
            .filter(|r| r.confidence == Confidence::ProvenRacy)
            .count()
    }
}

/// Runs the synchronization analysis and classifies every conflicting
/// data pair. Convenience wrapper over [`classify_races`].
pub fn detect_races(cfg: &Cfg, opts: &SyncOptions) -> RaceAnalysis {
    let conflicts = ConflictSet::build_bounded(cfg, opts.procs);
    let sync = analyze_sync(cfg, opts);
    classify_races(cfg, &conflicts, &sync, opts)
}

/// Classifies every conflicting data pair of `conflicts` as ordered or
/// potentially racy, given the synchronization analysis `sync` computed
/// with `opts`.
pub fn classify_races(
    cfg: &Cfg,
    conflicts: &ConflictSet,
    sync: &SyncAnalysis,
    opts: &SyncOptions,
) -> RaceAnalysis {
    // Which mechanisms exist in this program at all (for `considered`).
    let has_post = cfg.accesses.iter().any(|(_, i)| i.kind == AccessKind::Post);
    let has_wait = cfg.accesses.iter().any(|(_, i)| i.kind == AccessKind::Wait);
    let has_locks = cfg
        .accesses
        .iter()
        .any(|(_, i)| i.kind == AccessKind::LockAcq);
    let has_sync = cfg.accesses.iter().any(|(_, i)| i.kind.is_sync());
    let mut present = Vec::new();
    if has_post && has_wait {
        present.push(EvidenceKind::PostWaitPrecedence);
    }
    if !sync.aligned_barriers.is_empty() {
        present.push(EvidenceKind::BarrierPhases);
    }
    if has_locks {
        present.push(EvidenceKind::LockMutualExclusion);
    }

    // Precedence without barrier edges, to attribute evidence: an order
    // that survives `BarrierPolicy::Disabled` rests on post-wait alone.
    let no_barrier = (!sync.aligned_barriers.is_empty()).then(|| {
        analyze_sync(
            cfg,
            &SyncOptions {
                barrier_policy: BarrierPolicy::Disabled,
                ..*opts
            },
        )
        .precedence
    });

    let mut out = RaceAnalysis::default();
    for (a, b) in conflicts.unordered_pairs() {
        let (ka, kb) = (cfg.accesses.info(a).kind, cfg.accesses.info(b).kind);
        if !ka.is_data() || !kb.is_data() {
            continue; // sync objects cannot "race"; §5 interprets them.
        }
        let kind = if ka == AccessKind::Write && kb == AccessKind::Write {
            RaceKind::WriteWrite
        } else {
            RaceKind::ReadWrite
        };

        // Precedence evidence (either direction orders all instances).
        let prec = if a != b && sync.precedence.contains(a, b) {
            Some((a, b))
        } else if a != b && sync.precedence.contains(b, a) {
            Some((b, a))
        } else {
            None
        };
        if let Some((first, second)) = prec {
            let via_barriers = no_barrier
                .as_ref()
                .is_some_and(|r| !r.contains(first, second));
            out.ordered.push(OrderedPair {
                pair: (a, b),
                kind,
                evidence: SyncEvidence::Precedence {
                    first,
                    second,
                    via_barriers,
                },
            });
            continue;
        }

        // Lock mutual-exclusion evidence (also covers self-pairs).
        let locks_a = sync.guards.locks_guarding(a);
        let common = locks_a
            .into_iter()
            .find(|l| sync.guards.guarded_by(*l).contains(&b));
        if let Some(lock) = common {
            out.ordered.push(OrderedPair {
                pair: (a, b),
                kind,
                evidence: SyncEvidence::MutualExclusion { lock },
            });
            continue;
        }

        out.races.push(RaceReport {
            pair: (a, b),
            kind,
            considered: present.clone(),
            confidence: if has_sync {
                Confidence::UnprovenOrdered
            } else {
                Confidence::ProvenRacy
            },
        });
    }
    out
}

/// Short description of an access for messages: ``write of `X[...]` ``.
pub fn describe_access(cfg: &Cfg, a: AccessId) -> String {
    let info = cfg.accesses.info(a);
    let verb = match info.kind {
        AccessKind::Read => "read",
        AccessKind::Write => "write",
        AccessKind::Post => "post",
        AccessKind::Wait => "wait",
        AccessKind::Barrier => "barrier",
        AccessKind::LockAcq => "lock",
        AccessKind::LockRel => "unlock",
    };
    match info.var {
        Some(v) => {
            let name = &cfg.vars.info(v).name;
            if info.index.is_some() {
                format!("{verb} of `{name}[...]`")
            } else {
                format!("{verb} of `{name}`")
            }
        }
        None => verb.to_string(),
    }
}

/// Converts the racy pairs to [`Diagnostic`]s (codes `R001`/`R002`).
///
/// Proven races are errors; unproven-ordered pairs are warnings (the
/// analysis is conservative, so they may be false positives).
pub fn race_diagnostics(cfg: &Cfg, races: &RaceAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in &races.races {
        let (a, b) = r.pair;
        let (code, severity) = match (r.kind, r.confidence) {
            (RaceKind::WriteWrite, Confidence::ProvenRacy) => ("R001", Severity::Error),
            (RaceKind::WriteWrite, Confidence::UnprovenOrdered) => ("R001", Severity::Warning),
            (RaceKind::ReadWrite, Confidence::ProvenRacy) => ("R002", Severity::Error),
            (RaceKind::ReadWrite, Confidence::UnprovenOrdered) => ("R002", Severity::Warning),
        };
        let var = cfg.accesses.info(a).var.map_or_else(
            || "<unknown>".to_string(),
            |v| cfg.vars.info(v).name.clone(),
        );
        let certainty = match r.confidence {
            Confidence::ProvenRacy => "proven",
            Confidence::UnprovenOrdered => "possible",
        };
        let mut d = Diagnostic::new(
            code,
            severity,
            format!("{} {} race on `{}`", certainty, r.kind.label(), var),
            cfg.accesses.info(a).span,
        );
        if a == b {
            d = d.with_note(
                "every processor executes this statement; two of them may \
                 touch the same location concurrently",
                None,
            );
        } else {
            d = d.with_note(
                format!(
                    "conflicting {} may happen in parallel",
                    describe_access(cfg, b)
                ),
                Some(cfg.accesses.info(b).span),
            );
        }
        d = match r.confidence {
            Confidence::ProvenRacy => d.with_note(
                "the program contains no synchronization that could order this pair",
                None,
            ),
            Confidence::UnprovenOrdered => {
                let considered: Vec<&str> = r.considered.iter().map(|e| e.label()).collect();
                d.with_note(
                    if considered.is_empty() {
                        "no applicable synchronization mechanism covers this pair".to_string()
                    } else {
                        format!(
                            "ordering evidence considered but insufficient: {}",
                            considered.join(", ")
                        )
                    },
                    None,
                )
            }
        };
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn races_of(src: &str) -> (Cfg, RaceAnalysis) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let r = detect_races(&cfg, &SyncOptions::default());
        (cfg, r)
    }

    #[test]
    fn unsynchronized_conflict_is_proven_racy() {
        let (_, r) = races_of("shared int Data; fn main() { int v; Data = MYPROC; v = Data; }");
        assert!(!r.race_free());
        assert!(r.proven() >= 1, "{:?}", r.races);
        let kinds: Vec<RaceKind> = r.races.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&RaceKind::WriteWrite), "self write-write");
        assert!(kinds.contains(&RaceKind::ReadWrite));
        for race in &r.races {
            assert_eq!(race.confidence, Confidence::ProvenRacy);
            assert!(race.considered.is_empty());
        }
    }

    #[test]
    fn post_wait_orders_producer_consumer() {
        let (_, r) = races_of(
            r#"
            shared int X; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; post F; }
                else { wait F; v = X; }
            }
            "#,
        );
        assert!(r.race_free(), "{:?}", r.races);
        assert_eq!(r.ordered.len(), 1);
        match r.ordered[0].evidence {
            SyncEvidence::Precedence { via_barriers, .. } => {
                assert!(!via_barriers, "ordered by post-wait, not barriers")
            }
            ref other => panic!("unexpected evidence {other:?}"),
        }
    }

    #[test]
    fn barrier_orders_phases_and_is_attributed() {
        let (_, r) = races_of(
            r#"
            shared int A[64];
            fn main() {
                int v;
                A[MYPROC + 1] = 1;
                barrier;
                v = A[MYPROC];
            }
            "#,
        );
        assert!(r.race_free(), "{:?}", r.races);
        assert!(r.ordered.iter().any(|o| matches!(
            o.evidence,
            SyncEvidence::Precedence {
                via_barriers: true,
                ..
            }
        )));
    }

    #[test]
    fn lock_mutual_exclusion_covers_critical_section() {
        let (cfg, r) = races_of(
            r#"
            shared int X; lock l;
            fn main() {
                int v;
                lock l;
                v = X;
                X = v + 1;
                unlock l;
            }
            "#,
        );
        assert!(r.race_free(), "{:?}", r.races);
        assert!(!r.ordered.is_empty());
        for o in &r.ordered {
            match o.evidence {
                SyncEvidence::MutualExclusion { lock } => {
                    assert_eq!(cfg.vars.info(lock).name, "l");
                }
                ref other => panic!("expected lock evidence, got {other:?}"),
            }
        }
    }

    #[test]
    fn broken_synchronization_is_unproven_not_proven() {
        // Two candidate posts defeat the unique-post matching: the pair is
        // racy for the analysis, but sync exists, so confidence is low.
        let (_, r) = races_of(
            r#"
            shared int X; flag F;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; post F; }
                else if (MYPROC == 1) { X = 2; post F; }
                else { wait F; v = X; }
            }
            "#,
        );
        assert!(!r.race_free());
        for race in &r.races {
            assert_eq!(race.confidence, Confidence::UnprovenOrdered);
            assert!(race.considered.contains(&EvidenceKind::PostWaitPrecedence));
        }
    }

    #[test]
    fn race_diagnostics_carry_spans_and_codes() {
        let src = "shared int Data; fn main() { int v; Data = MYPROC; v = Data; }";
        let (cfg, r) = races_of(src);
        let diags = race_diagnostics(&cfg, &r);
        assert_eq!(diags.len(), r.races.len());
        for d in &diags {
            assert!(d.code == "R001" || d.code == "R002");
            assert_eq!(d.severity, Severity::Error);
            assert!(!d.span.is_empty(), "span should point into the source");
            let rendered = d.render(src, "t.ms");
            assert!(rendered.contains("race on `Data`"), "{rendered}");
            assert!(rendered.contains('^'), "{rendered}");
        }
    }

    #[test]
    fn every_conflicting_data_pair_is_classified() {
        for src in [
            "shared int X; fn main() { X = MYPROC; }",
            r#"
            shared int X; shared int Y; flag F; lock l;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; post F; } else { wait F; v = X; }
                lock l; Y = 1; unlock l;
                barrier;
                v = Y;
            }
            "#,
        ] {
            let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
            let conflicts = ConflictSet::build(&cfg);
            let r = detect_races(&cfg, &SyncOptions::default());
            let data_pairs = conflicts
                .unordered_pairs()
                .into_iter()
                .filter(|&(a, b)| {
                    cfg.accesses.info(a).kind.is_data() && cfg.accesses.info(b).kind.is_data()
                })
                .count();
            assert_eq!(r.races.len() + r.ordered.len(), data_pairs, "{src}");
        }
    }
}
