//! Barrier alignment (§5.2).
//!
//! Using a barrier for precedence requires knowing that all processors
//! execute the *same* dynamic sequence of barrier episodes — undecidable in
//! general (the paper's Figure 7). The paper's answer is a cheap runtime
//! check plus compiler optimism: emit an optimized version valid under
//! alignment and fall back otherwise. We implement both halves:
//!
//! * [`BarrierPolicy::Static`] proves alignment at compile time for
//!   barriers that are not control-dependent (transitively) on any
//!   **processor-dependent** branch, where processor dependence is a taint
//!   reaching from `MYPROC` or from shared-memory reads;
//! * [`BarrierPolicy::AssumeAligned`] mirrors the paper's runtime-checked
//!   optimized version (the simulator in `syncopt-machine` performs the
//!   dynamic barrier-sequence check and reports divergence).

use std::collections::HashSet;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::{Cfg, Instr, Terminator};
use syncopt_ir::dom::Dominators;
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::{AccessId, BlockId, VarId};
use syncopt_ir::order::ProgramOrder;

/// How barrier alignment is established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierPolicy {
    /// Prove alignment statically via taint + control dependence.
    #[default]
    Static,
    /// Assume every barrier aligns (paper's runtime-checked mode).
    AssumeAligned,
    /// Use no barrier information at all.
    Disabled,
}

/// Computes the set of locals whose value may differ across processors:
/// anything data-dependent on `MYPROC` or on a shared-memory read
/// (different processors may read at different times).
pub fn proc_dependent_locals(cfg: &Cfg) -> HashSet<VarId> {
    let mut tainted: HashSet<VarId> = HashSet::new();
    let expr_tainted = |e: &Expr, tainted: &HashSet<VarId>| -> bool {
        let mut hit = false;
        e.for_each_var(&mut |v| hit |= tainted.contains(&v));
        hit || expr_mentions_myproc(e)
    };
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.block_ids() {
            for instr in &cfg.block(b).instrs {
                let newly = match instr {
                    Instr::GetShared { dst, .. } | Instr::GetInit { dst, .. } => Some(*dst),
                    Instr::AssignLocal { dst, value } => {
                        expr_tainted(value, &tainted).then_some(*dst)
                    }
                    Instr::AssignLocalElem {
                        array,
                        index,
                        value,
                    } => (expr_tainted(index, &tainted) || expr_tainted(value, &tainted))
                        .then_some(*array),
                    _ => None,
                };
                if let Some(v) = newly {
                    changed |= tainted.insert(v);
                }
            }
        }
    }
    tainted
}

fn expr_mentions_myproc(e: &Expr) -> bool {
    match e {
        Expr::MyProc => true,
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Procs | Expr::Local(_) => false,
        Expr::LocalElem { index, .. } => expr_mentions_myproc(index),
        Expr::Unary { expr, .. } => expr_mentions_myproc(expr),
        Expr::Binary { lhs, rhs, .. } => expr_mentions_myproc(lhs) || expr_mentions_myproc(rhs),
    }
}

/// The blocks whose branch decision may differ across processors.
pub fn tainted_branches(cfg: &Cfg, tainted: &HashSet<VarId>) -> Vec<BlockId> {
    let mut out = Vec::new();
    for b in cfg.block_ids() {
        if let Terminator::Branch { cond, .. } = &cfg.block(b).term {
            let mut hit = expr_mentions_myproc(cond);
            cond.for_each_var(&mut |v| hit |= tainted.contains(&v));
            if hit {
                out.push(b);
            }
        }
    }
    out
}

/// Block-level control dependence closure: the set of blocks whose
/// *execution count* may differ across processors given the tainted
/// branches.
fn proc_dependent_blocks(cfg: &Cfg, tainted_branches: &[BlockId]) -> Vec<bool> {
    let pdom = Dominators::compute_post(cfg);
    let mut dep_branch: Vec<BlockId> = tainted_branches.to_vec();
    let mut dep = vec![false; cfg.num_blocks()];
    let mut changed = true;
    while changed {
        changed = false;
        for b in cfg.block_ids() {
            if dep[b.index()] {
                continue;
            }
            for &x in &dep_branch {
                if control_dependent(cfg, &pdom, b, x) {
                    dep[b.index()] = true;
                    changed = true;
                    // A dependent block with a branch spreads dependence.
                    if matches!(cfg.block(b).term, Terminator::Branch { .. })
                        && !dep_branch.contains(&b)
                    {
                        dep_branch.push(b);
                    }
                    break;
                }
            }
        }
    }
    dep
}

/// Classic control dependence: `b` is control-dependent on branch block `x`
/// iff `b` postdominates some successor of `x` but does not postdominate
/// `x` itself. Unreachable-postdominator cases count as dependent
/// (conservative).
fn control_dependent(cfg: &Cfg, pdom: &Dominators, b: BlockId, x: BlockId) -> bool {
    if !pdom.is_reachable(x) || !pdom.is_reachable(b) {
        return true;
    }
    let succs = cfg.successors(x);
    if succs.len() < 2 {
        return false;
    }
    let dominates_some_succ = succs.iter().any(|&s| pdom.dominates(b, s));
    dominates_some_succ && !pdom.dominates(b, x)
}

/// The barrier access sites considered aligned under `policy`.
pub fn aligned_barriers(cfg: &Cfg, policy: BarrierPolicy) -> Vec<AccessId> {
    let barrier_ids: Vec<AccessId> = cfg
        .accesses
        .iter()
        .filter(|(_, info)| info.kind == AccessKind::Barrier)
        .map(|(id, _)| id)
        .collect();
    match policy {
        BarrierPolicy::Disabled => Vec::new(),
        BarrierPolicy::AssumeAligned => barrier_ids,
        BarrierPolicy::Static => {
            let tainted = proc_dependent_locals(cfg);
            let branches = tainted_branches(cfg, &tainted);
            if branches.is_empty() {
                return barrier_ids;
            }
            let dep = proc_dependent_blocks(cfg, &branches);
            barrier_ids
                .into_iter()
                .filter(|&b| !dep[cfg.accesses.info(b).pos.block.index()])
                .collect()
        }
    }
}

/// For the §5.2 precedence relation: ordered pairs of aligned barriers
/// `(b1, b2)` such that every episode of `b1` precedes every episode of
/// `b2` (including the self pair `(b, b)` representing the barrier's own
/// cross-processor rendezvous).
pub fn barrier_precedence_edges(
    cfg: &Cfg,
    po: &ProgramOrder,
    aligned: &[AccessId],
) -> Vec<(AccessId, AccessId)> {
    let mut out = Vec::new();
    for &b1 in aligned {
        out.push((b1, b1));
        for &b2 in aligned {
            if b1 != b2 && po.access_precedes(cfg, b1, b2) && !po.access_precedes(cfg, b2, b1) {
                out.push((b1, b2));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn cfg_of(src: &str) -> Cfg {
        lower_main(&prepare_program(src).unwrap()).unwrap()
    }

    fn barrier_count(cfg: &Cfg) -> usize {
        cfg.accesses
            .iter()
            .filter(|(_, i)| i.kind == AccessKind::Barrier)
            .count()
    }

    #[test]
    fn top_level_barriers_align_statically() {
        let cfg = cfg_of("fn main() { barrier; work(10); barrier; }");
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert_eq!(aligned.len(), 2);
    }

    #[test]
    fn barrier_in_uniform_loop_aligns() {
        let cfg =
            cfg_of("fn main() { int i; for (i = 0; i < 8; i = i + 1) { barrier; work(1); } }");
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert_eq!(aligned.len(), 1, "trip count is processor-independent");
    }

    #[test]
    fn barrier_under_myproc_branch_does_not_align() {
        let cfg = cfg_of("fn main() { if (MYPROC == 0) { barrier; } }");
        assert_eq!(barrier_count(&cfg), 1);
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert!(aligned.is_empty());
        // But the optimistic policy accepts it.
        assert_eq!(
            aligned_barriers(&cfg, BarrierPolicy::AssumeAligned).len(),
            1
        );
        assert!(aligned_barriers(&cfg, BarrierPolicy::Disabled).is_empty());
    }

    #[test]
    fn barrier_in_loop_with_tainted_bound_does_not_align() {
        // Trip count depends on MYPROC.
        let cfg = cfg_of("fn main() { int i; for (i = 0; i < MYPROC; i = i + 1) { barrier; } }");
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert!(aligned.is_empty());
    }

    #[test]
    fn barrier_after_myproc_branch_rejoins_and_aligns() {
        // The branch is processor-dependent, but the barrier postdominates
        // the join, so every processor reaches it exactly once.
        let cfg = cfg_of("shared int X; fn main() { if (MYPROC == 0) { X = 1; } barrier; }");
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert_eq!(aligned.len(), 1);
    }

    #[test]
    fn shared_read_taints_trip_count() {
        // N is read from shared memory; conservatively processor-dependent.
        let cfg = cfg_of(
            r#"
            shared int N;
            fn main() {
                int n; n = N;
                int i;
                for (i = 0; i < n; i = i + 1) { barrier; }
            }
            "#,
        );
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert!(aligned.is_empty());
    }

    #[test]
    fn taint_propagates_through_locals_and_arrays() {
        let cfg = cfg_of(
            r#"
            fn main() {
                int a; int b; int c[4];
                a = MYPROC + 1;
                b = a * 2;
                c[0] = b;
                int d; d = c[0];
                if (d > 0) { barrier; }
            }
            "#,
        );
        let tainted = proc_dependent_locals(&cfg);
        let names: Vec<String> = tainted
            .iter()
            .map(|v| cfg.vars.info(*v).name.clone())
            .collect();
        for expect in ["a", "b", "c", "d"] {
            assert!(names.iter().any(|n| n == expect), "{expect} not tainted");
        }
        assert!(aligned_barriers(&cfg, BarrierPolicy::Static).is_empty());
    }

    #[test]
    fn precedence_edges_between_sequential_barriers() {
        let cfg = cfg_of("fn main() { barrier; work(1); barrier; }");
        let po = ProgramOrder::compute(&cfg);
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        let edges = barrier_precedence_edges(&cfg, &po, &aligned);
        let b: Vec<AccessId> = cfg.accesses.ids().collect();
        assert!(edges.contains(&(b[0], b[0])), "self edge");
        assert!(edges.contains(&(b[1], b[1])), "self edge");
        assert!(edges.contains(&(b[0], b[1])), "sequential edge");
        assert!(!edges.contains(&(b[1], b[0])));
    }

    #[test]
    fn loop_barriers_get_self_edge_only() {
        let cfg = cfg_of(
            "fn main() { int i; for (i = 0; i < 4; i = i + 1) { barrier; work(1); barrier; } }",
        );
        let po = ProgramOrder::compute(&cfg);
        let aligned = aligned_barriers(&cfg, BarrierPolicy::Static);
        assert_eq!(aligned.len(), 2);
        let edges = barrier_precedence_edges(&cfg, &po, &aligned);
        // Both orders exist across iterations, so only self edges remain.
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|(a, b)| a == b));
    }
}
