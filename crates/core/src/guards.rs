//! Predicate-aware conflict refinement.
//!
//! SPMD programs constantly branch on `MYPROC` (`if (MYPROC == 0) {...}`,
//! `if (MYPROC % 4 == r) {...}`): the guarded code executes on a *subset*
//! of the processors. Treating every access site as executed by every
//! processor (the plain Shasha–Snir reading) manufactures conflicts that
//! cannot happen — e.g. a write under `MYPROC == 0` can never self-conflict
//! because only one processor runs it.
//!
//! This module computes, for every access site, the set of processors that
//! can execute it, by collecting the *processor-pure* branch conditions
//! (expressions over `MYPROC`, `PROCS`, and constants only) that dominate
//! the site, and — when the machine size is known — evaluating them for
//! each processor id. The conflict set then requires a *distinct* pair of
//! processors satisfying both sides' guards, and, for affine subscripts,
//! an actual index collision at some such pair.
//!
//! This is an extension beyond the 1995 paper (which relies on the
//! conservative conflict set being sound); it follows the same principle
//! as its affine subscript handling and is exercised by the evaluation
//! kernels' owner-computes guards.

use crate::affine::to_affine;
use std::collections::HashMap;
use syncopt_frontend::ast::{BinOp, UnOp};
use syncopt_ir::cfg::{Cfg, Terminator};
use syncopt_ir::dom::Dominators;
use syncopt_ir::expr::Expr;
use syncopt_ir::ids::BlockId;

/// The processors that may execute an access site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcSet {
    /// Unconstrained (or not analyzable).
    Any,
    /// Exactly these processor ids.
    Ids(Vec<i64>),
}

impl ProcSet {
    /// Concrete candidate ids, when enumerable. With a known machine size
    /// `Any` materializes to `0..procs`.
    pub fn candidates(&self, procs: Option<u32>) -> Option<Vec<i64>> {
        match self {
            ProcSet::Ids(ids) => Some(ids.clone()),
            ProcSet::Any => procs.map(|p| (0..p as i64).collect()),
        }
    }

    /// Whether some processor pair `p ≠ q` has `p` allowed here and `q`
    /// allowed in `other` (assuming at least two processors exist).
    pub fn exists_distinct_pair(&self, other: &ProcSet, procs: Option<u32>) -> bool {
        match (self.candidates(procs), other.candidates(procs)) {
            (Some(a), Some(b)) => a.iter().any(|p| b.iter().any(|q| p != q)),
            (Some(a), None) | (None, Some(a)) => !a.is_empty(),
            (None, None) => true,
        }
    }

    /// Whether the site can execute at all.
    pub fn is_empty(&self, procs: Option<u32>) -> bool {
        matches!(self.candidates(procs), Some(ids) if ids.is_empty())
    }
}

/// Whether `e` mentions only `MYPROC`, `PROCS`, and constants.
fn processor_pure(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::MyProc | Expr::Procs => true,
        Expr::Local(_) | Expr::LocalElem { .. } => false,
        Expr::Unary { expr, .. } => processor_pure(expr),
        Expr::Binary { lhs, rhs, .. } => processor_pure(lhs) && processor_pure(rhs),
    }
}

/// Evaluates a processor-pure expression for processor `p` (`procs` needed
/// only if the expression mentions `PROCS`). Integer/bool subset only.
fn eval_pure(e: &Expr, p: i64, procs: Option<u32>) -> Option<PureVal> {
    match e {
        Expr::Int(v) => Some(PureVal::Int(*v)),
        Expr::Bool(v) => Some(PureVal::Bool(*v)),
        Expr::Float(_) => None,
        Expr::MyProc => Some(PureVal::Int(p)),
        Expr::Procs => procs.map(|n| PureVal::Int(n as i64)),
        Expr::Local(_) | Expr::LocalElem { .. } => None,
        Expr::Unary { op, expr } => {
            let v = eval_pure(expr, p, procs)?;
            match (op, v) {
                (UnOp::Neg, PureVal::Int(i)) => Some(PureVal::Int(-i)),
                (UnOp::Not, PureVal::Bool(b)) => Some(PureVal::Bool(!b)),
                _ => None,
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_pure(lhs, p, procs)?;
            let r = eval_pure(rhs, p, procs)?;
            match (l, r) {
                (PureVal::Int(a), PureVal::Int(b)) => Some(match op {
                    BinOp::Add => PureVal::Int(a.wrapping_add(b)),
                    BinOp::Sub => PureVal::Int(a.wrapping_sub(b)),
                    BinOp::Mul => PureVal::Int(a.wrapping_mul(b)),
                    BinOp::Div => PureVal::Int(a.checked_div(b)?),
                    BinOp::Rem => {
                        if b == 0 {
                            return None;
                        }
                        PureVal::Int(a.rem_euclid(b))
                    }
                    BinOp::Eq => PureVal::Bool(a == b),
                    BinOp::Ne => PureVal::Bool(a != b),
                    BinOp::Lt => PureVal::Bool(a < b),
                    BinOp::Le => PureVal::Bool(a <= b),
                    BinOp::Gt => PureVal::Bool(a > b),
                    BinOp::Ge => PureVal::Bool(a >= b),
                    BinOp::And | BinOp::Or => return None,
                }),
                (PureVal::Bool(a), PureVal::Bool(b)) => Some(match op {
                    BinOp::And => PureVal::Bool(a && b),
                    BinOp::Or => PureVal::Bool(a || b),
                    BinOp::Eq => PureVal::Bool(a == b),
                    BinOp::Ne => PureVal::Bool(a != b),
                    _ => return None,
                }),
                _ => None,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PureVal {
    Int(i64),
    Bool(bool),
}

/// The processor-pure branch conditions gating each block: `(cond, side)`
/// means the block only executes when `cond` evaluates to `side`.
fn block_gates(cfg: &Cfg, dom: &Dominators) -> Vec<Vec<(Expr, bool)>> {
    let preds = cfg.predecessors();
    let mut gates: Vec<Vec<(Expr, bool)>> = vec![Vec::new(); cfg.num_blocks()];
    for x in cfg.block_ids() {
        let Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } = &cfg.block(x).term
        else {
            continue;
        };
        if !processor_pure(cond) {
            continue;
        }
        for (target, side) in [(*then_bb, true), (*else_bb, false)] {
            // Entering `target` implies the branch decided `side` — sound
            // only when `x` is the sole way in.
            if preds[target.index()] != vec![x] {
                continue;
            }
            for b in cfg.block_ids() {
                if dom.dominates(target, b) {
                    gates[b.index()].push((cond.clone(), side));
                }
            }
        }
    }
    gates
}

/// Computes the [`ProcSet`] of every access site.
pub fn access_proc_sets(cfg: &Cfg, procs: Option<u32>) -> Vec<ProcSet> {
    let dom = Dominators::compute(cfg);
    let gates = block_gates(cfg, &dom);
    let mut cache: HashMap<BlockId, ProcSet> = HashMap::new();
    cfg.accesses
        .iter()
        .map(|(_, info)| {
            let block = info.pos.block;
            cache
                .entry(block)
                .or_insert_with(|| proc_set_of_gates(&gates[block.index()], procs))
                .clone()
        })
        .collect()
}

fn proc_set_of_gates(gates: &[(Expr, bool)], procs: Option<u32>) -> ProcSet {
    if gates.is_empty() {
        return ProcSet::Any;
    }
    if let Some(n) = procs {
        // Evaluate every gate for every processor id.
        let ids: Vec<i64> = (0..n as i64)
            .filter(|&p| {
                gates.iter().all(|(cond, side)| {
                    match eval_pure(cond, p, procs) {
                        Some(PureVal::Bool(b)) => b == *side,
                        // Unevaluable gate: keep the processor (sound).
                        _ => true,
                    }
                })
            })
            .collect();
        return ProcSet::Ids(ids);
    }
    // Machine size unknown: only the `MYPROC == k` singleton pattern is
    // representable.
    for (cond, side) in gates {
        if !side {
            continue;
        }
        if let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = cond
        {
            let k = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::MyProc, Expr::Int(k)) | (Expr::Int(k), Expr::MyProc) => Some(*k),
                _ => None,
            };
            if let Some(k) = k {
                return ProcSet::Ids(vec![k]);
            }
        }
    }
    ProcSet::Any
}

/// Could two array subscripts collide for some *distinct* pair of
/// processors allowed by the guards? Falls back to the guard-free affine
/// tests when the candidate sets cannot be enumerated.
pub fn indices_may_collide(
    e1: &Expr,
    e2: &Expr,
    g1: &ProcSet,
    g2: &ProcSet,
    procs: Option<u32>,
) -> bool {
    let (Some(c1), Some(c2)) = (g1.candidates(procs), g2.candidates(procs)) else {
        return crate::affine::may_conflict_cross_proc_bounded(Some(e1), Some(e2), procs);
    };
    let (a1, a2) = (to_affine(e1), to_affine(e2));
    match (a1, a2) {
        (Some(a1), Some(a2)) if !a1.has_locals() && !a2.has_locals() => {
            // Exact per-pair evaluation.
            c1.iter().any(|&p| {
                c2.iter()
                    .any(|&q| p != q && a1.konst + a1.myproc * p == a2.konst + a2.myproc * q)
            })
        }
        (Some(a1), Some(a2)) => {
            // Loop-variant terms: modular congruence per pair.
            let m = super::affine::local_coeff_gcd_pub(&a1, &a2);
            if m > 1 {
                c1.iter().any(|&p| {
                    c2.iter().any(|&q| {
                        p != q
                            && (a1.konst + a1.myproc * p - a2.konst - a2.myproc * q).rem_euclid(m)
                                == 0
                    })
                })
            } else {
                g1.exists_distinct_pair(g2, procs)
            }
        }
        _ => g1.exists_distinct_pair(g2, procs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::access::AccessKind;
    use syncopt_ir::lower::lower_main;

    fn sets(src: &str, procs: Option<u32>) -> (Cfg, Vec<ProcSet>) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let s = access_proc_sets(&cfg, procs);
        (cfg, s)
    }

    #[test]
    fn unguarded_accesses_are_any() {
        let (_, s) = sets("shared int X; fn main() { X = 1; }", None);
        assert_eq!(s, vec![ProcSet::Any]);
    }

    #[test]
    fn myproc_eq_guard_is_singleton_without_machine_size() {
        let (_, s) = sets(
            "shared int X; fn main() { if (MYPROC == 3) { X = 1; } }",
            None,
        );
        assert_eq!(s, vec![ProcSet::Ids(vec![3])]);
    }

    #[test]
    fn else_side_enumerates_with_machine_size() {
        let (cfg, s) = sets(
            "shared int X; shared int Y; fn main() { if (MYPROC == 0) { X = 1; } else { Y = 1; } }",
            Some(4),
        );
        let wx = cfg
            .accesses
            .iter()
            .position(|(_, i)| {
                i.kind == AccessKind::Write && cfg.vars.info(i.var.unwrap()).name == "X"
            })
            .unwrap();
        let wy = cfg
            .accesses
            .iter()
            .position(|(_, i)| cfg.vars.info(i.var.unwrap()).name == "Y")
            .unwrap();
        assert_eq!(s[wx], ProcSet::Ids(vec![0]));
        assert_eq!(s[wy], ProcSet::Ids(vec![1, 2, 3]));
    }

    #[test]
    fn modulo_guards_enumerate() {
        let (_, s) = sets(
            "shared int X; fn main() { if (MYPROC % 3 == 1) { X = 1; } }",
            Some(8),
        );
        assert_eq!(s, vec![ProcSet::Ids(vec![1, 4, 7])]);
    }

    #[test]
    fn nested_guards_intersect() {
        let (_, s) = sets(
            r#"
            shared int X;
            fn main() {
                if (MYPROC < 4) {
                    if (MYPROC % 2 == 0) { X = 1; }
                }
            }
            "#,
            Some(8),
        );
        assert_eq!(s, vec![ProcSet::Ids(vec![0, 2])]);
    }

    #[test]
    fn data_dependent_guards_are_any() {
        let (_, s) = sets(
            r#"
            shared int X;
            fn main() {
                int v; v = X;
                if (v > 0) { X = 1; }
            }
            "#,
            Some(4),
        );
        // The write's guard depends on data: Any.
        assert_eq!(s[1], ProcSet::Any);
    }

    #[test]
    fn distinct_pair_logic() {
        let a = ProcSet::Ids(vec![0]);
        let b = ProcSet::Ids(vec![0]);
        let c = ProcSet::Ids(vec![1]);
        let any = ProcSet::Any;
        assert!(!a.exists_distinct_pair(&b, None), "same singleton");
        assert!(a.exists_distinct_pair(&c, None));
        assert!(a.exists_distinct_pair(&any, None));
        assert!(any.exists_distinct_pair(&any, None));
        let empty = ProcSet::Ids(vec![]);
        assert!(!empty.exists_distinct_pair(&any, None));
        assert!(empty.is_empty(None));
    }

    #[test]
    fn exact_index_collision_with_guards() {
        // write A[MYPROC] under MYPROC==0 vs read A[0] under MYPROC!=0.
        let e_w = Expr::MyProc;
        let e_r = Expr::Int(0);
        let g_w = ProcSet::Ids(vec![0]);
        let g_r = ProcSet::Ids(vec![1, 2, 3]);
        assert!(indices_may_collide(&e_w, &e_r, &g_w, &g_r, Some(4)));
        // But A[MYPROC] under MYPROC==0 vs A[1] under MYPROC!=0: 0 ≠ 1.
        let e_r1 = Expr::Int(1);
        assert!(!indices_may_collide(&e_w, &e_r1, &g_w, &g_r, Some(4)));
    }
}
