//! SPMD cycle detection — the back-path algorithm (§4, and the authors'
//! LCPC'94 SPMD reduction, reference 11).
//!
//! A delay `(u, v)` is required for a program edge `u ≤_P v` iff the graph
//! `P ∪ C` contains a *back-path* from `v` to `u` whose interior lies on
//! other processors. Because the program is SPMD, two copies of the program
//! suffice: a violation cycle spanning any number of processors folds onto
//!
//! * the **home copy** holding only `u` and `v`, and
//! * the **mirror copy** holding the remote accesses, connected internally
//!   by program-order edges (`P`, the remote processor executes the same
//!   code) and by conflict edges (`C`, for cycles through ≥ 3 processors).
//!
//! So `(u, v)` is a delay iff there exist accesses `x`, `y` with directed
//! conflict edges `v → x` and `y → u` such that `x = y` or `y'` is
//! reachable from `x'` inside the mirror copy.
//!
//! We check for *any* back-path rather than Shasha & Snir's *simple* paths
//! (testing simple paths is NP-hard in general). This yields a sufficient,
//! possibly slightly larger delay set — the standard practical compromise,
//! and exact for the two-processor patterns the paper's figures exercise.

use crate::conflict::ConflictSet;
use crate::delay::DelaySet;
use syncopt_ir::access::AccessKind;
use syncopt_ir::cfg::Cfg;
use syncopt_ir::ids::AccessId;
use syncopt_ir::order::{BitMatrix, ProgramOrder};

/// Options controlling one delay-set computation.
#[derive(Default)]
pub struct DelayOptions<'a> {
    /// Restrict candidates to pairs where at least one side is a
    /// synchronization access (used to compute `D1` in §5.1 step 2).
    pub only_sync_pairs: bool,
    /// Per-candidate node removal: given the candidate `(u, v)`, returns
    /// access sites that cannot appear on a back-path and must be excluded
    /// from the mirror copy (§5.1 step 6 refinement, §5.3 lock rule).
    #[allow(clippy::type_complexity)]
    pub removals: Option<Box<dyn Fn(AccessId, AccessId) -> Vec<AccessId> + 'a>>,
}

/// The mirror-copy graph plus cached reachability.
pub struct BackPathOracle<'a> {
    cfg: &'a Cfg,
    conflicts: &'a ConflictSet,
    #[allow(dead_code)]
    po: &'a ProgramOrder,
    /// Adjacency inside the mirror copy: program-order ∪ conflict edges.
    mirror_adj: Vec<Vec<usize>>,
    /// Cached reachability over the full mirror copy (no removals):
    /// `reach.get(x, y)` iff `y'` reachable from `x'` via ≥ 1 edge.
    reach: BitMatrix,
}

impl<'a> BackPathOracle<'a> {
    /// Builds the oracle for the current (possibly partially oriented)
    /// conflict set.
    pub fn new(cfg: &'a Cfg, conflicts: &'a ConflictSet, po: &'a ProgramOrder) -> Self {
        let n = cfg.accesses.len();
        let mut mirror_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for (x, adj) in mirror_adj.iter_mut().enumerate() {
            let xa = AccessId::from_index(x);
            for y in 0..n {
                let ya = AccessId::from_index(y);
                let p_edge = x != y && po.access_precedes(cfg, xa, ya);
                let c_edge = conflicts.edge(xa, ya);
                if p_edge || c_edge {
                    adj.push(y);
                    edges.push((x, y));
                }
            }
        }
        let reach = syncopt_ir::order::reachability(n, &edges);
        BackPathOracle {
            cfg,
            conflicts,
            po,
            mirror_adj,
            reach,
        }
    }

    /// Whether a back-path from `v` to `u` exists, excluding `removed`
    /// accesses from the mirror copy.
    pub fn has_back_path(&self, u: AccessId, v: AccessId, removed: &[AccessId]) -> bool {
        let starts: Vec<AccessId> = self
            .conflicts
            .succs(v)
            .into_iter()
            .filter(|x| !removed.contains(x))
            .collect();
        if starts.is_empty() {
            return false;
        }
        let ends: Vec<AccessId> = self
            .conflicts
            .preds(u)
            .into_iter()
            .filter(|y| !removed.contains(y))
            .collect();
        if ends.is_empty() {
            return false;
        }
        // Direct two-conflict-edge path through a single remote access.
        for &x in &starts {
            if ends.contains(&x) {
                return true;
            }
        }
        if removed.is_empty() {
            // Use cached full reachability.
            return starts
                .iter()
                .any(|x| ends.iter().any(|y| self.reach.get(x.index(), y.index())));
        }
        // Quick refutation: if even the unrestricted graph has no path,
        // the restricted one cannot.
        if !starts
            .iter()
            .any(|x| ends.iter().any(|y| self.reach.get(x.index(), y.index())))
        {
            return false;
        }
        // BFS avoiding removed nodes.
        let n = self.cfg.accesses.len();
        let mut blocked = vec![false; n];
        for r in removed {
            blocked[r.index()] = true;
        }
        let mut seen = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for x in &starts {
            if !seen[x.index()] {
                seen[x.index()] = true;
                queue.push(x.index());
            }
        }
        let mut qi = 0;
        let end_set: Vec<bool> = {
            let mut s = vec![false; n];
            for y in &ends {
                s[y.index()] = true;
            }
            s
        };
        while qi < queue.len() {
            let node = queue[qi];
            qi += 1;
            if end_set[node] {
                return true;
            }
            for &next in &self.mirror_adj[node] {
                if !seen[next] && !blocked[next] {
                    seen[next] = true;
                    queue.push(next);
                }
            }
        }
        false
    }
}

/// What one [`compute_delay_set_counted`] run did — the raw material of
/// the pipeline observability report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayQueryStats {
    /// Ordered program pairs considered as delay candidates.
    pub candidates: u64,
    /// Candidates skipped by the `only_sync_pairs` restriction.
    pub sync_skipped: u64,
    /// Back-path oracle queries issued.
    pub backpath_queries: u64,
    /// Mirror-copy nodes excluded across all removal callbacks (§5.1
    /// step 6 / §5.3 lock rule).
    pub removed_nodes: u64,
    /// Queries that found a back-path (delay edges kept).
    pub delays_found: u64,
}

/// Computes a delay set by back-path detection over `P ∪ C`.
///
/// With default options and a freshly built (symmetric) conflict set this is
/// the Shasha–Snir set `D_SS`; §5 calls it with oriented conflicts, the
/// sync-pair restriction, and removal callbacks.
pub fn compute_delay_set(
    cfg: &Cfg,
    conflicts: &ConflictSet,
    po: &ProgramOrder,
    opts: &DelayOptions<'_>,
) -> DelaySet {
    compute_delay_set_counted(cfg, conflicts, po, opts).0
}

/// [`compute_delay_set`], additionally reporting how much work the
/// back-path search performed.
pub fn compute_delay_set_counted(
    cfg: &Cfg,
    conflicts: &ConflictSet,
    po: &ProgramOrder,
    opts: &DelayOptions<'_>,
) -> (DelaySet, DelayQueryStats) {
    let n = cfg.accesses.len();
    let oracle = BackPathOracle::new(cfg, conflicts, po);
    let mut out = DelaySet::new(n);
    let mut stats = DelayQueryStats::default();
    let is_sync: Vec<bool> = cfg
        .accesses
        .iter()
        .map(|(_, info)| info.kind.is_sync())
        .collect();
    for u in cfg.accesses.ids() {
        for v in cfg.accesses.ids() {
            if !po.access_precedes(cfg, u, v) {
                continue;
            }
            stats.candidates += 1;
            if opts.only_sync_pairs && !is_sync[u.index()] && !is_sync[v.index()] {
                stats.sync_skipped += 1;
                continue;
            }
            let removed = match &opts.removals {
                Some(f) => f(u, v),
                None => Vec::new(),
            };
            stats.removed_nodes += removed.len() as u64;
            stats.backpath_queries += 1;
            if oracle.has_back_path(u, v, &removed) {
                stats.delays_found += 1;
                out.insert(u, v);
            }
        }
    }
    (out, stats)
}

/// The Shasha–Snir delay set: all-pairs back-path detection on the
/// unoriented conflict set.
pub fn shasha_snir(cfg: &Cfg) -> DelaySet {
    shasha_snir_bounded(cfg, None)
}

/// [`shasha_snir`] with a known processor count (modular subscript
/// disambiguation).
pub fn shasha_snir_bounded(cfg: &Cfg, procs: Option<u32>) -> DelaySet {
    let conflicts = ConflictSet::build_bounded(cfg, procs);
    let po = ProgramOrder::compute(cfg);
    compute_delay_set(cfg, &conflicts, &po, &DelayOptions::default())
}

/// Convenience predicate: is access `a` a data access (read/write)?
pub fn is_data_access(cfg: &Cfg, a: AccessId) -> bool {
    matches!(
        cfg.accesses.info(a).kind,
        AccessKind::Read | AccessKind::Write
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncopt_frontend::prepare_program;
    use syncopt_ir::lower::lower_main;

    fn delays(src: &str) -> (Cfg, DelaySet) {
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let d = shasha_snir(&cfg);
        (cfg, d)
    }

    /// Finds the n-th access id (in program order of the table).
    fn a(cfg: &Cfg, i: usize) -> AccessId {
        cfg.accesses.ids().nth(i).unwrap()
    }

    #[test]
    fn figure1_flag_idiom_requires_both_delays() {
        // Figure 1: the figure-eight. Producer writes Data then Flag;
        // consumer reads Flag then Data. Both program edges need delays.
        let (cfg, d) = delays(
            r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
            "#,
        );
        // a0 = Write Data, a1 = Write Flag, a2 = Read Flag, a3 = Read Data.
        assert!(d.contains(a(&cfg, 0), a(&cfg, 1)), "write side delay");
        assert!(d.contains(a(&cfg, 2), a(&cfg, 3)), "read side delay");
    }

    #[test]
    fn figure4_no_cycle_no_delay() {
        // Figure 4: both processors touch Data and then Flag in the *same*
        // order (writer writes both, reader reads both). P ∪ C has no
        // figure-eight, so no delay constraints are required.
        let (cfg, d) = delays(
            r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Data; v = Flag; }
            }
            "#,
        );
        assert_eq!(cfg.accesses.len(), 4);
        assert!(d.is_empty(), "unexpected delays: {:?}", d.pairs());
    }

    #[test]
    fn independent_variables_need_no_delay() {
        // Each processor works on its own array slot: no conflicts at all.
        let (cfg, d) = delays("shared int A[64]; fn main() { A[MYPROC] = 1; A[MYPROC] = 2; }");
        assert!(d.is_empty(), "unexpected delays: {:?}", d.pairs());
        assert_eq!(cfg.accesses.len(), 2);
    }

    #[test]
    fn racy_accumulate_requires_delays() {
        // Two unsynchronized writes to the same scalar from all processors,
        // interleaved with reads — classic cycle.
        let (_cfg, d) =
            delays("shared int X; shared int Y; fn main() { int v; X = 1; v = Y; Y = 2; }");
        assert!(!d.is_empty());
    }

    #[test]
    fn three_processor_cycle_detected() {
        // A cycle that needs ≥3 processors: proc 0 writes X reads Y, proc 1
        // writes Y reads Z, proc 2 writes Z reads X. As SPMD all branches
        // exist; the mirror-copy C edges make the multi-hop path visible.
        let (cfg, d) = delays(
            r#"
            shared int X; shared int Y; shared int Z;
            fn main() {
                int v;
                if (MYPROC == 0) { X = 1; v = Y; }
                else if (MYPROC == 1) { Y = 1; v = Z; }
                else { Z = 1; v = X; }
            }
            "#,
        );
        // The write-X-then-read-Y edge needs a delay: back-path
        // v=readY →C writeY' →P readZ' →C writeZ'' →P readX'' →C writeX=u.
        let wx = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Write && cfg.vars.info(i.var.unwrap()).name == "X")
            .unwrap()
            .0;
        let ry = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Read && cfg.vars.info(i.var.unwrap()).name == "Y")
            .unwrap()
            .0;
        assert!(d.contains(wx, ry));
    }

    #[test]
    fn loop_carried_self_delay() {
        // A read and write of the same scalar inside a loop: successive
        // iterations are ordered both ways, and both delay directions hold.
        let (cfg, d) = delays(
            r#"
            shared int X;
            fn main() {
                int i; int v;
                for (i = 0; i < 4; i = i + 1) { v = X; X = v + 1; }
            }
            "#,
        );
        let read = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Read)
            .unwrap()
            .0;
        let write = cfg
            .accesses
            .iter()
            .find(|(_, i)| i.kind == AccessKind::Write)
            .unwrap()
            .0;
        assert!(d.contains(read, write));
        assert!(d.contains(write, read), "loop-carried direction");
    }

    #[test]
    fn sync_pair_restriction_filters_data_pairs() {
        let src = r#"
            shared int Data; shared int Flag; flag f;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; post f; Flag = 1; }
                else { v = Flag; wait f; v = Data; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        let d1 = compute_delay_set(
            &cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs: true,
                removals: None,
            },
        );
        let is_sync = |x: AccessId| cfg.accesses.info(x).kind.is_sync();
        assert!(!d1.is_empty());
        for (u, v) in d1.pairs() {
            assert!(is_sync(u) || is_sync(v), "non-sync pair ({u}, {v}) in D1");
        }
    }

    #[test]
    fn removals_can_break_back_paths() {
        let src = r#"
            shared int Data; shared int Flag;
            fn main() {
                int v;
                if (MYPROC == 0) { Data = 1; Flag = 1; }
                else { v = Flag; v = Data; }
            }
        "#;
        let cfg = lower_main(&prepare_program(src).unwrap()).unwrap();
        let conflicts = ConflictSet::build(&cfg);
        let po = ProgramOrder::compute(&cfg);
        // Removing the consumer-side reads destroys every back-path for the
        // producer edge (Write Data, Write Flag).
        let all: Vec<AccessId> = cfg.accesses.ids().collect();
        let reads: Vec<AccessId> = all
            .iter()
            .copied()
            .filter(|&x| cfg.accesses.info(x).kind == AccessKind::Read)
            .collect();
        let d = compute_delay_set(
            &cfg,
            &conflicts,
            &po,
            &DelayOptions {
                only_sync_pairs: false,
                removals: Some(Box::new(move |_u, _v| reads.clone())),
            },
        );
        let writes: Vec<AccessId> = all
            .iter()
            .copied()
            .filter(|&x| cfg.accesses.info(x).kind == AccessKind::Write)
            .collect();
        assert!(!d.contains(writes[0], writes[1]));
    }
}
